// Column-oriented relation instances.
//
// The EFES detectors only ever run read-heavy analytical passes (distinct
// counts, null counts, per-value group cardinalities), so the storage is
// column-major. This stands in for the PostgreSQL instance the original
// prototype queried: the same statistics are computed, just in-process.

#ifndef EFES_RELATIONAL_TABLE_H_
#define EFES_RELATIONAL_TABLE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "efes/common/result.h"
#include "efes/relational/schema.h"
#include "efes/relational/value.h"

namespace efes {

class Table {
 public:
  explicit Table(RelationDef def);

  const RelationDef& def() const { return def_; }
  const std::string& name() const { return def_.name(); }
  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }

  /// Appends one row. The row must have one value per attribute; each
  /// non-null value must be castable to the attribute type and is stored
  /// in canonical (cast) form.
  Status AppendRow(std::vector<Value> row);

  /// Removes the rows at the given indices (out-of-range entries are
  /// ignored; duplicates are fine). Used by the integration executor's
  /// repair operations.
  void RemoveRows(const std::vector<size_t>& rows);

  /// Cell accessors; bounds are the caller's responsibility.
  const Value& at(size_t row, size_t column) const {
    return columns_[column][row];
  }
  Value& at(size_t row, size_t column) { return columns_[column][row]; }

  /// The full column vector for attribute index `column`.
  const std::vector<Value>& column(size_t column) const {
    return columns_[column];
  }

  /// Column by attribute name; kNotFound when no such attribute.
  Result<const std::vector<Value>*> ColumnByName(
      std::string_view attribute) const;

  /// Materializes one row (by copy).
  std::vector<Value> Row(size_t row) const;

  // --- Analytics used by the detectors -----------------------------------

  /// Number of NULLs in the column.
  size_t NullCount(size_t column) const;

  /// Number of distinct non-null values in the column.
  size_t DistinctCount(size_t column) const;

  /// The distinct non-null values of the column (unspecified order).
  std::vector<Value> DistinctValues(size_t column) const;

  /// Number of non-null values castable to `target`.
  size_t CountCastableTo(size_t column, DataType target) const;

  /// For every distinct non-null value of `column`: how many rows carry
  /// it. This is the "actual cardinality" primitive of the CSG instance
  /// analysis (how many tuples does each attribute value link to?).
  std::unordered_map<Value, size_t, ValueHash> ValueFrequencies(
      size_t column) const;

  /// Number of rows whose projection onto `columns` (ignoring rows with
  /// any NULL among them) occurs more than once — i.e. uniqueness
  /// violations under SQL semantics.
  size_t CountDuplicateProjections(const std::vector<size_t>& columns) const;

  /// True when the projection onto `columns` is duplicate-free (NULL rows
  /// exempt).
  bool IsUnique(const std::vector<size_t>& columns) const;

 private:
  RelationDef def_;
  size_t row_count_ = 0;
  // columns_[c][r] is the value of attribute c in row r.
  std::vector<std::vector<Value>> columns_;
};

}  // namespace efes

#endif  // EFES_RELATIONAL_TABLE_H_
