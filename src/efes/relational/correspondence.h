// Correspondences between source and target schema elements.
//
// "Each correspondence connects a source schema element with the target
// schema element, into which its contents should be integrated"
// (Section 3.1). Correspondences exist at two granularities: relation to
// relation (the source relation's instances shall become instances of the
// target relation) and attribute to attribute (the source attribute's
// values feed the target attribute). They are *not* an executable
// mapping — just enough information to reason about complexity.

#ifndef EFES_RELATIONAL_CORRESPONDENCE_H_
#define EFES_RELATIONAL_CORRESPONDENCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/common/result.h"
#include "efes/relational/schema.h"

namespace efes {

struct Correspondence {
  std::string source_relation;
  /// Empty for relation-level correspondences.
  std::string source_attribute;
  std::string target_relation;
  /// Empty for relation-level correspondences.
  std::string target_attribute;
  /// Matcher confidence in [0, 1]; manually created ones default to 1.
  double confidence = 1.0;

  bool is_relation_level() const {
    return source_attribute.empty() && target_attribute.empty();
  }
  bool is_attribute_level() const { return !is_relation_level(); }

  /// E.g. "albums.name -> records.title" or "albums -> records".
  std::string ToString() const;

  friend bool operator==(const Correspondence& a,
                         const Correspondence& b) = default;
};

/// The set of correspondences of one (source database, target database)
/// pair, with the lookup patterns the detectors need.
class CorrespondenceSet {
 public:
  CorrespondenceSet() = default;

  void Add(Correspondence correspondence);

  /// Relation-level shorthand.
  void AddRelation(std::string source_relation, std::string target_relation);

  /// Attribute-level shorthand.
  void AddAttribute(std::string source_relation, std::string source_attribute,
                    std::string target_relation,
                    std::string target_attribute);

  const std::vector<Correspondence>& all() const { return correspondences_; }
  bool empty() const { return correspondences_.empty(); }
  size_t size() const { return correspondences_.size(); }

  /// All attribute-level correspondences into `target_relation`.
  std::vector<Correspondence> AttributesInto(
      std::string_view target_relation) const;

  /// All attribute-level correspondences into the specific target
  /// attribute.
  std::vector<Correspondence> AttributesInto(
      std::string_view target_relation,
      std::string_view target_attribute) const;

  /// Source relations that contribute (via any correspondence) to
  /// `target_relation`, without duplicates, in first-seen order.
  std::vector<std::string> SourceRelationsFor(
      std::string_view target_relation) const;

  /// Target relations receiving any data, without duplicates.
  std::vector<std::string> TargetRelations() const;

  /// The relation-level correspondence for `target_relation` if present.
  Result<Correspondence> RelationCorrespondenceFor(
      std::string_view target_relation) const;

  /// Checks that every referenced relation/attribute exists in the given
  /// schemas and that types are not obviously nonsensical (no check on
  /// castability; that is the value module's job).
  Status Validate(const Schema& source, const Schema& target) const;

 private:
  std::vector<Correspondence> correspondences_;
};

}  // namespace efes

#endif  // EFES_RELATIONAL_CORRESPONDENCE_H_
