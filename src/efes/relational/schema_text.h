// Textual schema definitions: a small SQL-DDL subset so scenarios can be
// stored on disk and exchanged (the original prototype read its scenarios
// from PostgreSQL databases; this is the file-based substitute).
//
// Supported statements:
//
//   CREATE TABLE records (
//     id INTEGER PRIMARY KEY,
//     title TEXT NOT NULL,
//     artist TEXT NOT NULL,
//     genre TEXT
//   );
//   CREATE TABLE artist_credits (
//     artist_list INTEGER REFERENCES artist_lists(id),
//     position INTEGER,
//     artist TEXT NOT NULL,
//     PRIMARY KEY (artist_list, position),
//     UNIQUE (artist),
//     FOREIGN KEY (artist_list) REFERENCES artist_lists(id)
//   );
//
// Types: INTEGER/INT/BIGINT, REAL/FLOAT/DOUBLE, TEXT/STRING/VARCHAR,
// BOOLEAN/BOOL. Keywords are case-insensitive; `--` starts a comment.

#ifndef EFES_RELATIONAL_SCHEMA_TEXT_H_
#define EFES_RELATIONAL_SCHEMA_TEXT_H_

#include <string>
#include <string_view>

#include "efes/common/result.h"
#include "efes/relational/schema.h"

namespace efes {

/// Parses DDL text into a schema named `schema_name`. The result passes
/// `Schema::Validate()`.
Result<Schema> ParseSchemaText(std::string_view ddl,
                               std::string schema_name);

/// Renders a schema as DDL that ParseSchemaText accepts (round-trip
/// stable up to formatting).
std::string WriteSchemaText(const Schema& schema);

}  // namespace efes

#endif  // EFES_RELATIONAL_SCHEMA_TEXT_H_
