#include "efes/relational/value.h"

#include <cmath>

#include "efes/common/string_util.h"

namespace efes {

namespace {

/// Rank of each type in the cross-type total order.
int TypeRank(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 0;
    case DataType::kBoolean:
      return 1;
    case DataType::kInteger:
    case DataType::kReal:
      return 2;  // numerics compare with each other by value
    case DataType::kText:
      return 3;
  }
  return 4;
}

}  // namespace

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBoolean:
      return "boolean";
    case DataType::kInteger:
      return "integer";
    case DataType::kReal:
      return "real";
    case DataType::kText:
      return "text";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBoolean;
    case 2:
      return DataType::kInteger;
    case 3:
      return DataType::kReal;
    case 4:
      return DataType::kText;
  }
  return DataType::kNull;
}

double Value::NumericValue() const {
  if (type() == DataType::kInteger) {
    return static_cast<double>(AsInteger());
  }
  return AsReal();
}

bool Value::CanCastTo(DataType target) const {
  if (is_null()) return true;
  if (target == type()) return true;
  switch (type()) {
    case DataType::kBoolean:
      return target == DataType::kText || target == DataType::kInteger;
    case DataType::kInteger:
      return target == DataType::kReal || target == DataType::kText;
    case DataType::kReal:
      // Real -> integer only when the value is integral.
      if (target == DataType::kInteger) {
        double v = AsReal();
        return std::floor(v) == v && std::abs(v) < 9.2e18;
      }
      return target == DataType::kText;
    case DataType::kText:
      if (target == DataType::kInteger) {
        return ParseInt64(AsText()).has_value();
      }
      if (target == DataType::kReal) {
        return ParseDouble(AsText()).has_value();
      }
      if (target == DataType::kBoolean) {
        std::string lower = ToLower(AsText());
        return lower == "true" || lower == "false" || lower == "0" ||
               lower == "1";
      }
      return false;
    case DataType::kNull:
      return true;
  }
  return false;
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (target == type()) return *this;
  if (!CanCastTo(target)) {
    return Status::TypeMismatch(
        "cannot cast " + ToString() + " (" +
        std::string(DataTypeToString(type())) + ") to " +
        std::string(DataTypeToString(target)));
  }
  switch (type()) {
    case DataType::kBoolean:
      if (target == DataType::kText) {
        return Value::Text(AsBoolean() ? "true" : "false");
      }
      return Value::Integer(AsBoolean() ? 1 : 0);
    case DataType::kInteger:
      if (target == DataType::kReal) {
        return Value::Real(static_cast<double>(AsInteger()));
      }
      return Value::Text(std::to_string(AsInteger()));
    case DataType::kReal:
      if (target == DataType::kInteger) {
        return Value::Integer(static_cast<int64_t>(AsReal()));
      }
      return Value::Text(FormatDouble(AsReal(), 15));
    case DataType::kText: {
      const std::string& text = AsText();
      if (target == DataType::kInteger) {
        return Value::Integer(*ParseInt64(text));
      }
      if (target == DataType::kReal) {
        return Value::Real(*ParseDouble(text));
      }
      std::string lower = ToLower(text);
      return Value::Boolean(lower == "true" || lower == "1");
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Status::Internal("unreachable cast");
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBoolean:
      return AsBoolean() ? "true" : "false";
    case DataType::kInteger:
      return std::to_string(AsInteger());
    case DataType::kReal:
      return FormatDouble(AsReal(), 15);
    case DataType::kText:
      return AsText();
  }
  return "?";
}

bool operator<(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  switch (a.type()) {
    case DataType::kNull:
      return false;
    case DataType::kBoolean:
      return a.AsBoolean() < b.AsBoolean();
    case DataType::kInteger:
    case DataType::kReal:
      return a.NumericValue() < b.NumericValue();
    case DataType::kText:
      return a.AsText() < b.AsText();
  }
  return false;
}

bool operator==(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return false;
  switch (a.type()) {
    case DataType::kNull:
      return b.type() == DataType::kNull;
    case DataType::kBoolean:
      return a.AsBoolean() == b.AsBoolean();
    case DataType::kInteger:
    case DataType::kReal:
      return a.NumericValue() == b.NumericValue();
    case DataType::kText:
      return a.AsText() == b.AsText();
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b9;
    case DataType::kBoolean:
      return AsBoolean() ? 0x517cc1b7 : 0x27220a95;
    case DataType::kInteger:
    case DataType::kReal:
      // Hash numerics via their double value so 3 == 3.0 hash equal.
      return std::hash<double>()(NumericValue());
    case DataType::kText:
      return std::hash<std::string>()(AsText());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace efes
