#include "efes/relational/correspondence.h"

#include <algorithm>

namespace efes {

std::string Correspondence::ToString() const {
  std::string out = source_relation;
  if (!source_attribute.empty()) {
    out += '.';
    out += source_attribute;
  }
  out += " -> ";
  out += target_relation;
  if (!target_attribute.empty()) {
    out += '.';
    out += target_attribute;
  }
  return out;
}

void CorrespondenceSet::Add(Correspondence correspondence) {
  correspondences_.push_back(std::move(correspondence));
}

void CorrespondenceSet::AddRelation(std::string source_relation,
                                    std::string target_relation) {
  Correspondence c;
  c.source_relation = std::move(source_relation);
  c.target_relation = std::move(target_relation);
  Add(std::move(c));
}

void CorrespondenceSet::AddAttribute(std::string source_relation,
                                     std::string source_attribute,
                                     std::string target_relation,
                                     std::string target_attribute) {
  Correspondence c;
  c.source_relation = std::move(source_relation);
  c.source_attribute = std::move(source_attribute);
  c.target_relation = std::move(target_relation);
  c.target_attribute = std::move(target_attribute);
  Add(std::move(c));
}

std::vector<Correspondence> CorrespondenceSet::AttributesInto(
    std::string_view target_relation) const {
  std::vector<Correspondence> result;
  for (const Correspondence& c : correspondences_) {
    if (c.is_attribute_level() && c.target_relation == target_relation) {
      result.push_back(c);
    }
  }
  return result;
}

std::vector<Correspondence> CorrespondenceSet::AttributesInto(
    std::string_view target_relation,
    std::string_view target_attribute) const {
  std::vector<Correspondence> result;
  for (const Correspondence& c : correspondences_) {
    if (c.is_attribute_level() && c.target_relation == target_relation &&
        c.target_attribute == target_attribute) {
      result.push_back(c);
    }
  }
  return result;
}

std::vector<std::string> CorrespondenceSet::SourceRelationsFor(
    std::string_view target_relation) const {
  std::vector<std::string> result;
  for (const Correspondence& c : correspondences_) {
    if (c.target_relation != target_relation) continue;
    if (std::find(result.begin(), result.end(), c.source_relation) ==
        result.end()) {
      result.push_back(c.source_relation);
    }
  }
  return result;
}

std::vector<std::string> CorrespondenceSet::TargetRelations() const {
  std::vector<std::string> result;
  for (const Correspondence& c : correspondences_) {
    if (std::find(result.begin(), result.end(), c.target_relation) ==
        result.end()) {
      result.push_back(c.target_relation);
    }
  }
  return result;
}

Result<Correspondence> CorrespondenceSet::RelationCorrespondenceFor(
    std::string_view target_relation) const {
  for (const Correspondence& c : correspondences_) {
    if (c.is_relation_level() && c.target_relation == target_relation) {
      return c;
    }
  }
  return Status::NotFound("no relation-level correspondence into '" +
                          std::string(target_relation) + "'");
}

Status CorrespondenceSet::Validate(const Schema& source,
                                   const Schema& target) const {
  for (const Correspondence& c : correspondences_) {
    EFES_ASSIGN_OR_RETURN(const RelationDef* source_rel,
                          source.relation(c.source_relation));
    EFES_ASSIGN_OR_RETURN(const RelationDef* target_rel,
                          target.relation(c.target_relation));
    if (c.source_attribute.empty() != c.target_attribute.empty()) {
      return Status::InvalidArgument(
          "correspondence mixes relation and attribute granularity: " +
          c.ToString());
    }
    if (c.is_attribute_level()) {
      if (!source_rel->AttributeIndex(c.source_attribute).has_value()) {
        return Status::InvalidArgument("unknown source attribute in " +
                                       c.ToString());
      }
      if (!target_rel->AttributeIndex(c.target_attribute).has_value()) {
        return Status::InvalidArgument("unknown target attribute in " +
                                       c.ToString());
      }
    }
    if (c.confidence < 0.0 || c.confidence > 1.0) {
      return Status::InvalidArgument("confidence out of [0,1] in " +
                                     c.ToString());
    }
  }
  return Status::OK();
}

}  // namespace efes
