#include "efes/relational/database.h"

#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

namespace efes {

std::string ConstraintViolation::ToString() const {
  std::ostringstream oss;
  oss << constraint.ToString() << ": " << violating_rows
      << " violating rows";
  return oss.str();
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  tables_.reserve(schema_.relations().size());
  for (const RelationDef& rel : schema_.relations()) {
    tables_.emplace_back(rel);
  }
}

Result<Database> Database::Create(Schema schema) {
  EFES_RETURN_IF_ERROR(schema.Validate());
  return Database(std::move(schema));
}

Result<const Table*> Database::table(std::string_view relation) const {
  for (const Table& t : tables_) {
    if (t.name() == relation) return &t;
  }
  return Status::NotFound("no table '" + std::string(relation) +
                          "' in database '" + name() + "'");
}

Result<Table*> Database::mutable_table(std::string_view relation) {
  for (Table& t : tables_) {
    if (t.name() == relation) return &t;
  }
  return Status::NotFound("no table '" + std::string(relation) +
                          "' in database '" + name() + "'");
}

size_t Database::TotalRowCount() const {
  size_t total = 0;
  for (const Table& t : tables_) total += t.row_count();
  return total;
}

namespace {

/// Serializes the projection of row `r` onto `columns`, or returns false
/// if any projected cell is NULL.
bool ProjectKey(const Table& table, size_t r,
                const std::vector<size_t>& columns, std::string* key) {
  key->clear();
  for (size_t c : columns) {
    const Value& value = table.at(r, c);
    if (value.is_null()) return false;
    std::string repr = value.ToString();
    *key += std::to_string(repr.size());
    *key += ':';
    *key += repr;
    *key += '\x1f';
  }
  return true;
}

std::vector<size_t> ResolveColumns(const RelationDef& def,
                                   const std::vector<std::string>& names) {
  std::vector<size_t> columns;
  columns.reserve(names.size());
  for (const std::string& name : names) {
    columns.push_back(*def.AttributeIndex(name));
  }
  return columns;
}

}  // namespace

std::vector<ConstraintViolation> Database::FindConstraintViolations() const {
  std::vector<ConstraintViolation> violations;
  for (const Constraint& c : schema_.constraints()) {
    auto table_result = table(c.relation);
    if (!table_result.ok()) continue;  // Validate() would have caught this
    const Table& child = **table_result;
    std::vector<size_t> columns = ResolveColumns(child.def(), c.attributes);

    size_t violating = 0;
    switch (c.kind) {
      case ConstraintKind::kNotNull:
        violating = child.NullCount(columns[0]);
        break;
      case ConstraintKind::kUnique:
        violating = child.CountDuplicateProjections(columns);
        break;
      case ConstraintKind::kPrimaryKey: {
        violating = child.CountDuplicateProjections(columns);
        // PK also implies NOT NULL on all key columns.
        for (size_t r = 0; r < child.row_count(); ++r) {
          for (size_t col : columns) {
            if (child.at(r, col).is_null()) {
              ++violating;
              break;
            }
          }
        }
        break;
      }
      case ConstraintKind::kFunctionalDependency: {
        // Rows whose determinant group carries more than one distinct
        // dependent projection violate the FD. NULL determinants exempt.
        std::vector<size_t> dependent_columns =
            ResolveColumns(child.def(), c.referenced_attributes);
        std::map<std::string, std::set<std::string>> dependents_of;
        std::map<std::string, size_t> group_sizes;
        std::string lhs_key;
        std::string rhs_key;
        for (size_t r = 0; r < child.row_count(); ++r) {
          if (!ProjectKey(child, r, columns, &lhs_key)) continue;
          rhs_key.clear();
          for (size_t col : dependent_columns) {
            rhs_key += child.at(r, col).ToString();
            rhs_key += '\x1f';
          }
          dependents_of[lhs_key].insert(rhs_key);
          ++group_sizes[lhs_key];
        }
        for (const auto& [key, dependents] : dependents_of) {
          if (dependents.size() > 1) violating += group_sizes[key];
        }
        break;
      }
      case ConstraintKind::kForeignKey: {
        auto parent_result = table(c.referenced_relation);
        if (!parent_result.ok()) continue;
        const Table& parent = **parent_result;
        std::vector<size_t> parent_columns =
            ResolveColumns(parent.def(), c.referenced_attributes);
        std::unordered_set<std::string> parent_keys;
        std::string key;
        for (size_t r = 0; r < parent.row_count(); ++r) {
          if (ProjectKey(parent, r, parent_columns, &key)) {
            parent_keys.insert(key);
          }
        }
        for (size_t r = 0; r < child.row_count(); ++r) {
          if (ProjectKey(child, r, columns, &key) &&
              parent_keys.count(key) == 0) {
            ++violating;
          }
        }
        break;
      }
    }
    if (violating > 0) {
      violations.push_back(ConstraintViolation{c, violating});
    }
  }
  return violations;
}

bool Database::SatisfiesConstraints() const {
  return FindConstraintViolations().empty();
}

Status Database::LoadCsv(std::string_view relation, const CsvDocument& doc) {
  EFES_ASSIGN_OR_RETURN(Table * target, mutable_table(relation));
  const RelationDef& def = target->def();
  if (doc.header.size() != def.attribute_count()) {
    return Status::InvalidArgument(
        "CSV header arity does not match relation '" +
        std::string(relation) + "'");
  }
  for (size_t i = 0; i < doc.header.size(); ++i) {
    if (doc.header[i] != def.attributes()[i].name) {
      return Status::InvalidArgument("CSV header column '" + doc.header[i] +
                                     "' does not match attribute '" +
                                     def.attributes()[i].name + "'");
    }
  }
  for (const auto& csv_row : doc.rows) {
    std::vector<Value> row;
    row.reserve(csv_row.size());
    for (const std::string& cell : csv_row) {
      if (cell.empty()) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::Text(cell));
      }
    }
    EFES_RETURN_IF_ERROR(target->AppendRow(std::move(row)));
  }
  return Status::OK();
}

Result<CsvDocument> Database::ExportCsv(std::string_view relation) const {
  EFES_ASSIGN_OR_RETURN(const Table* source, table(relation));
  CsvDocument doc;
  for (const AttributeDef& attr : source->def().attributes()) {
    doc.header.push_back(attr.name);
  }
  doc.rows.reserve(source->row_count());
  for (size_t r = 0; r < source->row_count(); ++r) {
    std::vector<std::string> row;
    row.reserve(source->column_count());
    for (size_t c = 0; c < source->column_count(); ++c) {
      const Value& value = source->at(r, c);
      row.push_back(value.is_null() ? "" : value.ToString());
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

}  // namespace efes
