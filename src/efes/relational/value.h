// The dynamically typed cell value of the relational substrate.
//
// EFES analyzes heterogeneous databases, so a single static row type is
// not an option: the same attribute may hold integers in one source and
// formatted strings in another (the paper's length-vs-duration example).
// Value is a small tagged union over NULL, boolean, 64-bit integer,
// double, and string, with explicit casting rules that mirror what the
// value-fit detector needs ("values that cannot be cast to the target
// attribute's datatype", Section 5.1).

#ifndef EFES_RELATIONAL_VALUE_H_
#define EFES_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "efes/common/result.h"

namespace efes {

/// Datatypes supported by the relational substrate. kNull is the type of
/// the SQL NULL literal only; attributes always have a concrete type.
enum class DataType {
  kNull = 0,
  kBoolean,
  kInteger,
  kReal,
  kText,
};

/// Canonical lowercase type name ("integer", "text", ...).
std::string_view DataTypeToString(DataType type);

class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { return Value(Payload(v)); }
  static Value Integer(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Text(std::string v) { return Value(Payload(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (enforced by assert in debug builds, undefined in release).
  bool AsBoolean() const { return std::get<bool>(data_); }
  int64_t AsInteger() const { return std::get<int64_t>(data_); }
  double AsReal() const { return std::get<double>(data_); }
  const std::string& AsText() const { return std::get<std::string>(data_); }

  /// Returns the value as a double regardless of numeric representation.
  /// Requires type() to be kInteger or kReal.
  double NumericValue() const;

  /// True if the value is losslessly representable in `target`:
  /// - NULL casts to anything;
  /// - integer -> real -> text always cast;
  /// - text casts to integer/real only if it parses completely;
  /// - boolean casts to text and integer.
  bool CanCastTo(DataType target) const;

  /// Performs the cast; fails with kTypeMismatch when CanCastTo is false.
  Result<Value> CastTo(DataType target) const;

  /// Human-readable rendering; NULL renders as "NULL", text verbatim.
  std::string ToString() const;

  /// Total order used for sorting and grouping: NULL < booleans <
  /// numerics (compared by value across kInteger/kReal) < text.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Hash consistent with operator== (numeric 3 == 3.0 hash equal).
  size_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// std::hash adapter so Value works in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace efes

#endif  // EFES_RELATIONAL_VALUE_H_
