#include "efes/relational/schema_text.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "efes/common/string_util.h"

namespace efes {

namespace {

/// Token stream over the DDL text: identifiers/keywords, punctuation.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) { Advance(); }

  /// Current token, uppercased for keyword comparison; empty at EOF.
  const std::string& upper() const { return upper_; }
  /// Current token verbatim (identifiers keep their case).
  const std::string& raw() const { return raw_; }
  bool AtEnd() const { return raw_.empty(); }

  void Advance() {
    SkipSpaceAndComments();
    raw_.clear();
    upper_.clear();
    if (position_ >= text_.size()) return;
    char c = text_[position_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      while (position_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[position_])) ||
              text_[position_] == '_')) {
        raw_.push_back(text_[position_++]);
      }
    } else {
      raw_.push_back(text_[position_++]);
    }
    upper_ = raw_;
    for (char& ch : upper_) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
  }

  /// Consumes the token if it equals `keyword` (case-insensitive).
  bool Accept(std::string_view keyword) {
    if (upper_ != keyword) return false;
    Advance();
    return true;
  }

  Status Expect(std::string_view keyword) {
    if (!Accept(keyword)) {
      return Status::ParseError("expected '" + std::string(keyword) +
                                "' but found '" + raw_ + "'");
    }
    return Status::OK();
  }

  /// Consumes and returns an identifier token.
  Result<std::string> Identifier() {
    if (raw_.empty() ||
        (!std::isalpha(static_cast<unsigned char>(raw_[0])) &&
         raw_[0] != '_')) {
      return Status::ParseError("expected identifier, found '" + raw_ +
                                "'");
    }
    std::string name = raw_;
    Advance();
    return name;
  }

 private:
  void SkipSpaceAndComments() {
    while (position_ < text_.size()) {
      char c = text_[position_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++position_;
      } else if (c == '-' && position_ + 1 < text_.size() &&
                 text_[position_ + 1] == '-') {
        while (position_ < text_.size() && text_[position_] != '\n') {
          ++position_;
        }
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t position_ = 0;
  std::string raw_;
  std::string upper_;
};

Result<DataType> ParseType(Tokenizer& tokens) {
  std::string type = tokens.upper();
  tokens.Advance();
  // Swallow an optional length like VARCHAR(255).
  if (tokens.raw() == "(") {
    tokens.Advance();
    while (!tokens.AtEnd() && tokens.raw() != ")") tokens.Advance();
    EFES_RETURN_IF_ERROR(tokens.Expect(")"));
  }
  if (type == "INTEGER" || type == "INT" || type == "BIGINT" ||
      type == "SMALLINT") {
    return DataType::kInteger;
  }
  if (type == "REAL" || type == "FLOAT" || type == "DOUBLE" ||
      type == "NUMERIC" || type == "DECIMAL") {
    return DataType::kReal;
  }
  if (type == "TEXT" || type == "STRING" || type == "VARCHAR" ||
      type == "CHAR") {
    return DataType::kText;
  }
  if (type == "BOOLEAN" || type == "BOOL") {
    return DataType::kBoolean;
  }
  return Status::ParseError("unknown type '" + type + "'");
}

Result<std::vector<std::string>> ParseColumnList(Tokenizer& tokens) {
  EFES_RETURN_IF_ERROR(tokens.Expect("("));
  std::vector<std::string> columns;
  while (true) {
    EFES_ASSIGN_OR_RETURN(std::string column, tokens.Identifier());
    columns.push_back(std::move(column));
    if (tokens.Accept(",")) continue;
    EFES_RETURN_IF_ERROR(tokens.Expect(")"));
    return columns;
  }
}

/// REFERENCES <table> ( <column> [, ...] )
struct ReferenceClause {
  std::string table;
  std::vector<std::string> columns;
};

Result<ReferenceClause> ParseReferences(Tokenizer& tokens) {
  ReferenceClause clause;
  EFES_ASSIGN_OR_RETURN(clause.table, tokens.Identifier());
  EFES_ASSIGN_OR_RETURN(clause.columns, ParseColumnList(tokens));
  return clause;
}

Status ParseCreateTable(Tokenizer& tokens, Schema* schema) {
  EFES_RETURN_IF_ERROR(tokens.Expect("TABLE"));
  EFES_ASSIGN_OR_RETURN(std::string table_name, tokens.Identifier());
  EFES_RETURN_IF_ERROR(tokens.Expect("("));

  std::vector<AttributeDef> attributes;
  std::vector<Constraint> constraints;

  while (true) {
    if (tokens.Accept("PRIMARY")) {
      EFES_RETURN_IF_ERROR(tokens.Expect("KEY"));
      EFES_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                            ParseColumnList(tokens));
      constraints.push_back(Constraint::PrimaryKey(table_name, columns));
    } else if (tokens.Accept("UNIQUE")) {
      EFES_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                            ParseColumnList(tokens));
      constraints.push_back(Constraint::Unique(table_name, columns));
    } else if (tokens.Accept("FUNCTIONAL")) {
      EFES_RETURN_IF_ERROR(tokens.Expect("DEPENDENCY"));
      EFES_ASSIGN_OR_RETURN(std::vector<std::string> determinant,
                            ParseColumnList(tokens));
      EFES_RETURN_IF_ERROR(tokens.Expect("DETERMINES"));
      EFES_ASSIGN_OR_RETURN(std::vector<std::string> dependent,
                            ParseColumnList(tokens));
      constraints.push_back(Constraint::FunctionalDependency(
          table_name, determinant, dependent));
    } else if (tokens.Accept("FOREIGN")) {
      EFES_RETURN_IF_ERROR(tokens.Expect("KEY"));
      EFES_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                            ParseColumnList(tokens));
      EFES_RETURN_IF_ERROR(tokens.Expect("REFERENCES"));
      EFES_ASSIGN_OR_RETURN(ReferenceClause reference,
                            ParseReferences(tokens));
      constraints.push_back(Constraint::ForeignKey(
          table_name, columns, reference.table, reference.columns));
    } else {
      // Column definition.
      EFES_ASSIGN_OR_RETURN(std::string column, tokens.Identifier());
      EFES_ASSIGN_OR_RETURN(DataType type, ParseType(tokens));
      attributes.push_back(AttributeDef{column, type});

      // Column-level constraint suffixes, any order.
      while (true) {
        if (tokens.Accept("PRIMARY")) {
          EFES_RETURN_IF_ERROR(tokens.Expect("KEY"));
          constraints.push_back(
              Constraint::PrimaryKey(table_name, {column}));
        } else if (tokens.Accept("NOT")) {
          EFES_RETURN_IF_ERROR(tokens.Expect("NULL"));
          constraints.push_back(Constraint::NotNull(table_name, column));
        } else if (tokens.Accept("UNIQUE")) {
          constraints.push_back(Constraint::Unique(table_name, {column}));
        } else if (tokens.Accept("REFERENCES")) {
          EFES_ASSIGN_OR_RETURN(ReferenceClause reference,
                                ParseReferences(tokens));
          constraints.push_back(Constraint::ForeignKey(
              table_name, {column}, reference.table, reference.columns));
        } else {
          break;
        }
      }
    }
    if (tokens.Accept(",")) continue;
    EFES_RETURN_IF_ERROR(tokens.Expect(")"));
    break;
  }
  EFES_RETURN_IF_ERROR(tokens.Expect(";"));

  EFES_RETURN_IF_ERROR(
      schema->AddRelation(RelationDef(table_name, std::move(attributes))));
  for (Constraint& constraint : constraints) {
    schema->AddConstraint(std::move(constraint));
  }
  return Status::OK();
}

std::string_view TypeKeyword(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kReal:
      return "REAL";
    case DataType::kText:
      return "TEXT";
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kNull:
      return "TEXT";
  }
  return "TEXT";
}

}  // namespace

Result<Schema> ParseSchemaText(std::string_view ddl,
                               std::string schema_name) {
  Schema schema(std::move(schema_name));
  Tokenizer tokens(ddl);
  while (!tokens.AtEnd()) {
    if (tokens.Accept("CREATE")) {
      EFES_RETURN_IF_ERROR(ParseCreateTable(tokens, &schema));
    } else if (tokens.Accept(";")) {
      // stray semicolon
    } else {
      return Status::ParseError("expected CREATE TABLE, found '" +
                                tokens.raw() + "'");
    }
  }
  EFES_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

std::string WriteSchemaText(const Schema& schema) {
  std::ostringstream out;
  out << "-- schema " << schema.name() << "\n";
  for (const RelationDef& relation : schema.relations()) {
    out << "CREATE TABLE " << relation.name() << " (\n";
    bool first = true;
    for (const AttributeDef& attribute : relation.attributes()) {
      if (!first) out << ",\n";
      first = false;
      out << "  " << attribute.name << " " << TypeKeyword(attribute.type);
      // Single-column NOT NULL inline (PKs and the rest go below).
      for (const Constraint& c : schema.ConstraintsFor(relation.name())) {
        if (c.kind == ConstraintKind::kNotNull &&
            c.attributes[0] == attribute.name) {
          out << " NOT NULL";
        }
      }
    }
    // Table-level constraints (everything except NOT NULL).
    for (const Constraint& c : schema.ConstraintsFor(relation.name())) {
      switch (c.kind) {
        case ConstraintKind::kNotNull:
          break;
        case ConstraintKind::kPrimaryKey:
          out << ",\n  PRIMARY KEY (" << Join(c.attributes, ", ") << ")";
          break;
        case ConstraintKind::kUnique:
          out << ",\n  UNIQUE (" << Join(c.attributes, ", ") << ")";
          break;
        case ConstraintKind::kForeignKey:
          out << ",\n  FOREIGN KEY (" << Join(c.attributes, ", ")
              << ") REFERENCES " << c.referenced_relation << " ("
              << Join(c.referenced_attributes, ", ") << ")";
          break;
        case ConstraintKind::kFunctionalDependency:
          out << ",\n  FUNCTIONAL DEPENDENCY (" << Join(c.attributes, ", ")
              << ") DETERMINES (" << Join(c.referenced_attributes, ", ")
              << ")";
          break;
      }
    }
    out << "\n);\n";
  }
  return out.str();
}

}  // namespace efes
