// A database = a schema plus one table instance per relation.
//
// Databases also know how to check their own constraints
// (`FindConstraintViolations`), which the synthetic generators use to
// assert that every *source* instance is valid with respect to its own
// schema — the paper's standing assumption ("we assume that every
// instance is valid wrt. its schema", Section 3.1). Violations only
// emerge when data is moved across schemas.

#ifndef EFES_RELATIONAL_DATABASE_H_
#define EFES_RELATIONAL_DATABASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/common/csv.h"
#include "efes/common/result.h"
#include "efes/relational/schema.h"
#include "efes/relational/table.h"

namespace efes {

/// One detected violation of a schema constraint by the instance.
struct ConstraintViolation {
  Constraint constraint;
  /// Number of offending rows (NOT NULL: null rows; UNIQUE/PK: rows in a
  /// duplicated group; FK: rows with a dangling reference).
  size_t violating_rows = 0;

  std::string ToString() const;
};

class Database {
 public:
  /// Creates a database with empty tables for every relation. The schema
  /// must pass `Schema::Validate()`.
  static Result<Database> Create(Schema schema);

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  const std::vector<Table>& tables() const { return tables_; }

  /// Looks up the instance of `relation`.
  Result<const Table*> table(std::string_view relation) const;
  Result<Table*> mutable_table(std::string_view relation);

  /// Total number of tuples across all tables.
  size_t TotalRowCount() const;

  /// Evaluates every declared constraint against the instance and returns
  /// the non-empty violations.
  std::vector<ConstraintViolation> FindConstraintViolations() const;

  /// Convenience: true iff FindConstraintViolations() is empty.
  bool SatisfiesConstraints() const;

  /// Bulk-loads rows from a CSV document into `relation`. The CSV header
  /// must match the relation's attribute names (same order). Empty cells
  /// become NULL.
  Status LoadCsv(std::string_view relation, const CsvDocument& doc);

  /// Exports the instance of `relation` as CSV (NULL as empty cell).
  Result<CsvDocument> ExportCsv(std::string_view relation) const;

 private:
  explicit Database(Schema schema);

  Schema schema_;
  std::vector<Table> tables_;  // aligned with schema_.relations()
};

}  // namespace efes

#endif  // EFES_RELATIONAL_DATABASE_H_
