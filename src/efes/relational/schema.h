// Relational schemas: relations, attributes, and constraints.
//
// A data integration scenario (Section 3.1 of the paper) consists of
// source databases and a target database, each of which is "a relational
// schema, an instance of this schema, and a set of constraints". This
// header models the schema-plus-constraints part; instances live in
// table.h / database.h.

#ifndef EFES_RELATIONAL_SCHEMA_H_
#define EFES_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/result.h"
#include "efes/relational/value.h"

namespace efes {

/// One attribute (column) of a relation.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kText;
};

/// One relation (table) definition.
class RelationDef {
 public:
  RelationDef() = default;
  RelationDef(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t attribute_count() const { return attributes_.size(); }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> AttributeIndex(std::string_view name) const;

  /// The attribute named `name`; fails with kNotFound when absent.
  Result<AttributeDef> Attribute(std::string_view name) const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// Kinds of declarative constraints supported by the substrate. These are
/// exactly the kinds CSGs can express through prescribed cardinalities
/// (Section 4.1): unique, not-null, primary key (unique + not-null), and
/// foreign key.
enum class ConstraintKind {
  kPrimaryKey,
  kUnique,
  kNotNull,
  kForeignKey,
  /// Functional dependency X -> Y within one relation: `attributes` is
  /// the determinant X, `referenced_attributes` the dependent Y
  /// (`referenced_relation` stays empty). The paper notes that CSGs
  /// express these through complex relationships (Section 4.1).
  kFunctionalDependency,
};

std::string_view ConstraintKindToString(ConstraintKind kind);

/// A schema constraint. `attributes` lists the constrained attributes of
/// `relation` (one for kNotNull; one or more for keys). For kForeignKey,
/// `referenced_relation`/`referenced_attributes` name the parent side,
/// positionally aligned with `attributes`.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kNotNull;
  std::string relation;
  std::vector<std::string> attributes;
  std::string referenced_relation;
  std::vector<std::string> referenced_attributes;

  static Constraint PrimaryKey(std::string relation,
                               std::vector<std::string> attributes);
  static Constraint Unique(std::string relation,
                           std::vector<std::string> attributes);
  static Constraint NotNull(std::string relation, std::string attribute);
  static Constraint ForeignKey(std::string relation,
                               std::vector<std::string> attributes,
                               std::string referenced_relation,
                               std::vector<std::string> referenced_attributes);
  static Constraint FunctionalDependency(
      std::string relation, std::vector<std::string> determinant,
      std::vector<std::string> dependent);

  /// E.g. "PRIMARY KEY records(id)" or
  /// "FOREIGN KEY tracks(record) REFERENCES records(id)".
  std::string ToString() const;

  friend bool operator==(const Constraint& a, const Constraint& b) = default;
};

/// A named relational schema: relations plus constraints.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a relation; fails with kAlreadyExists on duplicate names.
  Status AddRelation(RelationDef relation);

  /// Adds a constraint; `Validate()` checks referential integrity of the
  /// constraint definitions themselves.
  void AddConstraint(Constraint constraint);

  const std::vector<RelationDef>& relations() const { return relations_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Looks up a relation by name.
  Result<const RelationDef*> relation(std::string_view name) const;
  bool HasRelation(std::string_view name) const;

  /// All constraints whose `relation` is `relation_name`.
  std::vector<Constraint> ConstraintsFor(std::string_view relation_name) const;

  /// True if (relation, attribute) is covered by a NOT NULL constraint or
  /// by membership in the primary key.
  bool IsNotNullable(std::string_view relation,
                     std::string_view attribute) const;

  /// True if {attribute} alone is declared unique (single-column UNIQUE or
  /// single-column primary key).
  bool IsUniqueAttribute(std::string_view relation,
                         std::string_view attribute) const;

  /// Primary key attributes of `relation`, empty if none declared.
  std::vector<std::string> PrimaryKeyOf(std::string_view relation) const;

  /// Total number of attributes across all relations; the counting
  /// baseline's main input.
  size_t TotalAttributeCount() const;

  /// Checks internal consistency: constraints reference existing relations
  /// and attributes, FK sides have equal arity, at most one PK per
  /// relation.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<RelationDef> relations_;
  std::vector<Constraint> constraints_;
};

}  // namespace efes

#endif  // EFES_RELATIONAL_SCHEMA_H_
