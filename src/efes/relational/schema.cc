#include "efes/relational/schema.h"

#include <algorithm>
#include <sstream>

namespace efes {

std::optional<size_t> RelationDef::AttributeIndex(
    std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<AttributeDef> RelationDef::Attribute(std::string_view name) const {
  std::optional<size_t> index = AttributeIndex(name);
  if (!index.has_value()) {
    return Status::NotFound("no attribute '" + std::string(name) +
                            "' in relation '" + name_ + "'");
  }
  return attributes_[*index];
}

std::string_view ConstraintKindToString(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kPrimaryKey:
      return "PRIMARY KEY";
    case ConstraintKind::kUnique:
      return "UNIQUE";
    case ConstraintKind::kNotNull:
      return "NOT NULL";
    case ConstraintKind::kForeignKey:
      return "FOREIGN KEY";
    case ConstraintKind::kFunctionalDependency:
      return "FUNCTIONAL DEPENDENCY";
  }
  return "UNKNOWN";
}

Constraint Constraint::PrimaryKey(std::string relation,
                                  std::vector<std::string> attributes) {
  Constraint c;
  c.kind = ConstraintKind::kPrimaryKey;
  c.relation = std::move(relation);
  c.attributes = std::move(attributes);
  return c;
}

Constraint Constraint::Unique(std::string relation,
                              std::vector<std::string> attributes) {
  Constraint c;
  c.kind = ConstraintKind::kUnique;
  c.relation = std::move(relation);
  c.attributes = std::move(attributes);
  return c;
}

Constraint Constraint::NotNull(std::string relation, std::string attribute) {
  Constraint c;
  c.kind = ConstraintKind::kNotNull;
  c.relation = std::move(relation);
  c.attributes = {std::move(attribute)};
  return c;
}

Constraint Constraint::ForeignKey(
    std::string relation, std::vector<std::string> attributes,
    std::string referenced_relation,
    std::vector<std::string> referenced_attributes) {
  Constraint c;
  c.kind = ConstraintKind::kForeignKey;
  c.relation = std::move(relation);
  c.attributes = std::move(attributes);
  c.referenced_relation = std::move(referenced_relation);
  c.referenced_attributes = std::move(referenced_attributes);
  return c;
}

Constraint Constraint::FunctionalDependency(
    std::string relation, std::vector<std::string> determinant,
    std::vector<std::string> dependent) {
  Constraint c;
  c.kind = ConstraintKind::kFunctionalDependency;
  c.relation = std::move(relation);
  c.attributes = std::move(determinant);
  c.referenced_attributes = std::move(dependent);
  return c;
}

std::string Constraint::ToString() const {
  std::ostringstream oss;
  oss << ConstraintKindToString(kind) << " " << relation << "(";
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << attributes[i];
  }
  oss << ")";
  if (kind == ConstraintKind::kForeignKey) {
    oss << " REFERENCES " << referenced_relation << "(";
    for (size_t i = 0; i < referenced_attributes.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << referenced_attributes[i];
    }
    oss << ")";
  } else if (kind == ConstraintKind::kFunctionalDependency) {
    oss << " DETERMINES (";
    for (size_t i = 0; i < referenced_attributes.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << referenced_attributes[i];
    }
    oss << ")";
  }
  return oss.str();
}

Status Schema::AddRelation(RelationDef relation) {
  if (HasRelation(relation.name())) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists in schema '" + name_ +
                                 "'");
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

void Schema::AddConstraint(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

Result<const RelationDef*> Schema::relation(std::string_view name) const {
  for (const RelationDef& rel : relations_) {
    if (rel.name() == name) return &rel;
  }
  return Status::NotFound("no relation '" + std::string(name) +
                          "' in schema '" + name_ + "'");
}

bool Schema::HasRelation(std::string_view name) const {
  return std::any_of(
      relations_.begin(), relations_.end(),
      [&](const RelationDef& rel) { return rel.name() == name; });
}

std::vector<Constraint> Schema::ConstraintsFor(
    std::string_view relation_name) const {
  std::vector<Constraint> result;
  for (const Constraint& c : constraints_) {
    if (c.relation == relation_name) result.push_back(c);
  }
  return result;
}

bool Schema::IsNotNullable(std::string_view relation,
                           std::string_view attribute) const {
  for (const Constraint& c : constraints_) {
    if (c.relation != relation) continue;
    if (c.kind == ConstraintKind::kNotNull && c.attributes.size() == 1 &&
        c.attributes[0] == attribute) {
      return true;
    }
    if (c.kind == ConstraintKind::kPrimaryKey &&
        std::find(c.attributes.begin(), c.attributes.end(), attribute) !=
            c.attributes.end()) {
      return true;
    }
  }
  return false;
}

bool Schema::IsUniqueAttribute(std::string_view relation,
                               std::string_view attribute) const {
  for (const Constraint& c : constraints_) {
    if (c.relation != relation) continue;
    if ((c.kind == ConstraintKind::kUnique ||
         c.kind == ConstraintKind::kPrimaryKey) &&
        c.attributes.size() == 1 && c.attributes[0] == attribute) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Schema::PrimaryKeyOf(
    std::string_view relation) const {
  for (const Constraint& c : constraints_) {
    if (c.relation == relation && c.kind == ConstraintKind::kPrimaryKey) {
      return c.attributes;
    }
  }
  return {};
}

size_t Schema::TotalAttributeCount() const {
  size_t total = 0;
  for (const RelationDef& rel : relations_) {
    total += rel.attribute_count();
  }
  return total;
}

Status Schema::Validate() const {
  for (const Constraint& c : constraints_) {
    EFES_ASSIGN_OR_RETURN(const RelationDef* rel, relation(c.relation));
    if (c.attributes.empty()) {
      return Status::InvalidArgument("constraint without attributes on '" +
                                     c.relation + "'");
    }
    for (const std::string& attr : c.attributes) {
      if (!rel->AttributeIndex(attr).has_value()) {
        return Status::InvalidArgument("constraint references missing "
                                       "attribute '" +
                                       attr + "' of '" + c.relation + "'");
      }
    }
    if (c.kind == ConstraintKind::kNotNull && c.attributes.size() != 1) {
      return Status::InvalidArgument("NOT NULL must cover one attribute");
    }
    if (c.kind == ConstraintKind::kFunctionalDependency) {
      if (c.referenced_attributes.empty()) {
        return Status::InvalidArgument(
            "functional dependency without dependent attributes on '" +
            c.relation + "'");
      }
      for (const std::string& attr : c.referenced_attributes) {
        if (!rel->AttributeIndex(attr).has_value()) {
          return Status::InvalidArgument(
              "functional dependency references missing attribute '" +
              attr + "' of '" + c.relation + "'");
        }
      }
    }
    if (c.kind == ConstraintKind::kForeignKey) {
      EFES_ASSIGN_OR_RETURN(const RelationDef* parent,
                            relation(c.referenced_relation));
      if (c.referenced_attributes.size() != c.attributes.size()) {
        return Status::InvalidArgument("FK arity mismatch on '" +
                                       c.relation + "'");
      }
      for (const std::string& attr : c.referenced_attributes) {
        if (!parent->AttributeIndex(attr).has_value()) {
          return Status::InvalidArgument(
              "FK references missing attribute '" + attr + "' of '" +
              c.referenced_relation + "'");
        }
      }
    }
  }
  // At most one primary key per relation.
  for (const RelationDef& rel : relations_) {
    int pk_count = 0;
    for (const Constraint& c : constraints_) {
      if (c.relation == rel.name() &&
          c.kind == ConstraintKind::kPrimaryKey) {
        ++pk_count;
      }
    }
    if (pk_count > 1) {
      return Status::InvalidArgument("multiple primary keys on '" +
                                     rel.name() + "'");
    }
  }
  return Status::OK();
}

}  // namespace efes
