// The experimental study of Section 6: runs EFES, the simulated
// practitioner (measured ground truth), and the counting baseline on both
// case-study domains, calibrating EFES and the baseline by cross
// validation ("we used the effort measurements from the bibliographic
// domain to calibrate the parameters [...] for the estimation of the
// music domain scenarios, and vice versa").

#ifndef EFES_EXPERIMENT_STUDY_H_
#define EFES_EXPERIMENT_STUDY_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"
#include "efes/core/task.h"

namespace efes {

/// One bar triple of Figures 6/7: a scenario at one expected quality.
struct ScenarioOutcome {
  std::string scenario;
  ExpectedQuality quality = ExpectedQuality::kLowEffort;

  // Measured (ground truth), with breakdown.
  double measured_total = 0.0;
  double measured_mapping = 0.0;
  double measured_structure = 0.0;
  double measured_values = 0.0;

  // EFES estimate (calibrated), with breakdown.
  double efes_total = 0.0;
  double efes_mapping = 0.0;
  double efes_structure = 0.0;
  double efes_values = 0.0;

  // Counting baseline estimate (calibrated), with its coarse breakdown.
  double counting_total = 0.0;
  double counting_mapping = 0.0;
  double counting_cleaning = 0.0;
};

/// All outcomes of one domain plus the error measures.
struct StudyResult {
  std::string domain;
  std::vector<ScenarioOutcome> outcomes;
  double efes_rmse = 0.0;
  double counting_rmse = 0.0;

  /// Renders the Figure 6/7-style table: one row per (scenario, quality)
  /// with the EFES / Measured / Counting columns and breakdowns, followed
  /// by the RMSE line.
  std::string ToText() const;

  /// Renders the figures' bar-chart form in ASCII: per (scenario,
  /// quality) one bar each for Efes / Measured / Counting, the Efes and
  /// Measured bars segmented into mapping (M), structure cleaning (S),
  /// and value cleaning (V).
  std::string ToBarChart(size_t width = 60) const;
};

struct StudyOptions {
  /// Seed for the ground-truth practitioner simulation.
  uint64_t ground_truth_seed = 1234;
  /// EFES calibration scale and counting minutes-per-attribute; values
  /// <= 0 mean "uncalibrated" (scale 1, Harden default rate).
  double efes_scale = 1.0;
  double counting_minutes_per_attribute = -1.0;
};

/// Runs one domain's scenarios under both expected qualities.
Result<StudyResult> RunStudy(const std::string& domain,
                             const std::vector<IntegrationScenario>& scenarios,
                             const StudyOptions& options);

/// Full cross-validated reproduction of Section 6.2: calibrate on the
/// bibliographic domain, evaluate on music, and vice versa.
struct CrossValidatedStudies {
  StudyResult bibliographic;
  StudyResult music;
  double overall_efes_rmse = 0.0;
  double overall_counting_rmse = 0.0;
};

Result<CrossValidatedStudies> RunCrossValidatedStudies(
    uint64_t ground_truth_seed = 1234);

}  // namespace efes

#endif  // EFES_EXPERIMENT_STUDY_H_
