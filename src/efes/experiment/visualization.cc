#include "efes/experiment/visualization.h"

#include <algorithm>
#include <sstream>

#include "efes/mapping/mapping_module.h"
#include "efes/structure/structure_module.h"
#include "efes/values/value_module.h"

namespace efes {

namespace {

/// The schema element a structural conflict points at: the attribute end
/// of its target relationship (the child attribute for equality edges).
std::string ConflictElement(const CsgGraph& graph,
                            const StructureConflict& conflict) {
  const CsgRelationship& rel =
      graph.relationship(conflict.target_relationship);
  const CsgNode& from = graph.node(rel.from);
  const CsgNode& to = graph.node(rel.to);
  if (to.kind == CsgNodeKind::kAttribute) return to.QualifiedName();
  return from.QualifiedName();
}

/// Linear ramp from light yellow to red by problem share.
std::string HeatColor(size_t problems, size_t max_problems) {
  if (problems == 0 || max_problems == 0) return "white";
  double share = static_cast<double>(problems) /
                 static_cast<double>(max_problems);
  // Hue from 60 (yellow) down to 0 (red), HSV string form Graphviz takes.
  double hue = (1.0 - share) * 60.0 / 360.0;
  std::ostringstream oss;
  oss.precision(3);
  oss << std::fixed << hue << " 0.6 1.0";
  return oss.str();
}

std::string EscapeLabel(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

ProblemCounts CollectProblemCounts(const EstimationResult& result) {
  ProblemCounts problems;
  for (const ModuleRun& run : result.module_runs) {
    if (const auto* structure =
            dynamic_cast<const StructureComplexityReport*>(
                run.report.get())) {
      for (const SourceStructureAssessment& source : structure->sources()) {
        for (const StructureConflict& conflict : source.conflicts) {
          problems[ConflictElement(structure->target_graph(), conflict)] +=
              conflict.violation_count;
        }
      }
    } else if (const auto* values =
                   dynamic_cast<const ValueComplexityReport*>(
                       run.report.get())) {
      for (const ValueHeterogeneity& heterogeneity :
           values->heterogeneities()) {
        size_t weight = std::max<size_t>(
            heterogeneity.affected_values,
            heterogeneity.systematic ? 1 : heterogeneity.source_distinct_values);
        problems[heterogeneity.target_attribute] += std::max<size_t>(
            weight, 1);
      }
    } else if (const auto* mapping =
                   dynamic_cast<const MappingComplexityReport*>(
                       run.report.get())) {
      for (const MappingConnection& connection : mapping->connections()) {
        // A connection is work but not a defect; count it once so the
        // relation is visibly "touched".
        problems[connection.target_table] += 1;
      }
    }
  }
  return problems;
}

std::string RenderProblemHeatmapDot(const IntegrationScenario& scenario,
                                    const ProblemCounts& problems) {
  size_t max_problems = 0;
  for (const auto& [element, count] : problems) {
    max_problems = std::max(max_problems, count);
  }

  std::ostringstream dot;
  dot << "digraph efes_problems {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=plaintext, fontname=\"Helvetica\"];\n"
      << "  label=\"Integration problems in target '"
      << scenario.target.name() << "' (scenario " << scenario.name
      << ")\";\n";

  const Schema& schema = scenario.target.schema();
  for (const RelationDef& relation : schema.relations()) {
    auto relation_problems = problems.find(relation.name());
    dot << "  \"" << relation.name()
        << "\" [label=<<TABLE BORDER=\"0\" CELLBORDER=\"1\" "
           "CELLSPACING=\"0\">\n";
    dot << "    <TR><TD BGCOLOR=\"lightgray\"><B>"
        << EscapeLabel(relation.name()) << "</B>"
        << (relation_problems != problems.end()
                ? " (" + std::to_string(relation_problems->second) + ")"
                : "")
        << "</TD></TR>\n";
    for (const AttributeDef& attribute : relation.attributes()) {
      std::string key = relation.name() + "." + attribute.name;
      auto attribute_problems = problems.find(key);
      size_t count = attribute_problems == problems.end()
                         ? 0
                         : attribute_problems->second;
      dot << "    <TR><TD PORT=\"" << attribute.name << "\" BGCOLOR=\""
          << HeatColor(count, max_problems) << "\">"
          << EscapeLabel(attribute.name);
      if (count > 0) dot << " (" << count << ")";
      dot << "</TD></TR>\n";
    }
    dot << "  </TABLE>>];\n";
  }

  for (const Constraint& constraint : schema.constraints()) {
    if (constraint.kind != ConstraintKind::kForeignKey) continue;
    dot << "  \"" << constraint.relation << "\":\""
        << constraint.attributes[0] << "\" -> \""
        << constraint.referenced_relation << "\":\""
        << constraint.referenced_attributes[0] << "\" [style=dashed];\n";
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace efes
