#include "efes/experiment/study.h"

#include <algorithm>
#include <sstream>

#include "efes/baseline/counting_estimator.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/metrics.h"
#include "efes/scenario/bibliographic.h"
#include "efes/scenario/ground_truth.h"
#include "efes/scenario/music.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

namespace {

constexpr ExpectedQuality kQualities[] = {ExpectedQuality::kLowEffort,
                                          ExpectedQuality::kHighQuality};

std::string QualityLabel(ExpectedQuality quality) {
  return quality == ExpectedQuality::kLowEffort ? "low eff." : "high qual.";
}

}  // namespace

std::string StudyResult::ToText() const {
  std::ostringstream oss;
  oss << "=== " << domain << " study ===\n";
  TextTable table;
  table.SetHeader({"Scenario", "Quality", "Efes [min]", "Measured [min]",
                   "Counting [min]", "Efes (map/str/val)",
                   "Measured (map/str/val)"});
  for (const ScenarioOutcome& outcome : outcomes) {
    table.AddRow(
        {outcome.scenario, QualityLabel(outcome.quality),
         FormatDouble(outcome.efes_total, 4),
         FormatDouble(outcome.measured_total, 4),
         FormatDouble(outcome.counting_total, 4),
         FormatDouble(outcome.efes_mapping, 4) + "/" +
             FormatDouble(outcome.efes_structure, 4) + "/" +
             FormatDouble(outcome.efes_values, 4),
         FormatDouble(outcome.measured_mapping, 4) + "/" +
             FormatDouble(outcome.measured_structure, 4) + "/" +
             FormatDouble(outcome.measured_values, 4)});
  }
  oss << table.ToString();
  oss << "rmse(Efes) = " << FormatDouble(efes_rmse, 4)
      << ", rmse(Counting) = " << FormatDouble(counting_rmse, 4) << "\n";
  return oss.str();
}

std::string StudyResult::ToBarChart(size_t width) const {
  double max_minutes = 1.0;
  for (const ScenarioOutcome& outcome : outcomes) {
    max_minutes = std::max({max_minutes, outcome.efes_total,
                            outcome.measured_total,
                            outcome.counting_total});
  }
  auto segmented_bar = [&](double mapping, double structure,
                           double values) {
    auto chars = [&](double minutes) {
      return static_cast<size_t>(minutes / max_minutes *
                                 static_cast<double>(width));
    };
    std::string bar(chars(mapping), 'M');
    bar.append(chars(structure), 'S');
    bar.append(chars(values), 'V');
    return bar;
  };
  std::ostringstream oss;
  oss << domain << " (bar width = " << FormatDouble(max_minutes, 4)
      << " min; M mapping, S structure cleaning, V value cleaning, "
      << "# unattributed)\n";
  for (const ScenarioOutcome& outcome : outcomes) {
    std::string label = outcome.scenario + " (" +
                        QualityLabel(outcome.quality) + ")";
    oss << label << "\n";
    oss << "  Efes     |"
        << segmented_bar(outcome.efes_mapping, outcome.efes_structure,
                         outcome.efes_values)
        << "  " << FormatDouble(outcome.efes_total, 4) << "\n";
    oss << "  Measured |"
        << segmented_bar(outcome.measured_mapping,
                         outcome.measured_structure,
                         outcome.measured_values)
        << "  " << FormatDouble(outcome.measured_total, 4) << "\n";
    oss << "  Counting |"
        << std::string(static_cast<size_t>(outcome.counting_total /
                                           max_minutes *
                                           static_cast<double>(width)),
                       '#')
        << "  " << FormatDouble(outcome.counting_total, 4) << "\n";
  }
  return oss.str();
}

Result<StudyResult> RunStudy(
    const std::string& domain,
    const std::vector<IntegrationScenario>& scenarios,
    const StudyOptions& options) {
  EffortModel model = EffortModel::PaperDefault();
  if (options.efes_scale > 0.0) {
    model.set_global_scale(options.efes_scale);
  }
  EfesEngine engine = MakeDefaultEngine(std::move(model));
  CountingEstimator counting(options.counting_minutes_per_attribute);
  ExecutionSettings settings;

  StudyResult result;
  result.domain = domain;
  std::vector<double> measured_totals;
  std::vector<double> efes_totals;
  std::vector<double> counting_totals;

  static Histogram& scenario_ms =
      MetricsRegistry::Global().GetHistogram("study.scenario.ms");
  TraceSpan study_span("study." + domain);
  for (const IntegrationScenario& scenario : scenarios) {
    for (ExpectedQuality quality : kQualities) {
      TraceSpan scenario_span(
          "study." + domain + "." + scenario.name + "." +
              std::string(quality == ExpectedQuality::kLowEffort ? "low"
                                                                 : "high"),
          nullptr, &scenario_ms);
      MetricsRegistry::Global()
          .GetCounter("study.scenario.count")
          .Increment();
      ScenarioOutcome outcome;
      outcome.scenario = scenario.name;
      outcome.quality = quality;

      EFES_ASSIGN_OR_RETURN(
          MeasuredEffort measured,
          SimulateMeasuredEffort(scenario, quality,
                                 options.ground_truth_seed));
      outcome.measured_total = measured.total();
      outcome.measured_mapping = measured.mapping_minutes;
      outcome.measured_structure = measured.structure_minutes;
      outcome.measured_values = measured.value_minutes;

      EFES_ASSIGN_OR_RETURN(EstimationResult estimation,
                            engine.Run(scenario, quality, settings));
      outcome.efes_total = estimation.estimate.TotalMinutes();
      outcome.efes_mapping =
          estimation.estimate.CategoryMinutes(TaskCategory::kMapping);
      outcome.efes_structure = estimation.estimate.CategoryMinutes(
          TaskCategory::kCleaningStructure);
      outcome.efes_values =
          estimation.estimate.CategoryMinutes(TaskCategory::kCleaningValues);

      CountingEstimator::Estimate count = counting.EstimateEffort(scenario);
      outcome.counting_total = count.total_minutes;
      outcome.counting_mapping = count.mapping_minutes;
      outcome.counting_cleaning = count.cleaning_minutes;

      measured_totals.push_back(outcome.measured_total);
      efes_totals.push_back(outcome.efes_total);
      counting_totals.push_back(outcome.counting_total);
      result.outcomes.push_back(std::move(outcome));
    }
  }

  result.efes_rmse = RelativeRmse(measured_totals, efes_totals);
  result.counting_rmse = RelativeRmse(measured_totals, counting_totals);
  return result;
}

namespace {

/// Raw (uncalibrated) totals of one domain, used as training data.
struct TrainingData {
  std::vector<double> measured;
  std::vector<double> efes_raw;
  std::vector<double> attribute_counts;
};

Result<TrainingData> CollectTrainingData(
    const std::vector<IntegrationScenario>& scenarios, uint64_t seed) {
  EfesEngine engine = MakeDefaultEngine();
  ExecutionSettings settings;
  TrainingData data;
  for (const IntegrationScenario& scenario : scenarios) {
    for (ExpectedQuality quality : kQualities) {
      EFES_ASSIGN_OR_RETURN(MeasuredEffort measured,
                            SimulateMeasuredEffort(scenario, quality, seed));
      EFES_ASSIGN_OR_RETURN(EstimationResult estimation,
                            engine.Run(scenario, quality, settings));
      data.measured.push_back(measured.total());
      data.efes_raw.push_back(estimation.estimate.TotalMinutes());
      data.attribute_counts.push_back(
          static_cast<double>(scenario.TotalSourceAttributeCount()));
    }
  }
  return data;
}

/// Calibration parameters trained on one domain.
struct Calibration {
  double efes_scale = 1.0;
  double counting_minutes_per_attribute = 0.0;
};

Calibration Train(const TrainingData& data) {
  Calibration calibration;
  calibration.efes_scale = FitCalibrationScale(data.measured, data.efes_raw);
  calibration.counting_minutes_per_attribute =
      FitCalibrationScale(data.measured, data.attribute_counts);
  return calibration;
}

}  // namespace

Result<CrossValidatedStudies> RunCrossValidatedStudies(
    uint64_t ground_truth_seed) {
  EFES_ASSIGN_OR_RETURN(std::vector<IntegrationScenario> biblio,
                        MakeAllBiblioScenarios());
  EFES_ASSIGN_OR_RETURN(std::vector<IntegrationScenario> music,
                        MakeAllMusicScenarios());

  EFES_ASSIGN_OR_RETURN(TrainingData biblio_data,
                        CollectTrainingData(biblio, ground_truth_seed));
  EFES_ASSIGN_OR_RETURN(TrainingData music_data,
                        CollectTrainingData(music, ground_truth_seed));

  // Cross validation: music is evaluated with parameters trained on the
  // bibliographic measurements, and vice versa.
  Calibration from_biblio = Train(biblio_data);
  Calibration from_music = Train(music_data);

  StudyOptions biblio_options;
  biblio_options.ground_truth_seed = ground_truth_seed;
  biblio_options.efes_scale = from_music.efes_scale;
  biblio_options.counting_minutes_per_attribute =
      from_music.counting_minutes_per_attribute;

  StudyOptions music_options;
  music_options.ground_truth_seed = ground_truth_seed;
  music_options.efes_scale = from_biblio.efes_scale;
  music_options.counting_minutes_per_attribute =
      from_biblio.counting_minutes_per_attribute;

  CrossValidatedStudies studies;
  EFES_ASSIGN_OR_RETURN(studies.bibliographic,
                        RunStudy("Bibliographic", biblio, biblio_options));
  EFES_ASSIGN_OR_RETURN(studies.music,
                        RunStudy("Music", music, music_options));

  // Overall RMSE over all eight scenarios (Section 6.2's closing numbers).
  std::vector<double> measured;
  std::vector<double> efes;
  std::vector<double> counting;
  for (const StudyResult* study : {&studies.bibliographic, &studies.music}) {
    for (const ScenarioOutcome& outcome : study->outcomes) {
      measured.push_back(outcome.measured_total);
      efes.push_back(outcome.efes_total);
      counting.push_back(outcome.counting_total);
    }
  }
  studies.overall_efes_rmse = RelativeRmse(measured, efes);
  studies.overall_counting_rmse = RelativeRmse(measured, counting);
  return studies;
}

}  // namespace efes
