// Source selection (Sections 1 and 3.3): "given a set of integration
// candidates, find the source with the best 'fit'". Ranks candidate
// scenarios (same target, different candidate source) by estimated
// integration effort, exposing the complexity breakdown that explains
// each ranking.

#ifndef EFES_EXPERIMENT_SOURCE_SELECTION_H_
#define EFES_EXPERIMENT_SOURCE_SELECTION_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/engine.h"

namespace efes {

struct SourceRanking {
  std::string scenario;
  /// Problems found by the complexity assessment (phase 1), per module.
  size_t mapping_connections = 0;
  size_t structural_conflicts = 0;
  size_t value_heterogeneities = 0;
  /// Phase 2 estimate at the requested quality.
  double estimated_minutes = 0.0;

  size_t TotalProblems() const {
    return mapping_connections + structural_conflicts +
           value_heterogeneities;
  }
};

/// Runs the engine over every candidate scenario and returns rankings
/// sorted by ascending estimated effort (cheapest-to-integrate first;
/// ties by fewer problems, then name).
Result<std::vector<SourceRanking>> RankSources(
    const EfesEngine& engine,
    const std::vector<IntegrationScenario>& candidates,
    ExpectedQuality quality, const ExecutionSettings& settings);

/// Renders the ranking as a table.
std::string RenderRanking(const std::vector<SourceRanking>& rankings);

}  // namespace efes

#endif  // EFES_EXPERIMENT_SOURCE_SELECTION_H_
