#include "efes/experiment/source_selection.h"

#include <algorithm>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"

namespace efes {

Result<std::vector<SourceRanking>> RankSources(
    const EfesEngine& engine,
    const std::vector<IntegrationScenario>& candidates,
    ExpectedQuality quality, const ExecutionSettings& settings) {
  std::vector<SourceRanking> rankings;
  for (const IntegrationScenario& candidate : candidates) {
    EFES_ASSIGN_OR_RETURN(EstimationResult result,
                          engine.Run(candidate, quality, settings));
    SourceRanking ranking;
    ranking.scenario = candidate.name;
    ranking.estimated_minutes = result.estimate.TotalMinutes();
    for (const ModuleRun& run : result.module_runs) {
      if (run.module == "mapping") {
        ranking.mapping_connections = run.report->ProblemCount();
      } else if (run.module == "structure") {
        ranking.structural_conflicts = run.report->ProblemCount();
      } else if (run.module == "values") {
        ranking.value_heterogeneities = run.report->ProblemCount();
      }
    }
    rankings.push_back(std::move(ranking));
  }
  std::sort(rankings.begin(), rankings.end(),
            [](const SourceRanking& a, const SourceRanking& b) {
              if (a.estimated_minutes != b.estimated_minutes) {
                return a.estimated_minutes < b.estimated_minutes;
              }
              if (a.TotalProblems() != b.TotalProblems()) {
                return a.TotalProblems() < b.TotalProblems();
              }
              return a.scenario < b.scenario;
            });
  return rankings;
}

std::string RenderRanking(const std::vector<SourceRanking>& rankings) {
  TextTable table;
  table.SetHeader({"Rank", "Candidate", "Estimated effort [min]",
                   "Mapping connections", "Structural conflicts",
                   "Value heterogeneities"});
  for (size_t i = 0; i < rankings.size(); ++i) {
    const SourceRanking& ranking = rankings[i];
    table.AddRow({std::to_string(i + 1), ranking.scenario,
                  FormatDouble(ranking.estimated_minutes, 6),
                  std::to_string(ranking.mapping_connections),
                  std::to_string(ranking.structural_conflicts),
                  std::to_string(ranking.value_heterogeneities)});
  }
  return table.ToString();
}

}  // namespace efes
