#include "efes/experiment/metrics.h"

#include <cassert>
#include <cmath>

namespace efes {

double RelativeRmse(const std::vector<double>& measured,
                    const std::vector<double>& estimated) {
  assert(measured.size() == estimated.size());
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < measured.size(); ++i) {
    if (measured[i] == 0.0) continue;
    double relative = (measured[i] - estimated[i]) / measured[i];
    sum += relative * relative;
    ++used;
  }
  if (used == 0) return 0.0;
  return std::sqrt(sum / static_cast<double>(used));
}

double FitCalibrationScale(const std::vector<double>& measured,
                           const std::vector<double>& raw_estimates) {
  assert(measured.size() == raw_estimates.size());
  // Minimize sum_i (1 - s * r_i / m_i)^2 over s:
  //   d/ds = -2 sum (r_i/m_i) (1 - s r_i/m_i) = 0
  //   => s = sum(r_i/m_i) / sum((r_i/m_i)^2).
  double numerator = 0.0;
  double denominator = 0.0;
  for (size_t i = 0; i < measured.size(); ++i) {
    if (measured[i] == 0.0) continue;
    double ratio = raw_estimates[i] / measured[i];
    numerator += ratio;
    denominator += ratio * ratio;
  }
  if (denominator == 0.0) return 1.0;
  return numerator / denominator;
}

}  // namespace efes
