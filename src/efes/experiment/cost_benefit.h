// Cost-benefit analysis of an effort estimate — the first future-work
// direction of Section 7: "integrate EFES with approaches that measure
// the benefit of the integration [...] This integration would allow to
// plot cost-benefit graphs for the integration: the more effort, the
// better the quality of the result."
//
// The analysis orders the estimated tasks by marginal benefit per minute
// (mapping tasks are prerequisites and always come first — without an
// executable mapping there is no integration result at all) and emits
// the cumulative curve: after m minutes of the planned work, the result
// has resolved fraction q of the detected problems.

#ifndef EFES_EXPERIMENT_COST_BENEFIT_H_
#define EFES_EXPERIMENT_COST_BENEFIT_H_

#include <string>
#include <vector>

#include "efes/core/engine.h"

namespace efes {

struct CostBenefitPoint {
  /// Task executed at this step.
  std::string task;
  double task_minutes = 0.0;
  /// Problems this task resolves (its repetition count; 1 for tasks
  /// without one). Mapping tasks carry 0 problem weight — they are the
  /// entry fee.
  double problems_resolved = 0.0;
  /// Running totals after this step.
  double cumulative_minutes = 0.0;
  double cumulative_quality = 0.0;  // fraction of problems resolved, [0,1]
};

struct CostBenefitCurve {
  std::vector<CostBenefitPoint> points;
  double total_minutes = 0.0;
  double total_problems = 0.0;

  /// Minutes needed to reach at least `quality` (in [0,1]); returns
  /// total_minutes when the quality is never reached.
  double MinutesToReach(double quality) const;

  /// Renders the curve as a table.
  std::string ToText() const;
};

/// Builds the curve from an estimate. Mapping tasks execute first (in
/// estimate order), then cleaning tasks by descending problems-per-
/// minute; zero-cost tasks come before all paid cleaning.
CostBenefitCurve AnalyzeCostBenefit(const EffortEstimate& estimate);

}  // namespace efes

#endif  // EFES_EXPERIMENT_COST_BENEFIT_H_
