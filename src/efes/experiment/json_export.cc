#include "efes/experiment/json_export.h"

#include "efes/common/file_io.h"
#include "efes/common/json_writer.h"
#include "efes/dedup/dedup_module.h"
#include "efes/mapping/mapping_module.h"
#include "efes/provenance/render.h"
#include "efes/structure/structure_module.h"
#include "efes/telemetry/report.h"
#include "efes/values/value_module.h"

namespace efes {

namespace {

void WriteModuleDetail(JsonWriter& json, const ComplexityReport& report) {
  if (const auto* mapping =
          dynamic_cast<const MappingComplexityReport*>(&report)) {
    json.Key("connections").BeginArray();
    for (const MappingConnection& connection : mapping->connections()) {
      json.BeginObject()
          .Key("source_database")
          .String(connection.source_database)
          .Key("target_table")
          .String(connection.target_table)
          .Key("source_tables")
          .BeginArray();
      for (const std::string& table : connection.source_tables) {
        json.String(table);
      }
      json.EndArray()
          .Key("attributes")
          .Number(connection.attribute_count)
          .Key("needs_key_generation")
          .Bool(connection.needs_key_generation)
          .Key("foreign_keys")
          .Number(connection.foreign_key_count)
          .EndObject();
    }
    json.EndArray();
  } else if (const auto* structure =
                 dynamic_cast<const StructureComplexityReport*>(&report)) {
    json.Key("conflicts").BeginArray();
    for (const SourceStructureAssessment& source : structure->sources()) {
      for (const StructureConflict& conflict : source.conflicts) {
        json.BeginObject()
            .Key("source_database")
            .String(conflict.source_database)
            .Key("constraint")
            .String(conflict.target_constraint)
            .Key("kind")
            .String(StructuralConflictKindToString(conflict.kind))
            .Key("excess")
            .Bool(conflict.excess)
            .Key("prescribed")
            .String(conflict.prescribed.ToString())
            .Key("inferred")
            .String(conflict.inferred.ToString())
            .Key("source_path")
            .String(conflict.source_path)
            .Key("violations")
            .Number(conflict.violation_count)
            .EndObject();
      }
    }
    json.EndArray();
  } else if (const auto* values =
                 dynamic_cast<const ValueComplexityReport*>(&report)) {
    json.Key("heterogeneities").BeginArray();
    for (const ValueHeterogeneity& heterogeneity :
         values->heterogeneities()) {
      json.BeginObject()
          .Key("type")
          .String(ValueHeterogeneityTypeToString(heterogeneity.type))
          .Key("source_attribute")
          .String(heterogeneity.source_attribute)
          .Key("target_attribute")
          .String(heterogeneity.target_attribute)
          .Key("fit")
          .Number(heterogeneity.overall_fit)
          .Key("source_values")
          .Number(heterogeneity.source_values)
          .Key("distinct_values")
          .Number(heterogeneity.source_distinct_values)
          .Key("affected_values")
          .Number(heterogeneity.affected_values)
          .Key("systematic")
          .Bool(heterogeneity.systematic)
          .Key("format_rules")
          .Number(heterogeneity.source_pattern_count)
          .EndObject();
    }
    json.EndArray();
  } else if (const auto* dedup =
                 dynamic_cast<const DedupComplexityReport*>(&report)) {
    json.Key("findings").BeginArray();
    for (const DuplicateClusterFinding& finding : dedup->findings()) {
      json.BeginObject()
          .Key("target_relation")
          .String(finding.target_relation)
          .Key("blocking_key")
          .String(finding.blocking_key)
          .Key("feeds")
          .BeginArray();
      for (const std::string& feed : finding.feeds) {
        json.String(feed);
      }
      json.EndArray()
          .Key("clusters")
          .Number(finding.cluster_count)
          .Key("duplicate_records")
          .Number(finding.duplicate_records)
          .Key("verification_pairs")
          .Number(finding.verification_pairs)
          .Key("max_cluster_size")
          .Number(finding.max_cluster_size)
          .Key("oversize_blocks")
          .Number(finding.oversize_blocks)
          .Key("key_uniqueness")
          .Number(finding.key_uniqueness)
          .Key("key_fill")
          .Number(finding.key_fill)
          .Key("support_similarity")
          .Number(finding.support_similarity)
          .EndObject();
    }
    json.EndArray();
  }
}

std::string EstimationResultToJsonImpl(const EstimationResult& result,
                                       const MetricsSnapshot* telemetry,
                                       const ProvenanceSnapshot* provenance) {
  JsonWriter json;
  json.BeginObject();

  // `degraded` and per-module `status` appear only on degraded runs, so
  // a clean run exports byte-identically to the pre-containment format.
  if (result.degraded) {
    json.Key("degraded").Bool(true);
  }

  json.Key("modules").BeginArray();
  for (const ModuleRun& run : result.module_runs) {
    json.BeginObject().Key("name").String(run.module);
    if (!run.status.ok()) {
      json.Key("status").String(run.status.ToString());
    }
    if (run.report != nullptr) {
      json.Key("problem_count").Number(run.report->ProblemCount());
      WriteModuleDetail(json, *run.report);
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("tasks").BeginArray();
  for (const TaskEstimate& task : result.estimate.tasks) {
    json.BeginObject()
        .Key("type")
        .String(TaskTypeToString(task.task.type))
        .Key("category")
        .String(TaskCategoryToString(task.task.category))
        .Key("quality")
        .String(ExpectedQualityToString(task.task.quality))
        .Key("subject")
        .String(task.task.subject)
        .Key("parameters")
        .BeginObject();
    for (const auto& [name, value] : task.task.parameters) {
      json.Key(name).Number(value);
    }
    json.EndObject().Key("minutes").Number(task.minutes).EndObject();
  }
  json.EndArray();

  json.Key("totals")
      .BeginObject()
      .Key("minutes")
      .Number(result.estimate.TotalMinutes())
      .Key("mapping")
      .Number(result.estimate.CategoryMinutes(TaskCategory::kMapping))
      .Key("cleaning_structure")
      .Number(
          result.estimate.CategoryMinutes(TaskCategory::kCleaningStructure))
      .Key("cleaning_values")
      .Number(result.estimate.CategoryMinutes(TaskCategory::kCleaningValues))
      .Key("deduplication")
      .Number(result.estimate.CategoryMinutes(TaskCategory::kDeduplication))
      .Key("other")
      .Number(result.estimate.CategoryMinutes(TaskCategory::kOther))
      .EndObject();

  if (telemetry != nullptr) {
    json.Key("telemetry");
    WriteMetricsJson(*telemetry, json);
  }

  if (provenance != nullptr) {
    json.Key("provenance");
    WriteProvenanceJson(*provenance, json);
  }

  json.EndObject();
  return json.ToString();
}

}  // namespace

std::string EstimationResultToJson(const EstimationResult& result) {
  return EstimationResultToJsonImpl(result, nullptr, nullptr);
}

std::string EstimationResultToJson(const EstimationResult& result,
                                   const MetricsSnapshot& telemetry) {
  return EstimationResultToJsonImpl(result, &telemetry, nullptr);
}

std::string EstimationResultToJson(const EstimationResult& result,
                                   const MetricsSnapshot* telemetry,
                                   const ProvenanceSnapshot* provenance) {
  return EstimationResultToJsonImpl(result, telemetry, provenance);
}

Status WriteEstimationResultJsonFile(const EstimationResult& result,
                                     const std::string& path,
                                     const MetricsSnapshot* telemetry,
                                     const ProvenanceSnapshot* provenance) {
  return WriteFileAtomic(
      path,
      EstimationResultToJsonImpl(result, telemetry, provenance) + "\n");
}

std::string StudyResultToJson(const StudyResult& study) {
  JsonWriter json;
  json.BeginObject()
      .Key("domain")
      .String(study.domain)
      .Key("outcomes")
      .BeginArray();
  for (const ScenarioOutcome& outcome : study.outcomes) {
    json.BeginObject()
        .Key("scenario")
        .String(outcome.scenario)
        .Key("quality")
        .String(ExpectedQualityToString(outcome.quality))
        .Key("efes")
        .BeginObject()
        .Key("total")
        .Number(outcome.efes_total)
        .Key("mapping")
        .Number(outcome.efes_mapping)
        .Key("structure")
        .Number(outcome.efes_structure)
        .Key("values")
        .Number(outcome.efes_values)
        .EndObject()
        .Key("measured")
        .BeginObject()
        .Key("total")
        .Number(outcome.measured_total)
        .Key("mapping")
        .Number(outcome.measured_mapping)
        .Key("structure")
        .Number(outcome.measured_structure)
        .Key("values")
        .Number(outcome.measured_values)
        .EndObject()
        .Key("counting")
        .BeginObject()
        .Key("total")
        .Number(outcome.counting_total)
        .Key("mapping")
        .Number(outcome.counting_mapping)
        .Key("cleaning")
        .Number(outcome.counting_cleaning)
        .EndObject()
        .EndObject();
  }
  json.EndArray()
      .Key("efes_rmse")
      .Number(study.efes_rmse)
      .Key("counting_rmse")
      .Number(study.counting_rmse)
      .EndObject();
  return json.ToString();
}

}  // namespace efes
