#include "efes/experiment/default_pipeline.h"

#include <memory>

#include "efes/mapping/mapping_module.h"
#include "efes/structure/structure_module.h"
#include "efes/values/value_module.h"

namespace efes {

EfesEngine MakeDefaultEngine(EffortModel model) {
  EfesEngine engine(std::move(model));
  engine.AddModule(std::make_unique<MappingModule>());
  engine.AddModule(std::make_unique<StructureModule>());
  engine.AddModule(std::make_unique<ValueModule>());
  return engine;
}

}  // namespace efes
