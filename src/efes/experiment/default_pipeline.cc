#include "efes/experiment/default_pipeline.h"

#include <memory>
#include <set>
#include <string>

#include "efes/common/string_util.h"
#include "efes/dedup/dedup_module.h"
#include "efes/mapping/mapping_module.h"
#include "efes/structure/structure_module.h"
#include "efes/values/value_module.h"

namespace efes {

EfesEngine MakeDefaultEngine(EffortModel model, const DedupOptions& dedup) {
  EfesEngine engine(std::move(model));
  engine.AddModule(std::make_unique<MappingModule>());
  engine.AddModule(std::make_unique<StructureModule>());
  engine.AddModule(std::make_unique<ValueModule>());
  engine.AddModule(std::make_unique<DedupModule>(dedup));
  return engine;
}

Result<EfesEngine> MakeEngineForModules(std::string_view modules_csv,
                                        EffortModel model,
                                        const DedupOptions& dedup) {
  std::set<std::string> requested;
  for (const std::string& piece : Split(modules_csv, ',')) {
    std::string name = ToLower(Trim(piece));
    if (name.empty()) continue;
    if (name != "mapping" && name != "structure" && name != "values" &&
        name != "dedup") {
      return Status::InvalidArgument("unknown module '" + name +
                                     "' (available: " + kDefaultModules +
                                     ")");
    }
    if (!requested.insert(name).second) {
      return Status::InvalidArgument("module '" + name +
                                     "' listed more than once");
    }
  }
  if (requested.empty()) {
    return Status::InvalidArgument("module list must name at least one of: " +
                                   std::string(kDefaultModules));
  }
  // Registration always follows the canonical pipeline order, so
  // "dedup,mapping" and "mapping,dedup" produce identical engines.
  EfesEngine engine(std::move(model));
  if (requested.count("mapping") > 0) {
    engine.AddModule(std::make_unique<MappingModule>());
  }
  if (requested.count("structure") > 0) {
    engine.AddModule(std::make_unique<StructureModule>());
  }
  if (requested.count("values") > 0) {
    engine.AddModule(std::make_unique<ValueModule>());
  }
  if (requested.count("dedup") > 0) {
    engine.AddModule(std::make_unique<DedupModule>(dedup));
  }
  return engine;
}

}  // namespace efes
