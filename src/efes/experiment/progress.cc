#include "efes/experiment/progress.h"

#include <sstream>

namespace efes {

double ProgressReport::Fraction() const {
  if (total_minutes == 0.0) return 1.0;
  return completed_minutes / total_minutes;
}

std::string ProgressReport::ToString() const {
  std::ostringstream oss;
  oss.precision(0);
  oss << std::fixed << completed_tasks << "/" << total_tasks
      << " tasks done, " << completed_minutes << " of " << total_minutes
      << " min spent, " << remaining_minutes << " min ("
      << (1.0 - Fraction()) * 100.0 << "%) remaining";
  return oss.str();
}

ProgressReport TrackProgress(
    const EffortEstimate& estimate,
    const std::set<size_t>& completed_task_indices) {
  ProgressReport report;
  report.total_tasks = estimate.tasks.size();
  for (size_t i = 0; i < estimate.tasks.size(); ++i) {
    const TaskEstimate& task = estimate.tasks[i];
    report.total_minutes += task.minutes;
    bool completed = completed_task_indices.count(i) > 0;
    if (completed) {
      ++report.completed_tasks;
      report.completed_minutes += task.minutes;
      continue;
    }
    report.remaining_minutes += task.minutes;
    switch (task.task.category) {
      case TaskCategory::kMapping:
        report.remaining_mapping += task.minutes;
        break;
      case TaskCategory::kCleaningStructure:
        report.remaining_structure += task.minutes;
        break;
      case TaskCategory::kCleaningValues:
        report.remaining_values += task.minutes;
        break;
      case TaskCategory::kDeduplication:
        report.remaining_dedup += task.minutes;
        break;
      case TaskCategory::kOther:
        report.remaining_other += task.minutes;
        break;
    }
  }
  return report;
}

}  // namespace efes
