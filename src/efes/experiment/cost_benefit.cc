#include "efes/experiment/cost_benefit.h"

#include <algorithm>
#include <limits>

#include "efes/common/string_util.h"
#include "efes/common/text_table.h"

namespace efes {

double CostBenefitCurve::MinutesToReach(double quality) const {
  for (const CostBenefitPoint& point : points) {
    if (point.cumulative_quality >= quality) {
      return point.cumulative_minutes;
    }
  }
  return total_minutes;
}

std::string CostBenefitCurve::ToText() const {
  TextTable table;
  table.SetHeader({"Step", "Task", "Minutes", "Problems", "Cum. minutes",
                   "Quality"});
  for (size_t i = 0; i < points.size(); ++i) {
    const CostBenefitPoint& point = points[i];
    table.AddRow({std::to_string(i + 1), point.task,
                  FormatDouble(point.task_minutes, 6),
                  FormatDouble(point.problems_resolved, 6),
                  FormatDouble(point.cumulative_minutes, 6),
                  FormatDouble(point.cumulative_quality, 3)});
  }
  return table.ToString();
}

CostBenefitCurve AnalyzeCostBenefit(const EffortEstimate& estimate) {
  CostBenefitCurve curve;

  // Split prerequisites (mapping) from cleaning work.
  std::vector<const TaskEstimate*> mapping;
  std::vector<const TaskEstimate*> cleaning;
  for (const TaskEstimate& task : estimate.tasks) {
    if (task.task.category == TaskCategory::kMapping) {
      mapping.push_back(&task);
    } else {
      cleaning.push_back(&task);
    }
  }

  auto problems_of = [](const TaskEstimate& task) {
    double repetitions = task.task.Param(task_params::kRepetitions, 0.0);
    return repetitions > 0.0 ? repetitions : 1.0;
  };

  for (const TaskEstimate* task : cleaning) {
    curve.total_problems += problems_of(*task);
  }

  // Cleaning tasks in descending benefit density; free tasks first.
  std::stable_sort(cleaning.begin(), cleaning.end(),
                   [&](const TaskEstimate* a, const TaskEstimate* b) {
                     double density_a =
                         a->minutes == 0.0
                             ? std::numeric_limits<double>::infinity()
                             : problems_of(*a) / a->minutes;
                     double density_b =
                         b->minutes == 0.0
                             ? std::numeric_limits<double>::infinity()
                             : problems_of(*b) / b->minutes;
                     return density_a > density_b;
                   });

  double minutes = 0.0;
  double resolved = 0.0;
  auto append = [&](const TaskEstimate& task, double problems) {
    minutes += task.minutes;
    resolved += problems;
    CostBenefitPoint point;
    point.task = task.task.ToString();
    point.task_minutes = task.minutes;
    point.problems_resolved = problems;
    point.cumulative_minutes = minutes;
    point.cumulative_quality =
        curve.total_problems == 0.0 ? 1.0
                                    : resolved / curve.total_problems;
    curve.points.push_back(std::move(point));
  };

  for (const TaskEstimate* task : mapping) {
    append(*task, 0.0);
  }
  for (const TaskEstimate* task : cleaning) {
    append(*task, problems_of(*task));
  }
  curve.total_minutes = minutes;
  return curve;
}

}  // namespace efes
