// Progress monitoring (Section 1: the estimate helps with "finally
// monitoring the progress of the project"): given an effort estimate and
// the set of tasks already completed, reports remaining effort and
// percentage done, per category and overall.

#ifndef EFES_EXPERIMENT_PROGRESS_H_
#define EFES_EXPERIMENT_PROGRESS_H_

#include <set>
#include <string>

#include "efes/core/engine.h"

namespace efes {

struct ProgressReport {
  double total_minutes = 0.0;
  double completed_minutes = 0.0;
  double remaining_minutes = 0.0;
  size_t total_tasks = 0;
  size_t completed_tasks = 0;

  /// Fraction of effort done, in [0, 1] (1 when the plan is empty).
  double Fraction() const;

  /// Per-category remaining minutes.
  double remaining_mapping = 0.0;
  double remaining_structure = 0.0;
  double remaining_values = 0.0;
  double remaining_dedup = 0.0;
  double remaining_other = 0.0;

  /// "7/10 tasks done, 312 of 480 min spent, 168 min (35%) remaining".
  std::string ToString() const;
};

/// Computes progress. `completed_task_indices` index into
/// `estimate.tasks`; out-of-range indices are ignored.
ProgressReport TrackProgress(const EffortEstimate& estimate,
                             const std::set<size_t>& completed_task_indices);

}  // namespace efes

#endif  // EFES_EXPERIMENT_PROGRESS_H_
