// Accuracy metrics and calibration for the experimental study
// (Section 6.2).

#ifndef EFES_EXPERIMENT_METRICS_H_
#define EFES_EXPERIMENT_METRICS_H_

#include <vector>

namespace efes {

/// The paper's error measure:
///   rmse = sqrt( sum_s ((measured(s) - estimated(s)) / measured(s))^2
///                / #scenarios ).
/// Scenarios with measured == 0 are skipped (no relative error defined).
/// Vectors must have equal length.
double RelativeRmse(const std::vector<double>& measured,
                    const std::vector<double>& estimated);

/// Fits the multiplicative calibration factor `s` minimizing the relative
/// squared error sum_i ((measured_i - s * raw_i) / measured_i)^2 — the
/// cross-validation training step. Returns 1.0 when the fit is degenerate
/// (no usable pairs or all raw estimates 0).
double FitCalibrationScale(const std::vector<double>& measured,
                           const std::vector<double>& raw_estimates);

}  // namespace efes

#endif  // EFES_EXPERIMENT_METRICS_H_
