// Convenience assembly of the full EFES pipeline: the engine loaded with
// the three estimation modules of the paper (mapping, structure, values)
// and the Table 9 effort model.

#ifndef EFES_EXPERIMENT_DEFAULT_PIPELINE_H_
#define EFES_EXPERIMENT_DEFAULT_PIPELINE_H_

#include "efes/core/effort_model.h"
#include "efes/core/engine.h"

namespace efes {

/// Builds an engine with MappingModule, StructureModule, and ValueModule
/// registered (in that order) on top of `model`.
EfesEngine MakeDefaultEngine(EffortModel model = EffortModel::PaperDefault());

}  // namespace efes

#endif  // EFES_EXPERIMENT_DEFAULT_PIPELINE_H_
