// Convenience assembly of the full EFES pipeline: the engine loaded with
// the three estimation modules of the paper (mapping, structure, values)
// plus the deduplication module, and the Table 9 effort model.

#ifndef EFES_EXPERIMENT_DEFAULT_PIPELINE_H_
#define EFES_EXPERIMENT_DEFAULT_PIPELINE_H_

#include <string_view>

#include "efes/common/result.h"
#include "efes/core/effort_model.h"
#include "efes/core/engine.h"
#include "efes/dedup/dedup_options.h"

namespace efes {

/// The module list MakeDefaultEngine registers, in registration order —
/// also the accepted names of MakeEngineForModules.
inline constexpr char kDefaultModules[] = "mapping,structure,values,dedup";

/// Builds an engine with MappingModule, StructureModule, ValueModule, and
/// DedupModule registered (in that order) on top of `model`.
EfesEngine MakeDefaultEngine(EffortModel model = EffortModel::PaperDefault(),
                             const DedupOptions& dedup = DedupOptions());

/// Builds an engine with exactly the modules named in the comma-separated
/// `modules_csv` (names from kDefaultModules, e.g. "mapping,dedup"),
/// registered in the canonical pipeline order regardless of the list
/// order. Unknown or duplicate names and an empty list are
/// kInvalidArgument.
Result<EfesEngine> MakeEngineForModules(
    std::string_view modules_csv,
    EffortModel model = EffortModel::PaperDefault(),
    const DedupOptions& dedup = DedupOptions());

}  // namespace efes

#endif  // EFES_EXPERIMENT_DEFAULT_PIPELINE_H_
