// Machine-readable (JSON) exports of estimation results and study
// outcomes, for downstream tooling: source-selection pipelines consuming
// problem counts, dashboards plotting Figure 6/7-style series, and
// project trackers ingesting the task list.

#ifndef EFES_EXPERIMENT_JSON_EXPORT_H_
#define EFES_EXPERIMENT_JSON_EXPORT_H_

#include <string>

#include "efes/core/engine.h"
#include "efes/experiment/study.h"
#include "efes/provenance/provenance.h"
#include "efes/common/metrics.h"

namespace efes {

/// Serializes a full estimation result:
/// {
///   "modules": [{"name": ..., "problem_count": ..., "report_text": ...,
///                per-module detail arrays}],
///   "tasks": [{"type", "category", "quality", "subject", "parameters",
///              "minutes"}],
///   "totals": {"minutes", "mapping", "cleaning_structure",
///              "cleaning_values", "other"}
/// }
std::string EstimationResultToJson(const EstimationResult& result);

/// Same, plus a "telemetry" section carrying the metrics snapshot
/// ({"counters", "gauges", "histograms"}, see telemetry/report.h) so the
/// exported estimate records what the run cost to compute.
std::string EstimationResultToJson(const EstimationResult& result,
                                   const MetricsSnapshot& telemetry);

/// Same, plus a "provenance" section carrying the recorded node DAG
/// ({"nodes": [{id, kind, label, ...}]}, see provenance/render.h) so
/// every exported effort number is traceable to its evidence. Either
/// pointer may be null to omit its section.
std::string EstimationResultToJson(const EstimationResult& result,
                                   const MetricsSnapshot* telemetry,
                                   const ProvenanceSnapshot* provenance);

/// Serializes a study (the Figure 6/7 data):
/// {"domain", "outcomes": [...], "efes_rmse", "counting_rmse"}.
std::string StudyResultToJson(const StudyResult& study);

/// Atomically writes the JSON export (plus trailing newline) to `path`
/// via common/file_io.h — a crash or transient I/O error never leaves a
/// truncated document behind. `telemetry` and `provenance` may be null.
Status WriteEstimationResultJsonFile(const EstimationResult& result,
                                     const std::string& path,
                                     const MetricsSnapshot* telemetry =
                                         nullptr,
                                     const ProvenanceSnapshot* provenance =
                                         nullptr);

}  // namespace efes

#endif  // EFES_EXPERIMENT_JSON_EXPORT_H_
