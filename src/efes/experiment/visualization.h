// Data-visualization support (Sections 1 and 3.3): "support for data
// visualization: highlight parts of the schemas that are hard to
// integrate". Renders the target schema as a Graphviz DOT document in
// which each relation/attribute is shaded by the number of problems the
// complexity assessment attributes to it — a problem heatmap over the
// schema.

#ifndef EFES_EXPERIMENT_VISUALIZATION_H_
#define EFES_EXPERIMENT_VISUALIZATION_H_

#include <map>
#include <string>

#include "efes/core/engine.h"
#include "efes/core/integration_scenario.h"

namespace efes {

/// Problem counts per target schema element, keyed by "relation" or
/// "relation.attribute".
using ProblemCounts = std::map<std::string, size_t>;

/// Extracts per-element problem counts from an estimation result:
/// structural conflicts attach to their constrained attribute, value
/// heterogeneities to the target attribute, and mapping connections to
/// the target relation.
ProblemCounts CollectProblemCounts(const EstimationResult& result);

/// Renders the target schema as DOT. Relations become record-shaped
/// nodes listing their attributes; elements with problems get a fill
/// color ramping from light yellow (1 problem) to red (the maximum), and
/// their problem count is printed next to the name. Foreign keys become
/// edges.
std::string RenderProblemHeatmapDot(const IntegrationScenario& scenario,
                                    const ProblemCounts& problems);

}  // namespace efes

#endif  // EFES_EXPERIMENT_VISUALIZATION_H_
