#include "efes/common/json_writer.h"

#include <cassert>
#include <cmath>

#include "efes/common/string_util.h"

namespace efes {

std::string JsonWriter::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ << ",";
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ << "{";
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!has_value_.empty());
  has_value_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ << "[";
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!has_value_.empty());
  has_value_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!has_value_.empty());
  if (has_value_.back()) out_ << ",";
  has_value_.back() = true;
  out_ << "\"" << Escape(key) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << "\"" << Escape(value) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";  // JSON has no Inf/NaN
  } else {
    out_ << FormatDouble(value, 12);
  }
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  return *this;
}

}  // namespace efes
