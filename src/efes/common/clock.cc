#include "efes/common/clock.h"

#include <chrono>

namespace efes {

int64_t MonotonicClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Clock* Clock::Default() {
  // EFES_LINT_ALLOW(banned-function): process-lifetime clock singleton, leaked on purpose
  static const MonotonicClock* clock = new MonotonicClock();
  return clock;
}

}  // namespace efes
