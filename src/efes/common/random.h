// Deterministic pseudo-random number generation for the synthetic data
// generators and the ground-truth effort simulator. All EFES experiments
// are reproducible bit-for-bit given the same seed.

#ifndef EFES_COMMON_RANDOM_H_
#define EFES_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace efes {

/// A small, fast, deterministic PRNG (xoshiro256**). Not for cryptography.
class Random {
 public:
  /// Seeds the generator; the same seed yields the same sequence on every
  /// platform (no dependence on std::random_device or libstdc++ details).
  explicit Random(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double UniformDouble();

  /// Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller; deterministic per seed.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Zipf-like rank selection over [0, n): rank r is drawn with probability
  /// proportional to 1 / (r + 1)^s. Used to give generated values a
  /// realistic skew. Requires n > 0.
  size_t Zipf(size_t n, double s = 1.0);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element. `items` must not be empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<size_t>(UniformUint64(items.size()))];
  }

  /// A random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(size_t min_len, size_t max_len);

 private:
  uint64_t state_[4];
  // Cached second output of the last Box–Muller transform.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace efes

#endif  // EFES_COMMON_RANDOM_H_
