// Structured diagnostics for lenient ("recover") ingestion.
//
// EFES's premise is that integration inputs are dirty (paper §5), so the
// ingestion layer must be able to operate *over* defects instead of
// rejecting the whole input at the first malformed row. In recover mode
// the loaders repair or skip what they can and describe each defect as a
// DataIssue; the caller decides whether the collected issues are
// acceptable. Strict mode keeps the historical fail-fast behavior.

#ifndef EFES_COMMON_DATA_ISSUE_H_
#define EFES_COMMON_DATA_ISSUE_H_

#include <string>
#include <vector>

namespace efes {

/// One defect found (and survived) while loading dirty input.
struct DataIssue {
  /// The ingestion layer that hit the defect: "csv", "schema",
  /// "correspondences", "data", "scenario".
  std::string component;
  /// Where: file path, row number, source name — whatever locates it.
  std::string location;
  /// What happened and how it was recovered from.
  std::string message;

  std::string ToString() const {
    std::string out = component;
    if (!location.empty()) {
      out += " (";
      out += location;
      out += ")";
    }
    out += ": ";
    out += message;
    return out;
  }
};

/// Renders one issue per line, for logs and run reports.
inline std::string RenderDataIssues(const std::vector<DataIssue>& issues) {
  std::string out;
  for (const DataIssue& issue : issues) {
    out += issue.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace efes

#endif  // EFES_COMMON_DATA_ISSUE_H_
