// Injectable time source. All durations (spans, latency histograms,
// bench wall times, deadlines) are measured against a Clock so that
// tests can substitute a deterministic FakeClock and assert exact
// durations instead of sleeping. Lives in common/ (not telemetry/)
// because deadline and fault handling need time without depending on
// the telemetry layer.

#ifndef EFES_COMMON_CLOCK_H_
#define EFES_COMMON_CLOCK_H_

#include <cstdint>

namespace efes {

/// Abstract monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed epoch; never decreases.
  virtual int64_t NowNanos() const = 0;

  double NowMillis() const {
    return static_cast<double>(NowNanos()) / 1e6;
  }

  /// Process-wide default clock (a MonotonicClock singleton).
  static const Clock* Default();
};

/// Wall clock backed by std::chrono::steady_clock.
class MonotonicClock : public Clock {
 public:
  int64_t NowNanos() const override;
};

/// Deterministic clock for tests: time only moves when advanced.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override { return now_nanos_; }

  void AdvanceNanos(int64_t nanos) { now_nanos_ += nanos; }
  void AdvanceMicros(int64_t micros) { now_nanos_ += micros * 1000; }
  void AdvanceMillis(int64_t millis) { now_nanos_ += millis * 1000000; }

 private:
  int64_t now_nanos_;
};

}  // namespace efes

#endif  // EFES_COMMON_CLOCK_H_
