// Cooperative cancellation and deadlines (DESIGN.md §14, "Server mode").
//
// Long-running estimation work — a CLI invocation under --timeout-ms, a
// server request under a per-request deadline — is bounded by a
// CancelToken. The token is *cooperative*: nothing is interrupted
// preemptively. Instead, work calls CheckCancellation() at batch
// boundaries (ParallelFor entry, the engine's per-module loop) and
// unwinds with kCancelled/kDeadlineExceeded when the token has tripped.
// Because every checkpoint sits on the calling thread at a batch
// boundary — never inside the canonical-order merge — a run either fails
// whole or completes byte-identically to an uncancelled run; it is never
// torn.
//
// The active token is installed per thread with ScopedCancelToken, the
// same ambient-RAII shape as ScopedProfileCache/ProvenanceRecorder. Pool
// worker threads deliberately have no active token: cancellation is
// observed only at batch boundaries on the driver thread, so which items
// a batch completed before unwinding never leaks into results.
//
// Deadlines are measured against a telemetry Clock so tests can trip
// them with a FakeClock instead of sleeping. A deadline of 0 ms is
// already expired: the first checkpoint fails, deterministically.
//
// Fault point: `serve.cancel` — fires as a cancellation (kCancelled) at
// the n-th checkpoint, which is how the cancellation-correctness
// property test walks every batch boundary.

#ifndef EFES_COMMON_DEADLINE_H_
#define EFES_COMMON_DEADLINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>

#include "efes/common/status.h"
#include "efes/common/thread_annotations.h"

namespace efes {

class Clock;

/// Shared cancellation state between a driver (CLI main, a server
/// watchdog) and the work it bounds. Thread-safe; the not-cancelled fast
/// path is one relaxed atomic load plus, when a deadline is set, one
/// clock read.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a deadline `deadline_ms` from now on `clock` (nullptr =
  /// Clock::Default()). 0 ms means already expired — the next Check()
  /// fails. Call at most once, before sharing the token.
  void SetDeadline(uint64_t deadline_ms, const Clock* clock = nullptr);

  /// Cancels with `reason` (must be non-OK). First cancel wins; later
  /// calls are no-ops. Wakes every WaitCancelled() waiter.
  void Cancel(Status reason);

  /// True once Cancel() ran or a Check() latched an expired deadline.
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while live; otherwise the latched cancellation reason. Checks
  /// the deadline and latches kDeadlineExceeded on expiry, so polling
  /// Check() is how deadlines actually trip.
  Status Check();

  /// The latched reason (OK if not cancelled). Does not poll the
  /// deadline — use Check() for that.
  [[nodiscard]] Status status() const;

  /// Blocks until Cancel() runs (or already ran), for at most
  /// `max_wait_ms`; returns true when the token is cancelled. Does NOT
  /// poll the deadline — a parked request is failed by its watchdog's
  /// Cancel, with the watchdog's fixed reason, so response bytes never
  /// depend on who noticed an expired deadline first. Never waits
  /// unboundedly: this is the one blocking primitive fault-stalled
  /// server requests are allowed to park on.
  bool WaitCancelled(uint64_t max_wait_ms);

  [[nodiscard]] bool has_deadline() const {
    return deadline_nanos_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Absolute deadline in clock nanos; kNoDeadline when unset. The
  /// server watchdog compares this against Clock::NowNanos().
  [[nodiscard]] int64_t deadline_nanos() const {
    return deadline_nanos_.load(std::memory_order_relaxed);
  }

  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

 private:
  const Clock* clock_ = nullptr;
  std::atomic<int64_t> deadline_nanos_{kNoDeadline};
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mutex_;
  std::condition_variable cancelled_cv_;
  Status reason_ EFES_GUARDED_BY(mutex_);  // Valid once cancelled_.
};

/// Installs `token` as the calling thread's active token for the scope.
/// Nesting replaces (inner wins) and restores on exit.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken* token);
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken* previous_;
};

/// The calling thread's active token, or nullptr.
CancelToken* ActiveCancelToken();

/// The checkpoint work places at batch boundaries. Near-zero cost with
/// no token installed and no fault armed. Checks the `serve.cancel`
/// fault point first (normalised to kCancelled, and latched into the
/// active token so later checkpoints stay tripped), then the active
/// token's cancelled/deadline state.
Status CheckCancellation();

}  // namespace efes

#endif  // EFES_COMMON_DEADLINE_H_
