#include "efes/common/text_table.h"

#include <algorithm>

namespace efes {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) {
    columns = std::max(columns, row.cells.size());
  }
  if (columns == 0) return "";

  std::vector<size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    if (!row.is_separator) account(row.cells);
  }

  std::string out;
  auto render_cells = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns; ++i) {
      if (i > 0) out.append(" | ");
      std::string cell = i < cells.size() ? cells[i] : "";
      out.append(cell);
      out.append(widths[i] - cell.size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  auto render_separator = [&]() {
    for (size_t i = 0; i < columns; ++i) {
      if (i > 0) out.append("-+-");
      out.append(widths[i], '-');
    }
    out.push_back('\n');
  };

  if (!header_.empty()) {
    render_cells(header_);
    render_separator();
  }
  for (const Row& row : rows_) {
    if (row.is_separator) {
      render_separator();
    } else {
      render_cells(row.cells);
    }
  }
  return out;
}

}  // namespace efes
