#include "efes/common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

namespace efes {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream oss;
  oss.precision(precision);
  oss << value;
  return oss.str();
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is now the shorter string; keep one rolling row of the DP matrix.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({above + 1, row[j - 1] + 1, substitution});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double NameSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  size_t distance = EditDistance(la, lb);
  size_t longest = std::max(la.size(), lb.size());
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

std::vector<std::string> TokenizeIdentifier(std::string_view identifier) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < identifier.size(); ++i) {
    char c = identifier[i];
    if (c == '_' || c == '-' || c == ' ' || c == '.') {
      flush();
      continue;
    }
    // camelCase boundary: lower/digit followed by upper starts a new token.
    if (std::isupper(static_cast<unsigned char>(c)) && !current.empty() &&
        !std::isupper(static_cast<unsigned char>(current.back()))) {
      flush();
    }
    current.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  flush();
  return tokens;
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = TokenizeIdentifier(a);
  std::vector<std::string> tb = TokenizeIdentifier(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  size_t intersection = 0;
  for (const std::string& token : sa) {
    intersection += sb.count(token);
  }
  size_t union_size = sa.size() + sb.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

}  // namespace efes
