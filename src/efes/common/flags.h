// Shared command-line flag parsing for the EFES tools and benches.
//
// Every binary used to hand-roll its own `--name=value` loop; this is
// the one implementation. A FlagSet owns typed flag registrations and
// parses them out of an argument list, leaving positional arguments (and
// optionally unknown flags) in place:
//
//   FlagSet flags;
//   bool metrics = false;
//   flags.AddBool("metrics", "print the metrics table", &metrics);
//   flags.AddString("out", "<file>", "write the estimate here", &out);
//   Status parsed = flags.Parse(&args);
//   if (!parsed.ok()) {
//     return IsUnknownFlagError(parsed) ? 64 : 2;  // tool convention
//   }
//
// Error taxonomy (the exit-code convention of the tools): a flag that
// was never registered fails with an unknown-flag error
// (IsUnknownFlagError returns true, exit 64); a registered flag with a
// malformed value fails with a usage error (exit 2). UsageText() renders
// the registered flags as an aligned help block, so the tool's usage
// message can never drift from what the parser accepts.

#ifndef EFES_COMMON_FLAGS_H_
#define EFES_COMMON_FLAGS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/status.h"

namespace efes {

class FlagSet {
 public:
  /// What Parse does with `--flag` arguments that were not registered.
  /// Positional (non `--`) arguments are always left in `args`.
  enum class UnknownFlags {
    kReject,  // fail with an unknown-flag error (exit-64 class)
    kKeep,    // leave them in `args` for a later parsing stage
  };

  /// Boolean switch: `--name` (no value).
  FlagSet& AddBool(std::string name, std::string help, bool* target);

  /// String flag: `--name=<value_name>`; the empty value is rejected.
  FlagSet& AddString(std::string name, std::string value_name,
                     std::string help, std::string* target);

  /// Positive-integer flag: `--name=<value_name>`.
  FlagSet& AddUint(std::string name, std::string value_name, std::string help,
                   size_t* target);

  /// Closed-vocabulary flag: the value must be one of `choices`.
  FlagSet& AddChoice(std::string name, std::vector<std::string> choices,
                     std::string help, std::string* target);

  /// Custom flag: `apply` validates and applies the value; a non-OK
  /// return is reported as a usage error. Repeatable on the command
  /// line (each occurrence calls `apply`).
  FlagSet& AddAction(std::string name, std::string value_name,
                     std::string help,
                     std::function<Status(std::string_view)> apply);

  /// Optional-value flag: both `--name` and `--name=<value_name>` parse;
  /// `apply` receives the empty string for the bare form. Rendered as
  /// `--name[=<value_name>]` in UsageText.
  FlagSet& AddOptional(std::string name, std::string value_name,
                       std::string help,
                       std::function<Status(std::string_view)> apply);

  /// Parses `args`, removing every recognized flag (and applying it).
  /// Stops at the first error; recognized flags before the error are
  /// already applied.
  [[nodiscard]] Status Parse(std::vector<std::string>* args,
                             UnknownFlags policy = UnknownFlags::kReject) const;

  /// argc/argv variant with UnknownFlags::kKeep semantics, for harnesses
  /// that forward the remaining argv to another parser (the perf benches
  /// hand theirs to google-benchmark). Malformed values of registered
  /// flags are also kept, so the downstream parser reports them.
  void ParseArgvKeepUnknown(int* argc, char** argv) const;

  /// Aligned help block, two-space indented, one line per flag:
  ///   --name=<value>       help text
  std::string UsageText() const;

 private:
  struct Flag {
    std::string name;        // without the leading "--"
    std::string value_name;  // empty for boolean switches
    std::string help;
    std::function<Status(std::string_view)> apply;
    bool optional_value = false;  // both --name and --name=value parse
  };

  const Flag* Find(std::string_view name) const;

  std::vector<Flag> flags_;
};

/// True when `status` (from FlagSet::Parse) means an unregistered flag
/// was seen — the tools exit 64 for these and 2 for malformed values.
bool IsUnknownFlagError(const Status& status);

}  // namespace efes

#endif  // EFES_COMMON_FLAGS_H_
