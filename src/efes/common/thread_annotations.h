// Lock-discipline annotations checked by efes_analyze (DESIGN.md §15).
//
// EFES_GUARDED_BY(mutex) marks a data member as protected by a mutex
// member of the same class. It expands to nothing at compile time; the
// whole-program analyzer reads the annotation and reports any access to
// the member from a method body that is not lexically inside a
// std::lock_guard / std::unique_lock / std::scoped_lock region of that
// mutex. The macro goes after the declarator name:
//
//   std::deque<Task> queue_ EFES_GUARDED_BY(mutex_);
//   bool stop_ EFES_GUARDED_BY(mutex_) = false;
//
// Conventions enforced by the analyzer:
//   - the annotated member and the mutex belong to the same class;
//   - constructors and destructors are exempt (no concurrent access
//     before/after the object's lifetime);
//   - `x.unlock()` / `x.lock()` on a named lock object suspend and
//     resume its region;
//   - methods whose name ends in `Locked` assert "caller holds the
//     guarding mutex" and are exempt from the access check.

#ifndef EFES_COMMON_THREAD_ANNOTATIONS_H_
#define EFES_COMMON_THREAD_ANNOTATIONS_H_

#define EFES_GUARDED_BY(mutex)

#endif  // EFES_COMMON_THREAD_ANNOTATIONS_H_
