#include "efes/common/fault.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "efes/common/random.h"
#include "efes/common/string_util.h"
#include "efes/common/metrics.h"

namespace efes {

namespace {
thread_local FaultRegistry* tls_request_faults = nullptr;
}  // namespace

FaultRegistry* ActiveRequestFaults() { return tls_request_faults; }

ScopedRequestFaults::ScopedRequestFaults(FaultRegistry* registry)
    : previous_(tls_request_faults) {
  tls_request_faults = registry;
}

ScopedRequestFaults::~ScopedRequestFaults() {
  tls_request_faults = previous_;
}

/// Mutable runtime state of one armed point. Guarded by the registry
/// mutex; the telemetry counters are updated outside it (they are atomic
/// themselves).
struct FaultRegistry::ArmedPoint {
  ArmedPoint(const std::string& name, FaultSpec s)
      : spec(s),
        rng(s.seed),
        hits_counter(
            MetricsRegistry::Global().GetCounter("fault." + name + ".hits")),
        fired_counter(MetricsRegistry::Global().GetCounter("fault." + name +
                                                           ".fired")) {}

  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
  Random rng;
  Counter& hits_counter;
  Counter& fired_counter;
};

FaultRegistry::FaultRegistry() = default;
FaultRegistry::~FaultRegistry() = default;

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    // EFES_LINT_ALLOW(banned-function): process-lifetime registry, leaked on purpose
    auto* r = new FaultRegistry();
    if (const char* env = std::getenv("EFES_FAULTS")) {
      Status status = r->ArmFromList(env);
      if (!status.ok()) {
        std::fprintf(stderr, "EFES_FAULTS ignored: %s\n",
                     status.ToString().c_str());
        r->DisarmAll();
      }
    }
    return r;
  }();
  return *registry;
}

void FaultRegistry::Arm(std::string point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_[point] = std::make_unique<ArmedPoint>(point, spec);
  armed_count_.store(points_.size(), std::memory_order_relaxed);
}

Status FaultRegistry::ArmFromString(std::string_view spec) {
  std::string_view point = Trim(spec);
  FaultSpec parsed;
  size_t colon = point.find(':');
  if (colon != std::string_view::npos) {
    std::string_view options = point.substr(colon + 1);
    point = Trim(point.substr(0, colon));
    for (const std::string& raw_option : Split(options, ',')) {
      std::string_view option = Trim(raw_option);
      if (option == "once") {
        parsed.fire_count = 1;
      } else if (option == "always") {
        parsed.fire_count = 0;
      } else if (option == "throw") {
        parsed.throws = true;
      } else if (StartsWith(option, "n=")) {
        std::optional<int64_t> n = ParseInt64(option.substr(2));
        if (!n.has_value() || *n < 1) {
          return Status::InvalidArgument("bad fault hit index: " +
                                         std::string(option));
        }
        parsed.first_hit = static_cast<uint64_t>(*n);
        parsed.fire_count = 1;
      } else if (StartsWith(option, "count=")) {
        std::optional<int64_t> n = ParseInt64(option.substr(6));
        if (!n.has_value() || *n < 1) {
          return Status::InvalidArgument("bad fault fire count: " +
                                         std::string(option));
        }
        parsed.fire_count = static_cast<uint64_t>(*n);
      } else if (StartsWith(option, "p=")) {
        std::optional<double> p = ParseDouble(option.substr(2));
        if (!p.has_value() || *p < 0.0 || *p > 1.0) {
          return Status::InvalidArgument("bad fault probability: " +
                                         std::string(option));
        }
        parsed.probability = *p;
      } else if (StartsWith(option, "seed=")) {
        std::optional<int64_t> seed = ParseInt64(option.substr(5));
        if (!seed.has_value()) {
          return Status::InvalidArgument("bad fault seed: " +
                                         std::string(option));
        }
        parsed.seed = static_cast<uint64_t>(*seed);
      } else if (StartsWith(option, "code=")) {
        std::string_view code = option.substr(5);
        if (code == "unavailable") {
          parsed.code = StatusCode::kUnavailable;
        } else if (code == "internal") {
          parsed.code = StatusCode::kInternal;
        } else if (code == "notfound") {
          parsed.code = StatusCode::kNotFound;
        } else if (code == "parse") {
          parsed.code = StatusCode::kParseError;
        } else if (code == "resource") {
          parsed.code = StatusCode::kResourceExhausted;
        } else if (code == "invalid") {
          parsed.code = StatusCode::kInvalidArgument;
        } else {
          return Status::InvalidArgument("unknown fault status code: " +
                                         std::string(option));
        }
      } else {
        return Status::InvalidArgument("unknown fault option: " +
                                       std::string(option));
      }
    }
  }
  if (point.empty()) {
    return Status::InvalidArgument("empty fault point name in spec: " +
                                   std::string(spec));
  }
  Arm(std::string(point), parsed);
  return Status::OK();
}

Status FaultRegistry::ArmFromList(std::string_view text) {
  for (const std::string& piece : Split(text, ';')) {
    if (Trim(piece).empty()) continue;
    EFES_RETURN_IF_ERROR(ArmFromString(piece));
  }
  return Status::OK();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

Status FaultRegistry::Check(std::string_view point) {
  Counter* hits_counter = nullptr;
  Counter* fired_counter = nullptr;
  bool fire = false;
  bool throws = false;
  StatusCode code = StatusCode::kUnavailable;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    ArmedPoint& armed = *it->second;
    hits_counter = &armed.hits_counter;
    ++armed.hits;
    if (armed.hits >= armed.spec.first_hit &&
        (armed.spec.fire_count == 0 ||
         armed.fires < armed.spec.fire_count)) {
      fire = armed.spec.probability >= 1.0 ||
             armed.rng.Bernoulli(armed.spec.probability);
    }
    if (fire) {
      ++armed.fires;
      fired_counter = &armed.fired_counter;
      throws = armed.spec.throws;
      code = armed.spec.code;
    }
  }
  hits_counter->Increment();
  if (!fire) return Status::OK();
  fired_counter->Increment();
  MetricsRegistry::Global().GetCounter("fault.fired").Increment();
  std::string message = "injected fault at " + std::string(point);
  if (throws) throw std::runtime_error(message);
  return Status(code, std::move(message));
}

uint64_t FaultRegistry::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second->hits;
}

}  // namespace efes
