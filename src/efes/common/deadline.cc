#include "efes/common/deadline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "efes/common/fault.h"
#include "efes/common/clock.h"

namespace efes {

namespace {

thread_local CancelToken* tls_active_token = nullptr;

/// One fixed message per cancellation cause: responses and reports must
/// stay byte-identical across runs, so no elapsed times in here.
constexpr const char kDeadlineMessage[] = "deadline expired at checkpoint";

}  // namespace

void CancelToken::SetDeadline(uint64_t deadline_ms, const Clock* clock) {
  clock_ = clock != nullptr ? clock : Clock::Default();
  int64_t now = clock_->NowNanos();
  int64_t budget_nanos = static_cast<int64_t>(deadline_ms) * 1'000'000;
  deadline_nanos_.store(now + budget_nanos, std::memory_order_relaxed);
}

void CancelToken::Cancel(Status reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = reason.ok() ? Status::Cancelled("cancelled") : std::move(reason);
    cancelled_.store(true, std::memory_order_release);
  }
  cancelled_cv_.notify_all();
}

Status CancelToken::Check() {
  if (cancelled()) return status();
  int64_t deadline = deadline_nanos_.load(std::memory_order_relaxed);
  if (deadline != kNoDeadline && clock_->NowNanos() >= deadline) {
    Cancel(Status::DeadlineExceeded(kDeadlineMessage));
    return status();
  }
  return Status::OK();
}

Status CancelToken::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cancelled_.load(std::memory_order_relaxed)) return Status::OK();
  return reason_;
}

bool CancelToken::WaitCancelled(uint64_t max_wait_ms) {
  // Waits for Cancel(), deliberately NOT polling the deadline: a parked
  // server request must be failed by the watchdog's Cancel (fixed
  // force-fail reason), not by self-latching expiry — otherwise the
  // response bytes would depend on which side noticed the deadline
  // first. The wait stays bounded by `max_wait_ms` regardless.
  std::unique_lock<std::mutex> lock(mutex_);
  cancelled_cv_.wait_for(lock, std::chrono::milliseconds(max_wait_ms),
                         [this] {
                           return cancelled_.load(std::memory_order_relaxed);
                         });
  return cancelled_.load(std::memory_order_relaxed);
}

ScopedCancelToken::ScopedCancelToken(CancelToken* token)
    : previous_(tls_active_token) {
  tls_active_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { tls_active_token = previous_; }

CancelToken* ActiveCancelToken() { return tls_active_token; }

Status CheckCancellation() {
  CancelToken* token = tls_active_token;
  Status fault = CheckFaultPoint("serve.cancel");
  if (!fault.ok()) {
    // Normalise injected codes to kCancelled so consumers see exactly the
    // two cancellation codes, and latch the active token so every later
    // checkpoint in the same run stays tripped.
    Status cancelled = IsCancellation(fault.code())
                           ? std::move(fault)
                           : Status::Cancelled(fault.message());
    if (token != nullptr) token->Cancel(cancelled);
    return cancelled;
  }
  if (token != nullptr) return token->Check();
  return Status::OK();
}

}  // namespace efes
