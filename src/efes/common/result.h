// Result<T>: the value-or-error companion to Status.
//
// A Result either holds a value of type T or a non-OK Status. It is
// implicitly constructible from both, so functions can `return value;` or
// `return Status::NotFound(...);` interchangeably, and
// EFES_RETURN_IF_ERROR / EFES_ASSIGN_OR_RETURN compose naturally.

#ifndef EFES_COMMON_RESULT_H_
#define EFES_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "efes/common/status.h"

namespace efes {

/// Marked [[nodiscard]] like Status: a Result that is neither checked nor
/// consumed silently swallows the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Accessors require `ok()`; violating this is a programming error.
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace efes

/// Evaluates `expr` (a Result<T>), propagates errors, otherwise moves the
/// value into `lhs`. `lhs` may include a declaration, e.g.
///   EFES_ASSIGN_OR_RETURN(auto table, db.table("tracks"));
#define EFES_ASSIGN_OR_RETURN(lhs, expr)                    \
  EFES_ASSIGN_OR_RETURN_IMPL(                               \
      EFES_RESULT_MACRO_CONCAT(efes_result_tmp_, __LINE__), lhs, expr)

#define EFES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define EFES_RESULT_MACRO_CONCAT_INNER(a, b) a##b
#define EFES_RESULT_MACRO_CONCAT(a, b) EFES_RESULT_MACRO_CONCAT_INNER(a, b)

#endif  // EFES_COMMON_RESULT_H_
