// The EFES parallel-execution layer: a fixed-size shared thread pool and
// the ParallelFor / ParallelMap primitives every hot path runs through.
//
// Design contract (see DESIGN.md, "Parallel execution"):
//   * Determinism. Work is partitioned by index, every task writes only
//     its own index-addressed slot, and callers merge results in canonical
//     index order — never in completion order. The output of a parallel
//     region is therefore bit-identical for any thread count, including 1.
//   * Thread count. Resolved as: SetThreadCountOverride() (the CLI's
//     --threads=N) > the EFES_THREADS environment variable > hardware
//     concurrency. A count of 1 bypasses the pool entirely and runs the
//     exact legacy sequential path on the calling thread.
//   * Errors. Tasks report failures as Status; exceptions escaping a task
//     are captured and converted to StatusCode::kInternal. ParallelFor
//     returns the error of the *lowest* failing index, so failures are as
//     deterministic as successes.
//   * Nesting. A ParallelFor issued from inside a pool task runs inline
//     on the current thread, so nested parallel regions cannot deadlock
//     the fixed-size pool.

#ifndef EFES_COMMON_PARALLEL_H_
#define EFES_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "efes/common/result.h"
#include "efes/common/thread_annotations.h"

namespace efes {

/// std::thread::hardware_concurrency, floored at 1.
size_t HardwareConcurrency();

/// The thread count parallel regions run with: the programmatic override
/// if set, else a positive integer EFES_THREADS environment value, else
/// HardwareConcurrency().
size_t ConfiguredThreadCount();

/// Sets (threads >= 1) or clears (threads == 0) the process-wide thread
/// count override. The shared pool is resized lazily on the next parallel
/// region.
void SetThreadCountOverride(size_t threads);

/// True while the calling thread is executing inside a parallel region
/// (a pool worker, or the caller while it participates in a batch).
/// ParallelFor uses this to run nested regions inline.
bool InParallelRegion();

/// A fixed set of worker threads consuming a FIFO task queue. The
/// destructor drains the queue and joins every worker. Most code should
/// use ParallelFor/ParallelMap, which share one lazily-(re)built pool
/// sized to ConfiguredThreadCount() - 1 workers (the caller participates
/// as the remaining executor).
class ThreadPool {
 public:
  explicit ThreadPool(size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not block on other submitted tasks;
  /// parallel regions built on Submit get nesting safety from
  /// InParallelRegion(), raw submitters are on their own.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_ EFES_GUARDED_BY(mutex_);
  bool stop_ EFES_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Runs `task(i)` for every i in [0, count), distributing indices over
/// ConfiguredThreadCount() threads (dynamic load balancing; the calling
/// thread participates). Returns OK when every task succeeded, otherwise
/// the Status of the lowest failing index. With one thread (or from
/// inside a parallel region) the indices run sequentially in order on the
/// calling thread, stopping at the first error.
Status ParallelFor(size_t count, const std::function<Status(size_t)>& task);

/// Maps [0, count) through `fn`, returning the results in index order.
/// T = decltype(fn(size_t)) must be default-constructible. Determinism
/// and error semantics are those of ParallelFor.
template <typename Fn>
auto ParallelMap(size_t count, const Fn& fn)
    -> Result<std::vector<std::decay_t<std::invoke_result_t<Fn, size_t>>>> {
  using T = std::decay_t<std::invoke_result_t<Fn, size_t>>;
  std::vector<T> results(count);
  Status status = ParallelFor(count, [&](size_t i) -> Status {
    results[i] = fn(i);
    return Status::OK();
  });
  if (!status.ok()) return status;
  return results;
}

}  // namespace efes

#endif  // EFES_COMMON_PARALLEL_H_
