// A minimal streaming JSON writer for the machine-readable report
// exports. Handles escaping, nesting, and comma placement; the caller
// guarantees well-formedness (matched Begin/End, keys only inside
// objects), which assertions check in debug builds.

#ifndef EFES_COMMON_JSON_WRITER_H_
#define EFES_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace efes {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(size_t value) {
    return Number(static_cast<int64_t>(value));
  }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document written so far. Call after closing all scopes.
  std::string ToString() const { return out_.str(); }

  /// Escapes a string for embedding in JSON (quotes not included).
  static std::string Escape(std::string_view text);

 private:
  void BeforeValue();

  std::ostringstream out_;
  /// Per nesting level: whether a value has already been written (for
  /// comma placement).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace efes

#endif  // EFES_COMMON_JSON_WRITER_H_
