// Deterministic fault injection for robustness testing (DESIGN.md,
// "Failure handling & degraded modes").
//
// Production code marks the places where the outside world can fail —
// file opens, renames, module boundaries, parallel tasks — as named
// *fault points*:
//
//   EFES_RETURN_IF_ERROR(CheckFaultPoint("csv.read"));
//
// A disarmed point is a single relaxed atomic load; nothing is
// registered, counted, or allocated, so shipping the checks costs
// effectively nothing and output stays bit-identical to an uninstrumented
// build. Arming a point (CLI `--inject-fault=<point>[:spec]`, environment
// `EFES_FAULTS=<spec>;<spec>`, or FaultRegistry::Arm in tests) makes the
// check fail according to a deterministic trigger spec, which is how the
// fault-injection test matrix exercises every degraded path without
// flaky timing or real disk errors.
//
// Spec grammar (comma-separated options after the point name):
//   csv.read                fire on every hit (code: unavailable)
//   csv.read:once           fire on the first hit only
//   csv.read:n=3            fire on the 3rd hit only
//   csv.read:count=2        fire on the first 2 hits (then recover —
//                           exercises retry paths)
//   csv.read:p=0.5,seed=7   fire per hit with probability 0.5, drawn from
//                           a dedicated PRNG seeded with 7 (deterministic
//                           across runs and platforms)
//   csv.read:throw          fire by throwing std::runtime_error instead of
//                           returning Status (exception-containment paths)
//   csv.read:code=notfound  fire with a specific status code
//                           (unavailable|internal|notfound|parse|resource)
//
// Hits and fires are counted per point into the telemetry registry as
// `fault.<point>.hits` / `fault.<point>.fired` (only once armed).

#ifndef EFES_COMMON_FAULT_H_
#define EFES_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/status.h"
#include "efes/common/thread_annotations.h"

namespace efes {

/// Trigger description for one armed fault point.
struct FaultSpec {
  /// How many hits have to happen before the first fire (1 = fire on the
  /// first hit).
  uint64_t first_hit = 1;
  /// Number of hits that fire starting at `first_hit`; 0 means unlimited.
  uint64_t fire_count = 0;
  /// Per-hit fire probability in [0, 1]; 1.0 fires deterministically.
  double probability = 1.0;
  /// Seed of the per-point PRNG used when probability < 1.
  uint64_t seed = 1;
  /// When set, the point throws std::runtime_error instead of returning a
  /// Status — exercises exception-containment paths.
  bool throws = false;
  /// Status code of the injected error (ignored when `throws`).
  StatusCode code = StatusCode::kUnavailable;
};

/// Process-wide registry of armed fault points. Thread-safe; the
/// nothing-armed fast path is one relaxed atomic load.
class FaultRegistry {
 public:
  /// Registries are also constructible standalone, for request-scoped
  /// fault sets (ScopedRequestFaults). Out-of-line special members:
  /// ArmedPoint is an incomplete type here.
  FaultRegistry();
  ~FaultRegistry();
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  static FaultRegistry& Global();

  /// Arms `point` with `spec`, replacing any previous arming.
  void Arm(std::string point, FaultSpec spec);

  /// Parses and arms one "point[:opt,...]" spec (grammar above).
  Status ArmFromString(std::string_view spec);

  /// Arms every ';'-separated spec in `text` (the EFES_FAULTS format).
  Status ArmFromList(std::string_view text);

  /// Disarms every point and resets hit counts.
  void DisarmAll();

  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Names of currently armed points, sorted.
  std::vector<std::string> ArmedPoints() const;

  /// Records a hit at `point`. Returns a non-OK status (or throws, for
  /// `throw` specs) when the armed trigger fires; OK otherwise, including
  /// for every point that is not armed.
  Status Check(std::string_view point);

  /// Total hits observed at `point` since arming (0 if not armed).
  uint64_t HitCount(std::string_view point) const;

 private:
  struct ArmedPoint;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ArmedPoint>, std::less<>> points_
      EFES_GUARDED_BY(mutex_);
  std::atomic<size_t> armed_count_{0};
};

/// The calling thread's request-scoped registry (see ScopedRequestFaults),
/// or nullptr.
FaultRegistry* ActiveRequestFaults();

/// Installs a request-scoped fault registry on the calling thread for the
/// scope. CheckFaultPoint consults it *in addition to* the process-global
/// registry, so a server can arm faults for one request without them
/// leaking into sibling requests running on other worker threads.
///
/// Thread-local by design: only checkpoints executed on the installing
/// thread see the request's faults. Checkpoints reached on pool worker
/// threads (e.g. `parallel.task`) keep answering to the global registry
/// only — request-scoped arming targets the request-thread points
/// (`engine.assess`, `engine.plan`, `serve.cancel`, `scenario.load`, the
/// io.* points), which is what keeps per-request injection deterministic
/// under any thread count.
class ScopedRequestFaults {
 public:
  explicit ScopedRequestFaults(FaultRegistry* registry);
  ~ScopedRequestFaults();
  ScopedRequestFaults(const ScopedRequestFaults&) = delete;
  ScopedRequestFaults& operator=(const ScopedRequestFaults&) = delete;

 private:
  FaultRegistry* previous_;
};

/// The check production code places at a fault point. Near-zero cost
/// while nothing is armed anywhere: one thread-local read plus one
/// relaxed atomic load.
inline Status CheckFaultPoint(std::string_view point) {
  if (FaultRegistry* request = ActiveRequestFaults();
      request != nullptr && request->AnyArmed()) {
    EFES_RETURN_IF_ERROR(request->Check(point));
  }
  FaultRegistry& registry = FaultRegistry::Global();
  if (!registry.AnyArmed()) return Status::OK();
  return registry.Check(point);
}

}  // namespace efes

#endif  // EFES_COMMON_FAULT_H_
