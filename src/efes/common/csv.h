// Minimal RFC-4180-style CSV reading and writing.
//
// The scenario generators persist their synthetic datasets as CSV so the
// examples can demonstrate loading external data, and tests round-trip
// through this module.
//
// Parsing runs in one of two modes (CsvReadOptions::Mode):
//   * kStrict (default): the historical fail-fast behavior — the first
//     malformed row aborts the parse with a ParseError.
//   * kRecover: malformed rows are repaired (short rows padded, long rows
//     truncated, an unterminated quote closed at end of input) and each
//     repair is described as a DataIssue instead of failing. Dirty inputs
//     are EFES's subject matter (paper §5); recover mode lets the
//     estimator operate over them.
// Both modes enforce resource guards (max field size, max row count) and
// fail with ResourceExhausted instead of allocating without bound.

#ifndef EFES_COMMON_CSV_H_
#define EFES_COMMON_CSV_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/data_issue.h"
#include "efes/common/result.h"

namespace efes {

/// A parsed CSV document: a header row plus data rows. All cells are kept
/// as raw strings; typing happens at the relational layer.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// How to parse and which limits to enforce.
struct CsvReadOptions {
  enum class Mode { kStrict, kRecover };

  Mode mode = Mode::kStrict;
  char delimiter = ',';
  /// Largest accepted single cell; longer cells fail the parse with
  /// ResourceExhausted (both modes — a runaway field is a resource
  /// problem, not a repairable data problem).
  size_t max_field_bytes = 16u << 20;
  /// Largest accepted number of records including the header.
  size_t max_rows = 10u * 1000 * 1000;
};

/// Parses CSV text. Supports quoted fields with embedded delimiters,
/// doubled quotes, and embedded newlines; accepts both \n and \r\n.
/// In strict mode every row must have exactly as many cells as the
/// header; in recover mode misshapen rows are repaired and reported
/// through `issues` (may be null to discard the diagnostics).
Result<CsvDocument> ParseCsv(std::string_view text,
                             const CsvReadOptions& options,
                             std::vector<DataIssue>* issues = nullptr);

/// Strict parse with default limits (the historical entry point).
Result<CsvDocument> ParseCsv(std::string_view text, char delimiter = ',');

/// Serializes a document, quoting cells that contain the delimiter,
/// quotes, or newlines.
std::string WriteCsv(const CsvDocument& doc, char delimiter = ',');

/// Reads and parses a CSV file from disk. Fault point: `csv.read`.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                const CsvReadOptions& options,
                                std::vector<DataIssue>* issues = nullptr);

/// Strict read with default limits.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                char delimiter = ',');

/// Writes a document to disk atomically (temp file + rename), replacing
/// any existing file.
Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter = ',');

/// Streaming CSV ingest: reads a file in fixed-size row blocks instead of
/// materializing the whole document, so profiling can absorb arbitrarily
/// large sources chunk by chunk (profiling/profiler.h). Parsing semantics
/// are identical to ReadCsvFile — same quoting rules, strict/recover
/// behavior, repair messages, and resource limits — because both run the
/// same incremental scanner; only the delivery granularity differs.
///
/// Usage:
///   EFES_ASSIGN_OR_RETURN(ChunkedCsvReader reader,
///                         ChunkedCsvReader::Open(path, options, 65536));
///   while (!reader.done()) {
///     EFES_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
///                           reader.NextChunk(&issues));
///     ...  // at most 65536 rows; empty only at end of file
///   }
class ChunkedCsvReader {
 public:
  /// Opens `path` and parses up to the header row. `chunk_rows` == 0 means
  /// "all remaining rows in one chunk". Fault point: `csv.read`.
  static Result<ChunkedCsvReader> Open(const std::string& path,
                                       const CsvReadOptions& options,
                                       size_t chunk_rows);

  ChunkedCsvReader(ChunkedCsvReader&&) noexcept;
  ChunkedCsvReader& operator=(ChunkedCsvReader&&) noexcept;
  ChunkedCsvReader(const ChunkedCsvReader&) = delete;
  ChunkedCsvReader& operator=(const ChunkedCsvReader&) = delete;
  ~ChunkedCsvReader();

  /// The header row (available immediately after Open succeeds).
  const std::vector<std::string>& header() const;

  /// The next block of at most chunk_rows data rows, normalized to the
  /// header width under the configured mode (repairs reported through
  /// `issues`, which may be null). Returns an empty vector at end of
  /// file. Errors (strict-mode shape violations, resource limits) are
  /// sticky: every later call returns the same status.
  Result<std::vector<std::vector<std::string>>> NextChunk(
      std::vector<DataIssue>* issues = nullptr);

  /// True once the file is exhausted and every row has been delivered.
  bool done() const;

  /// Data rows delivered so far (header excluded).
  size_t rows_delivered() const;

 private:
  struct Impl;
  explicit ChunkedCsvReader(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace efes

#endif  // EFES_COMMON_CSV_H_
