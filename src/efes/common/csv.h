// Minimal RFC-4180-style CSV reading and writing.
//
// The scenario generators persist their synthetic datasets as CSV so the
// examples can demonstrate loading external data, and tests round-trip
// through this module.

#ifndef EFES_COMMON_CSV_H_
#define EFES_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/common/result.h"

namespace efes {

/// A parsed CSV document: a header row plus data rows. All cells are kept
/// as raw strings; typing happens at the relational layer.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Supports quoted fields with embedded delimiters,
/// doubled quotes, and embedded newlines; accepts both \n and \r\n.
/// Every row must have exactly as many cells as the header.
Result<CsvDocument> ParseCsv(std::string_view text, char delimiter = ',');

/// Serializes a document, quoting cells that contain the delimiter,
/// quotes, or newlines.
std::string WriteCsv(const CsvDocument& doc, char delimiter = ',');

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                char delimiter = ',');

/// Writes a document to disk, overwriting any existing file.
Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter = ',');

}  // namespace efes

#endif  // EFES_COMMON_CSV_H_
