// Minimal RFC-4180-style CSV reading and writing.
//
// The scenario generators persist their synthetic datasets as CSV so the
// examples can demonstrate loading external data, and tests round-trip
// through this module.
//
// Parsing runs in one of two modes (CsvReadOptions::Mode):
//   * kStrict (default): the historical fail-fast behavior — the first
//     malformed row aborts the parse with a ParseError.
//   * kRecover: malformed rows are repaired (short rows padded, long rows
//     truncated, an unterminated quote closed at end of input) and each
//     repair is described as a DataIssue instead of failing. Dirty inputs
//     are EFES's subject matter (paper §5); recover mode lets the
//     estimator operate over them.
// Both modes enforce resource guards (max field size, max row count) and
// fail with ResourceExhausted instead of allocating without bound.

#ifndef EFES_COMMON_CSV_H_
#define EFES_COMMON_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/data_issue.h"
#include "efes/common/result.h"

namespace efes {

/// A parsed CSV document: a header row plus data rows. All cells are kept
/// as raw strings; typing happens at the relational layer.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// How to parse and which limits to enforce.
struct CsvReadOptions {
  enum class Mode { kStrict, kRecover };

  Mode mode = Mode::kStrict;
  char delimiter = ',';
  /// Largest accepted single cell; longer cells fail the parse with
  /// ResourceExhausted (both modes — a runaway field is a resource
  /// problem, not a repairable data problem).
  size_t max_field_bytes = 16u << 20;
  /// Largest accepted number of records including the header.
  size_t max_rows = 10u * 1000 * 1000;
};

/// Parses CSV text. Supports quoted fields with embedded delimiters,
/// doubled quotes, and embedded newlines; accepts both \n and \r\n.
/// In strict mode every row must have exactly as many cells as the
/// header; in recover mode misshapen rows are repaired and reported
/// through `issues` (may be null to discard the diagnostics).
Result<CsvDocument> ParseCsv(std::string_view text,
                             const CsvReadOptions& options,
                             std::vector<DataIssue>* issues = nullptr);

/// Strict parse with default limits (the historical entry point).
Result<CsvDocument> ParseCsv(std::string_view text, char delimiter = ',');

/// Serializes a document, quoting cells that contain the delimiter,
/// quotes, or newlines.
std::string WriteCsv(const CsvDocument& doc, char delimiter = ',');

/// Reads and parses a CSV file from disk. Fault point: `csv.read`.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                const CsvReadOptions& options,
                                std::vector<DataIssue>* issues = nullptr);

/// Strict read with default limits.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                char delimiter = ',');

/// Writes a document to disk atomically (temp file + rename), replacing
/// any existing file.
Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter = ',');

}  // namespace efes

#endif  // EFES_COMMON_CSV_H_
