#include "efes/common/metrics.h"

#include <algorithm>

namespace efes {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1) {
  for (auto& bucket : bucket_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  // EFES_LINT_ALLOW(banned-function): paper-constant histogram bounds, leaked on purpose
  static const std::vector<double>* bounds = new std::vector<double>{
      0.01, 0.025, 0.05, 0.1,  0.25,  0.5,   1.0,    2.5,
      5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0};
  return *bounds;
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds: the first bound >= value owns the observation.
  size_t bucket = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                   value) -
                  upper_bounds_.begin();
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  // The first observation seeds min/max; count_ orders after them only
  // loosely, so a concurrent reader may briefly see a stale envelope —
  // fine for telemetry.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    double min = min_.load(std::memory_order_relaxed);
    while (value < min && !min_.compare_exchange_weak(
                              min, value, std::memory_order_relaxed)) {
    }
    double max = max_.load(std::memory_order_relaxed);
    while (value > max && !max_.compare_exchange_weak(
                              max, value, std::memory_order_relaxed)) {
    }
  }
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Min() const {
  return count_.load(std::memory_order_relaxed) == 0
             ? 0.0
             : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return count_.load(std::memory_order_relaxed) == 0
             ? 0.0
             : max_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(bucket_counts_.size());
  for (const auto& bucket : bucket_counts_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : bucket_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramSample::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Walk the cumulative counts to the bucket holding the q-th
  // observation, then interpolate linearly inside it.
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    if (bucket_counts[i] == 0) continue;
    double lower = i == 0 ? min : upper_bounds[i - 1];
    double upper = i < upper_bounds.size() ? upper_bounds[i] : max;
    double position =
        (rank - static_cast<double>(cumulative)) /
        static_cast<double>(bucket_counts[i]);
    cumulative += bucket_counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      double estimate = lower + std::clamp(position, 0.0, 1.0) *
                                    (upper - lower);
      // The exact envelope beats the bucket bounds.
      return std::clamp(estimate, min, max);
    }
  }
  return max;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->TotalCount(),
                                   histogram->Sum(), histogram->Min(),
                                   histogram->Max(),
                                   histogram->upper_bounds(),
                                   histogram->BucketCounts()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // EFES_LINT_ALLOW(banned-function): process-lifetime metrics registry, leaked on purpose
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace efes
