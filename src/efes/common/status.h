// Status: lightweight, exception-free error signalling for EFES.
//
// Library entry points that can fail return `Status` (or `Result<T>`, see
// result.h). The convention follows the Arrow/RocksDB style: a default
// constructed Status is OK, errors carry a code plus a human-readable
// message, and callers are expected to check `ok()` before using results.

#ifndef EFES_COMMON_STATUS_H_
#define EFES_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace efes {

/// Error categories used across the EFES code base.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument violates the function contract.
  kInvalidArgument,
  /// A referenced entity (relation, attribute, node, ...) does not exist.
  kNotFound,
  /// An entity with the given identity already exists.
  kAlreadyExists,
  /// Input data could not be parsed (CSV, config, formulas).
  kParseError,
  /// An operation is not applicable to the operand types at hand.
  kTypeMismatch,
  /// An internal invariant was violated; indicates a bug in EFES itself.
  kInternal,
  /// The requested computation found no admissible answer, e.g. the repair
  /// planner detected contradicting cleaning tasks ("infinite cleaning
  /// loop", Section 4.2 of the paper).
  kUnsatisfiable,
  /// A transient failure (I/O hiccup, injected fault); retrying the same
  /// operation may succeed. Atomic file writes retry on this code.
  kUnavailable,
  /// An input exceeded a configured resource limit (max field size, max
  /// row count) and processing stopped instead of allocating unboundedly.
  kResourceExhausted,
  /// The caller cancelled the operation (deadline.h CancelToken). Work
  /// stops at the next cooperative checkpoint; partial results are
  /// discarded, never returned.
  kCancelled,
  /// The operation's deadline expired before it completed. Like
  /// kCancelled, surfaces only whole-operation failure — callers never
  /// see a torn result.
  kDeadlineExceeded,
};

/// True for the two cancellation codes (kCancelled, kDeadlineExceeded).
/// The engine treats these as run-aborting: a cancelled module is never
/// contained into a degraded/partial estimate.
inline bool IsCancellation(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded;
}

/// Returns the canonical lowercase name of a status code, e.g. "not found".
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that may fail. Cheap to copy in the OK case.
/// Marked [[nodiscard]]: silently dropping a Status hides failures, so a
/// discarded return is a compile error under EFES_WERROR (and an
/// efes_lint `discarded-status` finding). Use `(void)` plus an
/// EFES_LINT_ALLOW comment for the rare intentional drop.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace efes

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define EFES_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::efes::Status efes_status_macro_tmp = (expr);  \
    if (!efes_status_macro_tmp.ok()) {              \
      return efes_status_macro_tmp;                 \
    }                                               \
  } while (false)

#endif  // EFES_COMMON_STATUS_H_
