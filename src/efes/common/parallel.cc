#include "efes/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <string>

#include "efes/common/deadline.h"
#include "efes/common/fault.h"
#include "efes/common/clock.h"
#include "efes/common/metrics.h"

namespace efes {

namespace {

/// Set for the lifetime of a pool worker thread, and on the calling
/// thread while it participates in a batch. Nested ParallelFor calls see
/// it and run inline instead of re-entering the (possibly exhausted) pool.
thread_local bool tls_in_parallel_region = false;

std::atomic<size_t> g_thread_override{0};

/// Per-pool telemetry. `batches` and `items` are scheduling-independent
/// (identical for any thread count on the same input); everything under
/// `parallel.pool.` describes how the work was distributed and timed, so
/// the determinism tests exclude that prefix.
struct PoolTelemetry {
  Counter& batches;
  Counter& items;
  Counter& tasks_scheduled;
  Gauge& threads;
  Histogram& worker_items;
  Histogram& worker_busy_ms;
  Histogram& worker_idle_ms;
};

PoolTelemetry& Telemetry() {
  static PoolTelemetry* telemetry = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static const std::vector<double> item_bounds = {
        1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536};
    // EFES_LINT_ALLOW(banned-function): process-lifetime telemetry handles, leaked on purpose
    return new PoolTelemetry{
        registry.GetCounter("parallel.batches"),
        registry.GetCounter("parallel.items"),
        registry.GetCounter("parallel.pool.tasks_scheduled"),
        registry.GetGauge("parallel.pool.threads"),
        registry.GetHistogram("parallel.pool.worker_items", item_bounds),
        registry.GetHistogram("parallel.pool.worker_busy_ms"),
        registry.GetHistogram("parallel.pool.worker_idle_ms"),
    };
  }();
  return *telemetry;
}

/// Runs one task index, converting escaped exceptions into Status so the
/// pool (and the exception-free library convention) never sees a throw.
/// Fault point: `parallel.task` (arm with `throw` to exercise this very
/// conversion path).
Status RunOne(const std::function<Status(size_t)>& task, size_t index) {
  try {
    EFES_RETURN_IF_ERROR(CheckFaultPoint("parallel.task"));
    return task(index);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("exception in parallel task: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("unknown exception in parallel task");
  }
}

/// The shared pool, rebuilt when the configured thread count changes
/// between batches. Callers hold a shared_ptr for the batch duration, so
/// a resize never destroys a pool that is still executing.
std::shared_ptr<ThreadPool> AcquireSharedPool(size_t worker_count) {
  // EFES_LINT_ALLOW(banned-function): pool guard mutex must outlive every worker; leaked on purpose
  static std::mutex* mutex = new std::mutex();
  static std::shared_ptr<ThreadPool>* pool =
      // EFES_LINT_ALLOW(banned-function): shared pool slot must outlive every worker; leaked on purpose
      new std::shared_ptr<ThreadPool>();
  std::lock_guard<std::mutex> lock(*mutex);
  if (*pool == nullptr || (*pool)->worker_count() != worker_count) {
    *pool = std::make_shared<ThreadPool>(worker_count);
  }
  return *pool;
}

}  // namespace

size_t HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ConfiguredThreadCount() {
  size_t override_count = g_thread_override.load(std::memory_order_relaxed);
  if (override_count > 0) return override_count;
  if (const char* env = std::getenv("EFES_THREADS")) {
    char* end = nullptr;
    unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 &&
        value <= std::numeric_limits<size_t>::max()) {
      return static_cast<size_t>(value);
    }
  }
  return HardwareConcurrency();
}

void SetThreadCountOverride(size_t threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(size_t worker_count) {
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honoring stop so ~ThreadPool never drops
      // submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ParallelFor(size_t count,
                   const std::function<Status(size_t)>& task) {
  // Cancellation checkpoint at the batch boundary, on the calling thread,
  // *before* any item runs: a cancelled batch produces no partial merge,
  // so output stays byte-identical whenever the run completes at all.
  EFES_RETURN_IF_ERROR(CheckCancellation());
  PoolTelemetry& telemetry = Telemetry();
  telemetry.batches.Increment();
  telemetry.items.Increment(count);
  const size_t threads = ConfiguredThreadCount();
  telemetry.threads.Set(static_cast<double>(threads));
  if (count == 0) return Status::OK();

  // Legacy path: one thread, a single item, or a nested region. Runs the
  // indices in order on the calling thread and stops at the first error —
  // exactly the sequential loop this layer replaced. (Sequential
  // execution visits indices in order, so "first error" and the parallel
  // path's "lowest failing index" coincide.)
  if (threads <= 1 || count == 1 || tls_in_parallel_region) {
    for (size_t i = 0; i < count; ++i) {
      EFES_RETURN_IF_ERROR(RunOne(task, i));
    }
    return Status::OK();
  }

  std::shared_ptr<ThreadPool> pool = AcquireSharedPool(threads - 1);
  const size_t runners = std::min(threads, count);
  const Clock& clock = *Clock::Default();
  const int64_t batch_start_nanos = clock.NowNanos();

  struct RunnerStats {
    size_t items = 0;
    double busy_ms = 0.0;
  };
  std::vector<RunnerStats> stats(runners);
  std::atomic<size_t> next_index{0};

  // Failures are rare; every index always runs so the reported error (the
  // lowest failing index) does not depend on scheduling order.
  std::mutex error_mutex;
  size_t first_error_index = std::numeric_limits<size_t>::max();
  Status first_error = Status::OK();

  auto run_batch_share = [&](size_t runner) {
    const bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    const int64_t start_nanos = clock.NowNanos();
    size_t processed = 0;
    size_t i;
    while ((i = next_index.fetch_add(1, std::memory_order_relaxed)) <
           count) {
      Status status = RunOne(task, i);
      ++processed;
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::move(status);
        }
      }
    }
    stats[runner].items = processed;
    stats[runner].busy_ms =
        static_cast<double>(clock.NowNanos() - start_nanos) / 1e6;
    tls_in_parallel_region = was_in_region;
  };

  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t done_runners = 0;
  for (size_t runner = 1; runner < runners; ++runner) {
    pool->Submit([&, runner] {
      run_batch_share(runner);
      // Notify under the lock: done_cv lives on the caller's stack, and
      // signalling after unlock would race the caller waking, returning,
      // and destroying it.
      std::lock_guard<std::mutex> lock(done_mutex);
      ++done_runners;
      done_cv.notify_one();
    });
  }
  telemetry.tasks_scheduled.Increment(runners - 1);

  run_batch_share(0);
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done_runners == runners - 1; });
  }

  const double batch_wall_ms =
      static_cast<double>(clock.NowNanos() - batch_start_nanos) / 1e6;
  for (const RunnerStats& runner_stats : stats) {
    telemetry.worker_items.Observe(static_cast<double>(runner_stats.items));
    telemetry.worker_busy_ms.Observe(runner_stats.busy_ms);
    telemetry.worker_idle_ms.Observe(
        std::max(0.0, batch_wall_ms - runner_stats.busy_ms));
  }

  if (first_error_index != std::numeric_limits<size_t>::max()) {
    return first_error;
  }
  return Status::OK();
}

}  // namespace efes
