#include "efes/common/status.h"

namespace efes {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kTypeMismatch:
      return "type mismatch";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnsatisfiable:
      return "unsatisfiable";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace efes
