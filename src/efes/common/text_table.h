// Plain-text table rendering used by the complexity-report and
// effort-estimate printers as well as by the benchmark harnesses that
// regenerate the paper's tables.

#ifndef EFES_COMMON_TEXT_TABLE_H_
#define EFES_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace efes {

/// Accumulates rows of string cells and renders them column-aligned:
///
///   Target table | Source tables | Attributes | Primary key
///   -------------+---------------+------------+------------
///   records      | 3             | 2          | yes
class TextTable {
 public:
  /// Sets the header row. Resets nothing else; call before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header;
  /// missing cells render empty.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  size_t row_count() const { return rows_.size(); }

  /// Renders the table. Every line ends with '\n'.
  std::string ToString() const;

 private:
  struct Row {
    bool is_separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace efes

#endif  // EFES_COMMON_TEXT_TABLE_H_
