#include "efes/common/random.h"

#include <cassert>
#include <cmath>

namespace efes {

namespace {

// SplitMix64, used to expand the single seed into xoshiro's 256-bit state.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Random::NextUint64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextUint64()
                                             : UniformUint64(span));
}

double Random::UniformDouble() {
  // 53 top bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Random::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Random::Zipf(size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF sampling over the (small) discrete distribution.
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t r = 0; r < n; ++r) {
    cumulative += 1.0 / std::pow(static_cast<double>(r + 1), s);
    if (cumulative >= target) return r;
  }
  return n - 1;
}

std::string Random::Word(size_t min_len, size_t max_len) {
  assert(min_len <= max_len && min_len > 0);
  static constexpr char kVowels[] = "aeiou";
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
  size_t length = min_len + static_cast<size_t>(
                                UniformUint64(max_len - min_len + 1));
  std::string word;
  word.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      word.push_back(kConsonants[UniformUint64(sizeof(kConsonants) - 1)]);
    } else {
      word.push_back(kVowels[UniformUint64(sizeof(kVowels) - 1)]);
    }
  }
  return word;
}

}  // namespace efes
