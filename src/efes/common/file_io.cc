#include "efes/common/file_io.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "efes/common/fault.h"
#include "efes/common/random.h"
#include "efes/common/metrics.h"

namespace efes {

namespace fs = std::filesystem;

namespace {

/// FNV-1a over the target path: a platform-stable jitter seed (std::hash
/// is not specified to agree across standard libraries).
uint64_t HashPath(std::string_view path) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Transient errors are worth retrying; everything else (bad path,
/// permission denied modeled as invalid argument, parse errors) is not.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// One write-and-rename attempt.
Status WriteOnce(const fs::path& path, const fs::path& temp_path,
                 std::string_view content) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("io.write.open"));
  std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " +
                                   temp_path.string());
  }
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  file.flush();
  Status write_fault = CheckFaultPoint("io.write.write");
  if (!file.good() || !write_fault.ok()) {
    file.close();
    std::error_code ec;
    fs::remove(temp_path, ec);
    if (!write_fault.ok()) return write_fault;
    return Status::Unavailable("short write to " + temp_path.string());
  }
  file.close();
  Status commit_fault = CheckFaultPoint("io.write.commit");
  std::error_code ec;
  if (commit_fault.ok()) {
    fs::rename(temp_path, path, ec);
  }
  if (!commit_fault.ok() || ec) {
    std::error_code remove_ec;
    fs::remove(temp_path, remove_ec);
    if (!commit_fault.ok()) return commit_fault;
    return Status::Unavailable("cannot rename " + temp_path.string() +
                               " to " + path.string() + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace

int RetryBackoffMs(int initial_backoff_ms, int attempt, uint64_t seed) {
  if (initial_backoff_ms <= 0 || attempt < 1) return 0;
  // Cap the doubling so the shift stays defined even for absurd attempt
  // counts; 2^20 ms (~17 min) is already far beyond any sane policy.
  int exponent = attempt - 1 > 20 ? 20 : attempt - 1;
  int64_t base = static_cast<int64_t>(initial_backoff_ms) << exponent;
  Random rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt)));
  int64_t jitter = static_cast<int64_t>(
      rng.UniformUint64(static_cast<uint64_t>(base)));
  return static_cast<int>(base + jitter);
}

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const WriteFileOptions& options) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Counter& files = metrics.GetCounter("file_io.files");
  static Counter& retries = metrics.GetCounter("file_io.retries");
  static Counter& failures = metrics.GetCounter("file_io.failures");

  fs::path target(path);
  // The temp file must live in the target directory: rename(2) is only
  // atomic within one filesystem.
  fs::path temp_path = target;
  temp_path += ".tmp";

  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  const uint64_t jitter_seed = HashPath(path) ^ options.backoff_seed;
  Status status;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries.Increment();
      // Seeded jitter spreads concurrent retriers over the backoff
      // window instead of re-colliding on a fixed interval.
      int backoff_ms =
          RetryBackoffMs(options.initial_backoff_ms, attempt, jitter_seed);
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
    status = WriteOnce(target, temp_path, content);
    if (status.ok()) {
      files.Increment();
      return status;
    }
    if (!IsTransient(status)) break;
  }
  failures.Increment();
  return status;
}

Result<std::string> ReadFileToString(const std::string& path) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("io.read"));
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return Status::Unavailable("read error on " + path);
  }
  return buffer.str();
}

}  // namespace efes
