#include "efes/common/file_io.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "efes/common/fault.h"
#include "efes/telemetry/metrics.h"

namespace efes {

namespace fs = std::filesystem;

namespace {

/// Transient errors are worth retrying; everything else (bad path,
/// permission denied modeled as invalid argument, parse errors) is not.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// One write-and-rename attempt.
Status WriteOnce(const fs::path& path, const fs::path& temp_path,
                 std::string_view content) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("io.write.open"));
  std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " +
                                   temp_path.string());
  }
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  file.flush();
  Status write_fault = CheckFaultPoint("io.write.write");
  if (!file.good() || !write_fault.ok()) {
    file.close();
    std::error_code ec;
    fs::remove(temp_path, ec);
    if (!write_fault.ok()) return write_fault;
    return Status::Unavailable("short write to " + temp_path.string());
  }
  file.close();
  Status commit_fault = CheckFaultPoint("io.write.commit");
  std::error_code ec;
  if (commit_fault.ok()) {
    fs::rename(temp_path, path, ec);
  }
  if (!commit_fault.ok() || ec) {
    std::error_code remove_ec;
    fs::remove(temp_path, remove_ec);
    if (!commit_fault.ok()) return commit_fault;
    return Status::Unavailable("cannot rename " + temp_path.string() +
                               " to " + path.string() + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const WriteFileOptions& options) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Counter& files = metrics.GetCounter("io.write.files");
  static Counter& retries = metrics.GetCounter("io.write.retries");
  static Counter& failures = metrics.GetCounter("io.write.failures");

  fs::path target(path);
  // The temp file must live in the target directory: rename(2) is only
  // atomic within one filesystem.
  fs::path temp_path = target;
  temp_path += ".tmp";

  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  int backoff_ms = options.initial_backoff_ms;
  Status status;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries.Increment();
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
      }
    }
    status = WriteOnce(target, temp_path, content);
    if (status.ok()) {
      files.Increment();
      return status;
    }
    if (!IsTransient(status)) break;
  }
  failures.Increment();
  return status;
}

Result<std::string> ReadFileToString(const std::string& path) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("io.read"));
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return Status::Unavailable("read error on " + path);
  }
  return buffer.str();
}

}  // namespace efes
