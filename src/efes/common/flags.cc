#include "efes/common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

namespace efes {

namespace {

/// Splits "--name=value" / "--name". Returns false for non-flag args.
bool SplitFlag(std::string_view arg, std::string_view* name,
               std::string_view* value, bool* has_value) {
  if (arg.size() < 3 || arg.substr(0, 2) != "--") return false;
  std::string_view body = arg.substr(2);
  size_t eq = body.find('=');
  if (eq == std::string_view::npos) {
    *name = body;
    *value = {};
    *has_value = false;
  } else {
    *name = body.substr(0, eq);
    *value = body.substr(eq + 1);
    *has_value = true;
  }
  return true;
}

}  // namespace

FlagSet& FlagSet::AddBool(std::string name, std::string help, bool* target) {
  flags_.push_back(Flag{std::move(name), "", std::move(help),
                        [target](std::string_view) {
                          *target = true;
                          return Status::OK();
                        }});
  return *this;
}

FlagSet& FlagSet::AddString(std::string name, std::string value_name,
                            std::string help, std::string* target) {
  flags_.push_back(Flag{std::move(name), std::move(value_name),
                        std::move(help), [target](std::string_view value) {
                          if (value.empty()) {
                            return Status::InvalidArgument(
                                "value must not be empty");
                          }
                          *target = std::string(value);
                          return Status::OK();
                        }});
  return *this;
}

FlagSet& FlagSet::AddUint(std::string name, std::string value_name,
                          std::string help, size_t* target) {
  flags_.push_back(Flag{std::move(name), std::move(value_name),
                        std::move(help), [target](std::string_view value) {
                          std::string buffer(value);
                          char* end = nullptr;
                          unsigned long long v =
                              std::strtoull(buffer.c_str(), &end, 10);
                          if (buffer.empty() ||
                              end != buffer.c_str() + buffer.size() ||
                              v == 0) {
                            return Status::InvalidArgument(
                                "expected a positive integer, got '" +
                                buffer + "'");
                          }
                          *target = static_cast<size_t>(v);
                          return Status::OK();
                        }});
  return *this;
}

FlagSet& FlagSet::AddChoice(std::string name,
                            std::vector<std::string> choices,
                            std::string help, std::string* target) {
  std::string value_name;
  for (const std::string& choice : choices) {
    if (!value_name.empty()) value_name.push_back('|');
    value_name += choice;
  }
  flags_.push_back(
      Flag{std::move(name), std::move(value_name), std::move(help),
           [choices = std::move(choices), target](std::string_view value) {
             if (std::find(choices.begin(), choices.end(), value) ==
                 choices.end()) {
               return Status::InvalidArgument("unsupported value '" +
                                              std::string(value) + "'");
             }
             *target = std::string(value);
             return Status::OK();
           }});
  return *this;
}

FlagSet& FlagSet::AddAction(std::string name, std::string value_name,
                            std::string help,
                            std::function<Status(std::string_view)> apply) {
  flags_.push_back(Flag{std::move(name), std::move(value_name),
                        std::move(help), std::move(apply)});
  return *this;
}

FlagSet& FlagSet::AddOptional(std::string name, std::string value_name,
                              std::string help,
                              std::function<Status(std::string_view)> apply) {
  flags_.push_back(Flag{std::move(name), std::move(value_name),
                        std::move(help), std::move(apply), true});
  return *this;
}

const FlagSet::Flag* FlagSet::Find(std::string_view name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagSet::Parse(std::vector<std::string>* args,
                      UnknownFlags policy) const {
  std::vector<std::string> remaining;
  remaining.reserve(args->size());
  for (std::string& arg : *args) {
    std::string_view name;
    std::string_view value;
    bool has_value = false;
    if (!SplitFlag(arg, &name, &value, &has_value)) {
      remaining.push_back(std::move(arg));
      continue;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      if (policy == UnknownFlags::kKeep) {
        remaining.push_back(std::move(arg));
        continue;
      }
      return Status::NotFound("unknown flag: " + arg);
    }
    const bool wants_value = !flag->value_name.empty();
    if (!flag->optional_value && wants_value != has_value) {
      return Status::InvalidArgument(
          wants_value ? "--" + flag->name + " requires a value (--" +
                            flag->name + "=" + flag->value_name + ")"
                      : "--" + flag->name + " takes no value");
    }
    Status applied = flag->apply(value);
    if (!applied.ok()) {
      return Status::InvalidArgument("bad " + arg + ": " +
                                     applied.message());
    }
  }
  *args = std::move(remaining);
  return Status::OK();
}

void FlagSet::ParseArgvKeepUnknown(int* argc, char** argv) const {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view name;
    std::string_view value;
    bool has_value = false;
    bool consumed = false;
    if (SplitFlag(argv[i], &name, &value, &has_value)) {
      const Flag* flag = Find(name);
      if (flag != nullptr && (flag->optional_value ||
                              (!flag->value_name.empty()) == has_value)) {
        consumed = flag->apply(value).ok();
      }
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
}

std::string FlagSet::UsageText() const {
  // Two-column layout: flag spelling, padded to the widest, then help.
  std::vector<std::string> spellings;
  size_t width = 0;
  for (const Flag& flag : flags_) {
    std::string spelling = "--" + flag.name;
    if (!flag.value_name.empty()) {
      spelling += flag.optional_value ? "[=" + flag.value_name + "]"
                                      : "=" + flag.value_name;
    }
    width = std::max(width, spelling.size());
    spellings.push_back(std::move(spelling));
  }
  std::ostringstream out;
  for (size_t i = 0; i < flags_.size(); ++i) {
    out << "  " << spellings[i]
        << std::string(width - spellings[i].size() + 2, ' ')
        << flags_[i].help << "\n";
  }
  return out.str();
}

bool IsUnknownFlagError(const Status& status) {
  return status.code() == StatusCode::kNotFound;
}

}  // namespace efes
