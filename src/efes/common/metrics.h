// Thread-safe registry of named counters, gauges, and fixed-bucket
// latency histograms.
//
// Metric names follow the `module.phase.metric` scheme, e.g.
// `profiling.statistics.cells` or `engine.assess.ms`. Instrumented code
// resolves a metric once (typically into a function-local static
// reference) and then updates it with a single relaxed atomic operation,
// so instrumentation stays correct and cheap when parallelism lands.
// Reset() zeroes values in place without invalidating references.
//
// Lives in common/ (not telemetry/) so that the lowest layer (parallel
// pool, fault registry, file IO) can report counters without a back-edge
// into the telemetry layer; telemetry re-exports the header for its own
// reporting surface.

#ifndef EFES_COMMON_METRICS_H_
#define EFES_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/thread_annotations.h"

namespace efes {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written scalar (e.g. a size observed at a point in time).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket counts the rest. Observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Default bucket bounds for millisecond latencies: 0.01ms .. 10s,
  /// roughly geometric.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const;
  /// Smallest/largest observed value; 0 when nothing was observed.
  double Min() const;
  double Max() const;
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> upper_bounds_;
  /// One count per bound plus the overflow bucket.
  std::vector<std::atomic<uint64_t>> bucket_counts_;
  std::atomic<uint64_t> count_{0};
  /// Sum accumulated via compare-exchange (portable double add); min/max
  /// maintained the same way.
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> upper_bounds;
    std::vector<uint64_t> bucket_counts;

    double Mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Bucket-interpolated quantile estimate for q in [0, 1] (p50 =
    /// Quantile(0.5)), clamped to the exact [min, max] envelope. An
    /// estimate: the resolution is the bucket width.
    double Quantile(double q) const;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by exact name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

/// Owner of all metrics. Get*() registers on first use and returns a
/// reference that stays valid (and keeps counting across Reset()) for the
/// registry's lifetime. The Global() registry lives for the process.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration of `name`.
  Histogram& GetHistogram(
      std::string_view name,
      const std::vector<double>& upper_bounds =
          Histogram::DefaultLatencyBoundsMs());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place; references stay valid.
  void Reset();

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      EFES_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      EFES_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      EFES_GUARDED_BY(mutex_);
};

}  // namespace efes

#endif  // EFES_COMMON_METRICS_H_
