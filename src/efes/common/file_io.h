// Crash-safe file output: write to a temp file in the target directory,
// then rename over the destination. A reader (or a crash) never observes
// a half-written scenario, trace, or export — it sees either the old
// content or the new content.
//
// Transient failures (and the injected faults standing in for them at
// points `io.write.open`, `io.write.write`, `io.write.commit`) are
// retried with bounded exponential backoff; persistent failures surface
// as the underlying Status after the attempts are exhausted.

#ifndef EFES_COMMON_FILE_IO_H_
#define EFES_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "efes/common/result.h"

namespace efes {

/// Retry policy for atomic writes.
struct WriteFileOptions {
  /// Total attempts per write (first try + retries). Must be >= 1.
  int max_attempts = 3;
  /// Sleep before the first retry; doubles per retry. 0 disables
  /// sleeping (tests use this to keep the retry path instant).
  int initial_backoff_ms = 1;
};

/// Atomically replaces `path` with `content` (temp file + rename in the
/// same directory). Retries transient errors per `options`; the
/// temp file is removed on failure.
Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const WriteFileOptions& options = {});

/// Reads a whole file. Fault point: `io.read` (code notfound/unavailable
/// as armed).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace efes

#endif  // EFES_COMMON_FILE_IO_H_
