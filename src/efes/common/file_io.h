// Crash-safe file output: write to a temp file in the target directory,
// then rename over the destination. A reader (or a crash) never observes
// a half-written scenario, trace, or export — it sees either the old
// content or the new content.
//
// Transient failures (and the injected faults standing in for them at
// points `io.write.open`, `io.write.write`, `io.write.commit`) are
// retried with bounded exponential backoff plus seeded jitter; persistent
// failures surface as the underlying Status after the attempts are
// exhausted. Counters: `file_io.files` / `file_io.retries` /
// `file_io.failures` (a clean run keeps retries at 0, which the serve
// soak asserts).

#ifndef EFES_COMMON_FILE_IO_H_
#define EFES_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "efes/common/result.h"

namespace efes {

/// Retry policy for atomic writes.
struct WriteFileOptions {
  /// Total attempts per write (first try + retries). Must be >= 1.
  int max_attempts = 3;
  /// Base backoff before the first retry; the window doubles per retry
  /// and the actual sleep is drawn from it with seeded jitter (see
  /// RetryBackoffMs). 0 disables sleeping (tests use this to keep the
  /// retry path instant).
  int initial_backoff_ms = 1;
  /// Extra entropy mixed into the jitter seed. The default derives the
  /// seed from the target path alone, so concurrent writers to
  /// *different* paths already decorrelate; set this to decorrelate
  /// retries of the same path across processes.
  uint64_t backoff_seed = 0;
};

/// Backoff for retry `attempt` (1-based): the exponential base
/// `initial_backoff_ms << (attempt-1)` plus jitter drawn uniformly from
/// [0, base). Deterministic in (initial_backoff_ms, attempt, seed) — the
/// jitter comes from a dedicated PRNG, never from wall time — so retry
/// schedules are reproducible while concurrent writers with different
/// seeds still spread out instead of thundering in lockstep.
int RetryBackoffMs(int initial_backoff_ms, int attempt, uint64_t seed);

/// Atomically replaces `path` with `content` (temp file + rename in the
/// same directory). Retries transient errors per `options`; the
/// temp file is removed on failure.
Status WriteFileAtomic(const std::string& path, std::string_view content,
                       const WriteFileOptions& options = {});

/// Reads a whole file. Fault point: `io.read` (code notfound/unavailable
/// as armed).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace efes

#endif  // EFES_COMMON_FILE_IO_H_
