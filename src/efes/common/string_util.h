// String helpers shared across EFES: splitting/joining, case folding,
// numeric parsing/formatting, and the edit-distance / token similarity
// primitives used by the schema matcher.

#ifndef EFES_COMMON_STRING_UTIL_H_
#define EFES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace efes {

/// Splits `input` at every occurrence of `delimiter`. Keeps empty pieces,
/// so Split(",a,", ',') yields {"", "a", ""}.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `pieces` with `separator` in between.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// ASCII lower-casing; non-ASCII bytes pass through unchanged.
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a whole string as a signed 64-bit integer (optionally surrounded
/// by whitespace). Returns nullopt on trailing garbage or overflow.
std::optional<int64_t> ParseInt64(std::string_view text);

/// Parses a whole string as a double. Returns nullopt on trailing garbage.
std::optional<double> ParseDouble(std::string_view text);

/// Formats a double with up to `precision` significant decimal digits,
/// dropping a trailing ".0" for integral values. Used by report renderers.
std::string FormatDouble(double value, int precision = 6);

/// Classic Levenshtein edit distance, O(|a|·|b|).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized name similarity in [0, 1]:
/// 1 - EditDistance(lower(a), lower(b)) / max(|a|, |b|).
/// Both empty counts as similarity 1.
double NameSimilarity(std::string_view a, std::string_view b);

/// Splits an identifier into lowercase tokens at '_', '-', ' ', '.', and
/// camelCase boundaries. "artistList_id" -> {"artist", "list", "id"}.
std::vector<std::string> TokenizeIdentifier(std::string_view identifier);

/// Jaccard similarity of the identifier token sets of `a` and `b`.
double TokenJaccard(std::string_view a, std::string_view b);

}  // namespace efes

#endif  // EFES_COMMON_STRING_UTIL_H_
