#include "efes/common/csv.h"

#include <sstream>

#include "efes/common/fault.h"
#include "efes/common/file_io.h"

namespace efes {

namespace {

bool NeedsQuoting(std::string_view cell, char delimiter) {
  return cell.find(delimiter) != std::string_view::npos ||
         cell.find('"') != std::string_view::npos ||
         cell.find('\n') != std::string_view::npos ||
         cell.find('\r') != std::string_view::npos;
}

void AppendCell(std::string& out, std::string_view cell, char delimiter) {
  if (!NeedsQuoting(cell, delimiter)) {
    out.append(cell);
    return;
  }
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void AddIssue(std::vector<DataIssue>* issues, std::string location,
              std::string message) {
  if (issues == nullptr) return;
  issues->push_back(
      DataIssue{"csv", std::move(location), std::move(message)});
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text,
                             const CsvReadOptions& options,
                             std::vector<DataIssue>* issues) {
  const bool recover = options.mode == CsvReadOptions::Mode::kRecover;
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string current_cell;
  bool in_quotes = false;
  bool cell_started = false;
  Status limit_error;

  auto end_cell = [&]() {
    current_record.push_back(std::move(current_cell));
    current_cell.clear();
    cell_started = false;
  };
  auto end_record = [&]() -> bool {
    end_cell();
    records.push_back(std::move(current_record));
    current_record.clear();
    if (records.size() > options.max_rows) {
      std::ostringstream oss;
      oss << "CSV input exceeds the row limit of " << options.max_rows;
      limit_error = Status::ResourceExhausted(oss.str());
      return false;
    }
    return true;
  };
  auto grow_cell = [&](char c) -> bool {
    if (current_cell.size() >= options.max_field_bytes) {
      std::ostringstream oss;
      oss << "CSV field in record " << records.size() + 1
          << " exceeds the field limit of " << options.max_field_bytes
          << " bytes";
      limit_error = Status::ResourceExhausted(oss.str());
      return false;
    }
    current_cell.push_back(c);
    return true;
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          if (!grow_cell('"')) return limit_error;
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (!grow_cell(c)) return limit_error;
      }
    } else if (c == '"' && !cell_started && current_cell.empty()) {
      in_quotes = true;
      cell_started = true;
    } else if (c == options.delimiter) {
      end_cell();
    } else if (c == '\r') {
      // Swallow; the following \n (if any) ends the record.
      if (i + 1 >= text.size() || text[i + 1] != '\n') {
        if (!end_record()) return limit_error;
      }
    } else if (c == '\n') {
      if (!end_record()) return limit_error;
    } else {
      if (!grow_cell(c)) return limit_error;
      cell_started = true;
    }
    ++i;
  }
  if (in_quotes) {
    if (!recover) {
      return Status::ParseError("unterminated quoted CSV field");
    }
    AddIssue(issues, "end of input",
             "unterminated quoted field closed at end of input");
  }
  // Final record without trailing newline.
  if (!current_cell.empty() || !current_record.empty() || cell_started) {
    if (!end_record()) return limit_error;
  }

  if (records.empty()) {
    return Status::ParseError("CSV input contains no header row");
  }

  CsvDocument doc;
  doc.header = std::move(records.front());
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != doc.header.size()) {
      if (!recover) {
        std::ostringstream oss;
        oss << "CSV row " << r << " has " << records[r].size()
            << " cells, expected " << doc.header.size();
        return Status::ParseError(oss.str());
      }
      std::ostringstream location;
      location << "row " << r;
      if (records[r].size() < doc.header.size()) {
        std::ostringstream oss;
        oss << "short row padded from " << records[r].size() << " to "
            << doc.header.size() << " cells";
        AddIssue(issues, location.str(), oss.str());
        records[r].resize(doc.header.size());
      } else {
        std::ostringstream oss;
        oss << "long row truncated from " << records[r].size() << " to "
            << doc.header.size() << " cells";
        AddIssue(issues, location.str(), oss.str());
        records[r].resize(doc.header.size());
      }
    }
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

Result<CsvDocument> ParseCsv(std::string_view text, char delimiter) {
  CsvReadOptions options;
  options.delimiter = delimiter;
  return ParseCsv(text, options, nullptr);
}

std::string WriteCsv(const CsvDocument& doc, char delimiter) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      AppendCell(out, row[i], delimiter);
    }
    out.push_back('\n');
  };
  append_row(doc.header);
  for (const auto& row : doc.rows) append_row(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path,
                                const CsvReadOptions& options,
                                std::vector<DataIssue>* issues) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("csv.read"));
  EFES_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  Result<CsvDocument> doc = ParseCsv(text, options, issues);
  if (!doc.ok()) {
    return Status(doc.status().code(),
                  doc.status().message() + " (" + path + ")");
  }
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  CsvReadOptions options;
  options.delimiter = delimiter;
  return ReadCsvFile(path, options, nullptr);
}

Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter) {
  return WriteFileAtomic(path, WriteCsv(doc, delimiter));
}

}  // namespace efes
