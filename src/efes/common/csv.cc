#include "efes/common/csv.h"

#include <fstream>
#include <sstream>

namespace efes {

namespace {

bool NeedsQuoting(std::string_view cell, char delimiter) {
  return cell.find(delimiter) != std::string_view::npos ||
         cell.find('"') != std::string_view::npos ||
         cell.find('\n') != std::string_view::npos ||
         cell.find('\r') != std::string_view::npos;
}

void AppendCell(std::string& out, std::string_view cell, char delimiter) {
  if (!NeedsQuoting(cell, delimiter)) {
    out.append(cell);
    return;
  }
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text, char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string current_cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&]() {
    current_record.push_back(std::move(current_cell));
    current_cell.clear();
    cell_started = false;
  };
  auto end_record = [&]() {
    end_cell();
    records.push_back(std::move(current_record));
    current_record.clear();
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current_cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_cell.push_back(c);
      }
    } else if (c == '"' && !cell_started && current_cell.empty()) {
      in_quotes = true;
      cell_started = true;
    } else if (c == delimiter) {
      end_cell();
    } else if (c == '\r') {
      // Swallow; the following \n (if any) ends the record.
      if (i + 1 >= text.size() || text[i + 1] != '\n') {
        end_record();
      }
    } else if (c == '\n') {
      end_record();
    } else {
      current_cell.push_back(c);
      cell_started = true;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  // Final record without trailing newline.
  if (!current_cell.empty() || !current_record.empty() || cell_started) {
    end_record();
  }

  if (records.empty()) {
    return Status::ParseError("CSV input contains no header row");
  }

  CsvDocument doc;
  doc.header = std::move(records.front());
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != doc.header.size()) {
      std::ostringstream oss;
      oss << "CSV row " << r << " has " << records[r].size()
          << " cells, expected " << doc.header.size();
      return Status::ParseError(oss.str());
    }
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

std::string WriteCsv(const CsvDocument& doc, char delimiter) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      AppendCell(out, row[i], delimiter);
    }
    out.push_back('\n');
  };
  append_row(doc.header);
  for (const auto& row : doc.rows) append_row(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), delimiter);
}

Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  file << WriteCsv(doc, delimiter);
  if (!file.good()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace efes
