#include "efes/common/csv.h"

#include <deque>
#include <fstream>
#include <sstream>
#include <utility>

#include "efes/common/fault.h"
#include "efes/common/file_io.h"

namespace efes {

namespace {

bool NeedsQuoting(std::string_view cell, char delimiter) {
  return cell.find(delimiter) != std::string_view::npos ||
         cell.find('"') != std::string_view::npos ||
         cell.find('\n') != std::string_view::npos ||
         cell.find('\r') != std::string_view::npos;
}

void AppendCell(std::string& out, std::string_view cell, char delimiter) {
  if (!NeedsQuoting(cell, delimiter)) {
    out.append(cell);
    return;
  }
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void AddIssue(std::vector<DataIssue>* issues, std::string location,
              std::string message) {
  if (issues == nullptr) return;
  issues->push_back(
      DataIssue{"csv", std::move(location), std::move(message)});
}

// Incremental RFC-4180 scanner shared by ParseCsv (one Feed over the whole
// text) and ChunkedCsvReader (repeated Feeds over file blocks). Because a
// quote escape ("") and a \r\n sequence can straddle a block boundary, the
// scanner defers those decisions with one-character pending flags instead
// of looking ahead, which makes it produce the exact same records for any
// split of the input.
class CsvScanner {
 public:
  explicit CsvScanner(const CsvReadOptions& options) : options_(options) {}

  // Feeds input bytes; completed records accumulate in records().
  // Returns false once a resource limit latched (see limit_error()).
  bool Feed(std::string_view text) {
    for (char c : text) {
      if (!FeedChar(c)) return false;
    }
    return true;
  }

  // Signals end of input: resolves pending state and flushes a final
  // record without a trailing newline. Same return contract as Feed.
  bool Finish() {
    if (pending_cr_) {
      pending_cr_ = false;
      if (!EndRecord()) return false;
    }
    if (pending_quote_) {
      // A closing quote was the last character of the input.
      pending_quote_ = false;
      in_quotes_ = false;
    }
    if (in_quotes_) {
      unterminated_quote_ = true;
      in_quotes_ = false;
    }
    if (!current_cell_.empty() || !current_record_.empty() || cell_started_) {
      if (!EndRecord()) return false;
    }
    return true;
  }

  std::deque<std::vector<std::string>>& records() { return records_; }
  bool unterminated_quote() const { return unterminated_quote_; }
  const Status& limit_error() const { return limit_error_; }

 private:
  bool FeedChar(char c) {
    if (pending_quote_) {
      pending_quote_ = false;
      if (c == '"') return GrowCell('"');  // doubled quote: literal "
      in_quotes_ = false;                  // closing quote; reprocess c
    } else if (pending_cr_) {
      pending_cr_ = false;
      if (c == '\n') return EndRecord();  // \r\n ends one record
      if (!EndRecord()) return false;     // bare \r; reprocess c
    }
    if (in_quotes_) {
      if (c == '"') {
        pending_quote_ = true;  // escape or closing quote: next char tells
        return true;
      }
      return GrowCell(c);
    }
    if (c == '"' && !cell_started_ && current_cell_.empty()) {
      in_quotes_ = true;
      cell_started_ = true;
      return true;
    }
    if (c == options_.delimiter) {
      EndCell();
      return true;
    }
    if (c == '\r') {
      pending_cr_ = true;  // a following \n merges into one record end
      return true;
    }
    if (c == '\n') return EndRecord();
    cell_started_ = true;
    return GrowCell(c);
  }

  void EndCell() {
    current_record_.push_back(std::move(current_cell_));
    current_cell_.clear();
    cell_started_ = false;
  }

  bool EndRecord() {
    EndCell();
    records_.push_back(std::move(current_record_));
    current_record_.clear();
    ++total_records_;
    if (total_records_ > options_.max_rows) {
      std::ostringstream oss;
      oss << "CSV input exceeds the row limit of " << options_.max_rows;
      limit_error_ = Status::ResourceExhausted(oss.str());
      return false;
    }
    return true;
  }

  bool GrowCell(char c) {
    if (current_cell_.size() >= options_.max_field_bytes) {
      std::ostringstream oss;
      oss << "CSV field in record " << total_records_ + 1
          << " exceeds the field limit of " << options_.max_field_bytes
          << " bytes";
      limit_error_ = Status::ResourceExhausted(oss.str());
      return false;
    }
    current_cell_.push_back(c);
    return true;
  }

  const CsvReadOptions options_;
  std::deque<std::vector<std::string>> records_;
  std::vector<std::string> current_record_;
  std::string current_cell_;
  bool in_quotes_ = false;
  bool cell_started_ = false;
  bool pending_quote_ = false;
  bool pending_cr_ = false;
  bool unterminated_quote_ = false;
  size_t total_records_ = 0;
  Status limit_error_;
};

// Conforms `record` (data row number `row_number`, 1-based) to the header
// width: strict mode fails, recover mode pads/truncates and reports.
Status NormalizeRecord(std::vector<std::string>& record, size_t header_size,
                       size_t row_number, bool recover,
                       std::vector<DataIssue>* issues) {
  if (record.size() == header_size) return Status::OK();
  if (!recover) {
    std::ostringstream oss;
    oss << "CSV row " << row_number << " has " << record.size()
        << " cells, expected " << header_size;
    return Status::ParseError(oss.str());
  }
  std::ostringstream location;
  location << "row " << row_number;
  std::ostringstream oss;
  if (record.size() < header_size) {
    oss << "short row padded from " << record.size() << " to " << header_size
        << " cells";
  } else {
    oss << "long row truncated from " << record.size() << " to "
        << header_size << " cells";
  }
  AddIssue(issues, location.str(), oss.str());
  record.resize(header_size);
  return Status::OK();
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text,
                             const CsvReadOptions& options,
                             std::vector<DataIssue>* issues) {
  const bool recover = options.mode == CsvReadOptions::Mode::kRecover;
  CsvScanner scanner(options);
  if (!scanner.Feed(text) || !scanner.Finish()) {
    return scanner.limit_error();
  }
  if (scanner.unterminated_quote()) {
    if (!recover) {
      return Status::ParseError("unterminated quoted CSV field");
    }
    AddIssue(issues, "end of input",
             "unterminated quoted field closed at end of input");
  }
  std::deque<std::vector<std::string>>& records = scanner.records();
  if (records.empty()) {
    return Status::ParseError("CSV input contains no header row");
  }

  CsvDocument doc;
  doc.header = std::move(records.front());
  for (size_t r = 1; r < records.size(); ++r) {
    EFES_RETURN_IF_ERROR(
        NormalizeRecord(records[r], doc.header.size(), r, recover, issues));
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

Result<CsvDocument> ParseCsv(std::string_view text, char delimiter) {
  CsvReadOptions options;
  options.delimiter = delimiter;
  return ParseCsv(text, options, nullptr);
}

std::string WriteCsv(const CsvDocument& doc, char delimiter) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      AppendCell(out, row[i], delimiter);
    }
    out.push_back('\n');
  };
  append_row(doc.header);
  for (const auto& row : doc.rows) append_row(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path,
                                const CsvReadOptions& options,
                                std::vector<DataIssue>* issues) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("csv.read"));
  EFES_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  Result<CsvDocument> doc = ParseCsv(text, options, issues);
  if (!doc.ok()) {
    return Status(doc.status().code(),
                  doc.status().message() + " (" + path + ")");
  }
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  CsvReadOptions options;
  options.delimiter = delimiter;
  return ReadCsvFile(path, options, nullptr);
}

Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter) {
  return WriteFileAtomic(path, WriteCsv(doc, delimiter));
}

// --- ChunkedCsvReader ------------------------------------------------------

struct ChunkedCsvReader::Impl {
  Impl(const CsvReadOptions& options, std::string path, size_t chunk_rows)
      : options(options),
        path(std::move(path)),
        chunk_rows(chunk_rows),
        scanner(options) {}

  // Appends " (path)" the way ReadCsvFile does, and latches the error so
  // every later NextChunk repeats it.
  Status Fail(const Status& status) {
    error = Status(status.code(), status.message() + " (" + path + ")");
    return error;
  }

  // Reads one block from the file into the scanner; sets source_done and
  // finishes the scanner at end of file.
  Status Pump() {
    char buffer[1 << 16];
    stream.read(buffer, sizeof(buffer));
    const std::streamsize got = stream.gcount();
    if (stream.bad()) {
      return Fail(Status::Unavailable("read error"));
    }
    if (got > 0 &&
        !scanner.Feed(std::string_view(buffer, static_cast<size_t>(got)))) {
      return Fail(scanner.limit_error());
    }
    if (stream.eof()) {
      source_done = true;
      if (!scanner.Finish()) return Fail(scanner.limit_error());
    }
    return Status::OK();
  }

  const CsvReadOptions options;
  const std::string path;
  const size_t chunk_rows;
  std::ifstream stream;
  CsvScanner scanner;
  std::vector<std::string> header;
  bool source_done = false;
  bool quote_issue_reported = false;
  size_t rows_delivered = 0;
  Status error;
};

ChunkedCsvReader::ChunkedCsvReader(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ChunkedCsvReader::ChunkedCsvReader(ChunkedCsvReader&&) noexcept = default;
ChunkedCsvReader& ChunkedCsvReader::operator=(ChunkedCsvReader&&) noexcept =
    default;
ChunkedCsvReader::~ChunkedCsvReader() = default;

Result<ChunkedCsvReader> ChunkedCsvReader::Open(const std::string& path,
                                                const CsvReadOptions& options,
                                                size_t chunk_rows) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("csv.read"));
  auto impl = std::make_unique<Impl>(options, path, chunk_rows);
  impl->stream.open(path, std::ios::binary);
  if (!impl->stream) {
    return Status::NotFound("cannot open: " + path);
  }
  while (impl->scanner.records().empty() && !impl->source_done) {
    EFES_RETURN_IF_ERROR(impl->Pump());
  }
  if (impl->scanner.records().empty()) {
    return impl->Fail(Status::ParseError("CSV input contains no header row"));
  }
  impl->header = std::move(impl->scanner.records().front());
  impl->scanner.records().pop_front();
  return ChunkedCsvReader(std::move(impl));
}

const std::vector<std::string>& ChunkedCsvReader::header() const {
  return impl_->header;
}

Result<std::vector<std::vector<std::string>>> ChunkedCsvReader::NextChunk(
    std::vector<DataIssue>* issues) {
  Impl& impl = *impl_;
  EFES_RETURN_IF_ERROR(impl.error);
  const bool recover = impl.options.mode == CsvReadOptions::Mode::kRecover;
  const size_t want =
      impl.chunk_rows == 0 ? impl.options.max_rows : impl.chunk_rows;
  while (impl.scanner.records().size() < want && !impl.source_done) {
    EFES_RETURN_IF_ERROR(impl.Pump());
  }
  if (impl.source_done && impl.scanner.unterminated_quote() &&
      !impl.quote_issue_reported) {
    impl.quote_issue_reported = true;
    if (!recover) {
      return impl.Fail(Status::ParseError("unterminated quoted CSV field"));
    }
    AddIssue(issues, "end of input",
             "unterminated quoted field closed at end of input");
  }
  std::vector<std::vector<std::string>> rows;
  std::deque<std::vector<std::string>>& pending = impl.scanner.records();
  while (!pending.empty() && rows.size() < want) {
    std::vector<std::string> record = std::move(pending.front());
    pending.pop_front();
    Status normalized = NormalizeRecord(record, impl.header.size(),
                                        impl.rows_delivered + rows.size() + 1,
                                        recover, issues);
    if (!normalized.ok()) return impl.Fail(normalized);
    rows.push_back(std::move(record));
  }
  impl.rows_delivered += rows.size();
  return rows;
}

bool ChunkedCsvReader::done() const {
  return impl_->source_done && impl_->scanner.records().empty();
}

size_t ChunkedCsvReader::rows_delivered() const {
  return impl_->rows_delivered;
}

}  // namespace efes
