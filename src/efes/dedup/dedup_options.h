// Configuration of the deduplication estimation module.
//
// Lives in its own header-only file (no dedup library dependency) so the
// core effort-config parser can populate it from a `[dedup]` INI section
// without a dependency cycle: core must not link the dedup module, the
// dedup module links core.

#ifndef EFES_DEDUP_DEDUP_OPTIONS_H_
#define EFES_DEDUP_DEDUP_OPTIONS_H_

#include <cstddef>

#include "efes/common/status.h"

namespace efes {

/// Knobs of the duplicate-entity detector and the pair-review cost
/// function. Invalid combinations are rejected by Validate() with
/// kInvalidArgument — never silently clamped (the same contract as
/// ParseCorrespondenceLine: a typo in a config must surface, not vanish).
struct DedupOptions {
  /// Minutes a human needs to verify one candidate duplicate pair
  /// (high-quality resolution reviews every within-cluster pair).
  double pair_review_minutes = 0.5;

  /// Minutes to merge one confirmed cluster into a single record.
  double cluster_resolution_minutes = 2.0;

  /// Minutes for the low-effort alternative: one keep-one-drop-rest
  /// DELETE script per affected target relation.
  double drop_script_minutes = 8.0;

  /// Blocks (groups of records sharing a normalized blocking-key value)
  /// larger than this are considered non-discriminative — a constant-like
  /// key value such as "unknown" — and are skipped, not resolved. Must be
  /// positive.
  size_t max_block_size = 64;

  /// A blocking-key candidate must be at least this well filled in every
  /// contributing feed (fraction of non-null values).
  double min_key_fill = 0.5;

  /// ... and at least this unique within every feed (distinct / non-null).
  /// Below the floor the attribute is category-like and blocking on it
  /// would merge unrelated entities.
  double min_key_uniqueness = 0.3;

  /// Cross-feed statistics similarity (importance-weighted fit over the
  /// shared non-key attributes) required before key collisions count as
  /// duplicate clusters rather than coincidence.
  double min_support_similarity = 0.5;

  /// When > 0, per-feed statistics are computed over at most this many
  /// rows per column (deterministic strided sample); blocking always
  /// scans every row. 0 = use every row.
  size_t sample_limit = 0;

  /// Rejects invalid configurations with kInvalidArgument: negative
  /// costs, a zero block size, or fraction thresholds outside [0, 1].
  Status Validate() const {
    if (pair_review_minutes < 0.0) {
      return Status::InvalidArgument(
          "dedup pair_review_minutes must not be negative");
    }
    if (cluster_resolution_minutes < 0.0) {
      return Status::InvalidArgument(
          "dedup cluster_resolution_minutes must not be negative");
    }
    if (drop_script_minutes < 0.0) {
      return Status::InvalidArgument(
          "dedup drop_script_minutes must not be negative");
    }
    if (max_block_size == 0) {
      return Status::InvalidArgument(
          "dedup max_block_size must be positive (a zero-size block can "
          "never hold a duplicate)");
    }
    if (min_key_fill < 0.0 || min_key_fill > 1.0) {
      return Status::InvalidArgument(
          "dedup min_key_fill must be within [0, 1]");
    }
    if (min_key_uniqueness < 0.0 || min_key_uniqueness > 1.0) {
      return Status::InvalidArgument(
          "dedup min_key_uniqueness must be within [0, 1]");
    }
    if (min_support_similarity < 0.0 || min_support_similarity > 1.0) {
      return Status::InvalidArgument(
          "dedup min_support_similarity must be within [0, 1]");
    }
    return Status::OK();
  }
};

}  // namespace efes

#endif  // EFES_DEDUP_DEDUP_OPTIONS_H_
