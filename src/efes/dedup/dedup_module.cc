#include "efes/dedup/dedup_module.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "efes/common/fault.h"
#include "efes/common/parallel.h"
#include "efes/common/string_util.h"
#include "efes/common/text_table.h"
#include "efes/profiling/profiler.h"
#include "efes/profiling/statistics.h"
#include "efes/provenance/provenance.h"

namespace efes {

std::string NormalizeEntityKey(std::string_view text) {
  std::string normalized;
  normalized.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isspace(uc)) {
      // Collapse whitespace runs; drop them entirely at the start.
      if (!normalized.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      normalized.push_back(' ');
      pending_space = false;
    }
    normalized.push_back(
        static_cast<char>(std::tolower(uc)));
  }
  return normalized;  // trailing whitespace never got flushed: trimmed
}

std::string DedupComplexityReport::ToText() const {
  if (findings_.empty()) {
    return "(no duplicate cluster groups)\n";
  }
  TextTable table;
  table.SetHeader({"Duplicate cluster group", "Additional parameters"});
  for (const DuplicateClusterFinding& f : findings_) {
    std::ostringstream name;
    name << f.target_relation << " (blocking key " << f.blocking_key << ", "
         << f.feeds.size() << " feeds)";
    std::ostringstream params;
    params << f.cluster_count << " clusters, " << f.duplicate_records
           << " duplicate records, " << f.verification_pairs
           << " pairs to verify, max cluster " << f.max_cluster_size
           << ", support fit " << FormatDouble(f.support_similarity, 3);
    if (f.oversize_blocks > 0) {
      params << ", " << f.oversize_blocks << " oversize blocks skipped";
    }
    table.AddRow({name.str(), params.str()});
  }
  return table.ToString();
}

namespace {

/// Deterministic strided sample of at most `limit` values (0 = all).
std::vector<Value> SampleColumn(const std::vector<Value>& column,
                                size_t limit) {
  if (limit == 0 || column.size() <= limit) return column;
  std::vector<Value> sample;
  sample.reserve(limit);
  double stride = static_cast<double>(column.size()) /
                  static_cast<double>(limit);
  for (size_t i = 0; i < limit; ++i) {
    sample.push_back(column[static_cast<size_t>(i * stride)]);
  }
  return sample;
}

/// One source relation contributing to a target relation.
struct Feed {
  std::string label;  // "database:relation"
  /// Target attribute -> the feed's corresponded source column.
  std::map<std::string, const std::vector<Value>*> columns;
};

/// All feeds of one target relation, plus the shared candidate attributes.
struct RelationWork {
  std::string target_relation;
  std::vector<Feed> feeds;
  /// Target attributes corresponded by *every* feed, excluding target
  /// PK/FK attributes, in target-schema attribute order.
  std::vector<AttributeDef> shared_attributes;
};

double Uniqueness(const AttributeStatistics& stats) {
  if (stats.constancy.non_null_count == 0) return 0.0;
  return static_cast<double>(stats.constancy.distinct_count) /
         static_cast<double>(stats.constancy.non_null_count);
}

}  // namespace

Result<std::unique_ptr<ComplexityReport>> DedupModule::AssessComplexity(
    const IntegrationScenario& scenario) const {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("dedup.detect"));
  EFES_RETURN_IF_ERROR(options_.Validate());

  // Target PK and FK attributes never serve as blocking keys: their
  // values are surrogate identifiers the mapping regenerates per source,
  // so collisions between sources are meaningless, not duplicates.
  std::set<std::string> surrogate_attributes;
  for (const Constraint& c : scenario.target.schema().constraints()) {
    if (c.kind != ConstraintKind::kPrimaryKey &&
        c.kind != ConstraintKind::kForeignKey) {
      continue;
    }
    for (const std::string& attribute : c.attributes) {
      surrogate_attributes.insert(c.relation + "." + attribute);
    }
  }

  // Pass 1 (sequential): group the attribute-level correspondences by
  // target relation into feeds, preserving scenario order, and intersect
  // each relation's feeds down to the shared candidate attributes.
  std::map<std::string, std::vector<Feed>> feeds_by_relation;
  for (const SourceBinding& source : scenario.sources) {
    // Feed key: source relation name -> feed under construction. One feed
    // per (source database, source relation) pair.
    std::map<std::string, size_t> feed_index;
    for (const Correspondence& corr : source.correspondences.all()) {
      if (!corr.is_attribute_level()) continue;
      if (surrogate_attributes.count(corr.target_relation + "." +
                                     corr.target_attribute) > 0) {
        continue;
      }
      EFES_ASSIGN_OR_RETURN(const Table* source_table,
                            source.database.table(corr.source_relation));
      EFES_ASSIGN_OR_RETURN(
          const std::vector<Value>* source_column,
          source_table->ColumnByName(corr.source_attribute));
      // Validate the target side up front, like the other detectors.
      EFES_ASSIGN_OR_RETURN(const Table* target_table,
                            scenario.target.table(corr.target_relation));
      EFES_RETURN_IF_ERROR(
          target_table->def().Attribute(corr.target_attribute).status());

      std::vector<Feed>& feeds = feeds_by_relation[corr.target_relation];
      const std::string feed_key =
          source.database.name() + ":" + corr.source_relation;
      auto [it, inserted] =
          feed_index.emplace(feed_key + "\n" + corr.target_relation, 0);
      if (inserted) {
        it->second = feeds.size();
        Feed feed;
        feed.label = feed_key;
        feeds.push_back(std::move(feed));
      }
      feeds[it->second].columns[corr.target_attribute] = source_column;
    }
  }

  std::vector<RelationWork> items;
  for (auto& [relation, feeds] : feeds_by_relation) {
    if (feeds.size() < 2) continue;  // duplicates need >= 2 feeds
    EFES_ASSIGN_OR_RETURN(const Table* target_table,
                          scenario.target.table(relation));
    RelationWork work;
    work.target_relation = relation;
    // Shared attributes in target-schema attribute order — the canonical
    // tie-break order for blocking-key selection.
    for (const AttributeDef& attribute : target_table->def().attributes()) {
      bool everywhere = true;
      for (const Feed& feed : feeds) {
        if (feed.columns.count(attribute.name) == 0) {
          everywhere = false;
          break;
        }
      }
      if (everywhere) work.shared_attributes.push_back(attribute);
    }
    if (work.shared_attributes.empty()) continue;
    work.feeds = std::move(feeds);
    items.push_back(std::move(work));
  }

  // Provenance: thresholds once, up front, on the sequential path.
  ProvenanceRecorder* prov = ProvenanceRecorder::Active();
  uint64_t fill_node = 0;
  uint64_t uniqueness_node = 0;
  uint64_t similarity_node = 0;
  uint64_t block_size_node = 0;
  if (prov != nullptr) {
    fill_node = prov->RecordValue(ProvenanceKind::kThreshold,
                                  "threshold min_key_fill", "",
                                  options_.min_key_fill);
    uniqueness_node = prov->RecordValue(ProvenanceKind::kThreshold,
                                        "threshold min_key_uniqueness", "",
                                        options_.min_key_uniqueness);
    similarity_node = prov->RecordValue(
        ProvenanceKind::kThreshold, "threshold min_support_similarity", "",
        options_.min_support_similarity);
    block_size_node = prov->RecordValue(
        ProvenanceKind::kThreshold, "threshold max_block_size", "",
        static_cast<double>(options_.max_block_size));
  }

  // Pass 2 (parallel): per target relation — profile the shared columns,
  // select the blocking key, block on the normalized key, and check the
  // cross-feed support similarity. Provenance is buffered into fragments.
  struct ItemResult {
    bool has_finding = false;
    DuplicateClusterFinding finding;
    ProvenanceFragment fragment;
    size_t finding_local = 0;
  };
  std::vector<ItemResult> results(items.size());
  EFES_RETURN_IF_ERROR(
      ParallelFor(items.size(), [&](size_t index) -> Status {
        const RelationWork& work = items[index];
        ItemResult& computed = results[index];

        // Per-shared-attribute, per-feed statistics against the target
        // attribute's datatype (cache-served when a ProfileCache is
        // active).
        std::vector<std::vector<AttributeStatistics>> stats(
            work.shared_attributes.size());
        for (size_t ai = 0; ai < work.shared_attributes.size(); ++ai) {
          const AttributeDef& attribute = work.shared_attributes[ai];
          for (const Feed& feed : work.feeds) {
            const std::vector<Value>& column =
                *feed.columns.at(attribute.name);
            EFES_ASSIGN_OR_RETURN(
                AttributeStatistics feed_stats,
                ProfileColumn(SampleColumn(column, options_.sample_limit),
                              attribute.type));
            stats[ai].push_back(std::move(feed_stats));
          }
        }

        // Blocking-key selection: the shared attribute that looks most
        // entity-identifying in *every* feed — score = worst-feed
        // uniqueness x worst-feed fill, gated by the configured floors.
        size_t key_index = work.shared_attributes.size();
        double key_score = 0.0;
        double key_uniqueness = 0.0;
        double key_fill = 0.0;
        for (size_t ai = 0; ai < work.shared_attributes.size(); ++ai) {
          double min_fill = 1.0;
          double min_uniqueness = 1.0;
          for (const AttributeStatistics& s : stats[ai]) {
            min_fill = std::min(min_fill, s.fill_status.NonNullFraction());
            min_uniqueness = std::min(min_uniqueness, Uniqueness(s));
          }
          if (min_fill < options_.min_key_fill) continue;
          if (min_uniqueness < options_.min_key_uniqueness) continue;
          double score = min_fill * min_uniqueness;
          // Strictly-greater keeps the first (target-schema-order)
          // attribute on ties — canonical for any thread count.
          if (key_index == work.shared_attributes.size() ||
              score > key_score) {
            key_index = ai;
            key_score = score;
            key_uniqueness = min_uniqueness;
            key_fill = min_fill;
          }
        }
        if (key_index == work.shared_attributes.size()) {
          return Status::OK();
        }
        const std::string& key_attribute =
            work.shared_attributes[key_index].name;

        // Support similarity: mean pairwise statistics fit over the
        // *other* shared attributes. Feeds that merely reuse a key word
        // but describe unrelated entities fail this gate.
        double support_similarity = 1.0;
        {
          double fit_sum = 0.0;
          size_t fit_count = 0;
          for (size_t ai = 0; ai < work.shared_attributes.size(); ++ai) {
            if (ai == key_index) continue;
            for (size_t a = 0; a < stats[ai].size(); ++a) {
              for (size_t b = a + 1; b < stats[ai].size(); ++b) {
                fit_sum += OverallFit(stats[ai][a], stats[ai][b]);
                ++fit_count;
              }
            }
          }
          if (fit_count > 0) {
            support_similarity = fit_sum / static_cast<double>(fit_count);
          }
        }

        // Blocking: normalized key value -> per-feed record counts. The
        // blocking pass always scans every row — sampling only applies to
        // the statistics above.
        struct Block {
          size_t total = 0;
          size_t feeds_present = 0;
          size_t last_feed = 0;
        };
        std::map<std::string, Block> blocks;
        for (size_t fi = 0; fi < work.feeds.size(); ++fi) {
          const std::vector<Value>& column =
              *work.feeds[fi].columns.at(key_attribute);
          for (const Value& value : column) {
            if (value.is_null()) continue;
            std::string key = NormalizeEntityKey(value.ToString());
            if (key.empty()) continue;
            Block& block = blocks[key];
            if (block.total == 0 || block.last_feed != fi) {
              ++block.feeds_present;
              block.last_feed = fi;
            }
            ++block.total;
          }
        }

        DuplicateClusterFinding finding;
        finding.target_relation = work.target_relation;
        finding.blocking_key = key_attribute;
        for (const Feed& feed : work.feeds) {
          finding.feeds.push_back(feed.label);
        }
        finding.key_uniqueness = key_uniqueness;
        finding.key_fill = key_fill;
        finding.support_similarity = support_similarity;
        for (const auto& [key, block] : blocks) {
          if (block.feeds_present < 2) continue;  // within one feed only
          if (block.total > options_.max_block_size) {
            // Non-discriminative key value ("unknown", "n/a"): resolving
            // it is hopeless, report it skipped instead of pricing a
            // quadratic pair review.
            ++finding.oversize_blocks;
            continue;
          }
          DuplicateCluster cluster;
          cluster.key = key;
          cluster.size = block.total;
          cluster.pair_count = block.total * (block.total - 1) / 2;
          finding.duplicate_records += block.total - 1;
          finding.verification_pairs += cluster.pair_count;
          finding.max_cluster_size =
              std::max(finding.max_cluster_size, block.total);
          finding.clusters.push_back(std::move(cluster));
        }
        finding.cluster_count = finding.clusters.size();
        if (finding.cluster_count == 0 ||
            support_similarity < options_.min_support_similarity) {
          return Status::OK();
        }

        if (prov != nullptr) {
          ProvenanceFragment& frag = computed.fragment;
          const std::string& subject = finding.target_relation;
          size_t uniq_local = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic key.uniqueness",
              subject + "." + key_attribute, finding.key_uniqueness);
          size_t fill_local = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic key.fill",
              subject + "." + key_attribute, finding.key_fill);
          size_t fit_local = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic support.similarity",
              subject, finding.support_similarity);
          size_t clusters_local = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic cluster.count", subject,
              static_cast<double>(finding.cluster_count));
          size_t pairs_local = frag.AddValue(
              ProvenanceKind::kStatistic, "statistic verification.pairs",
              subject, static_cast<double>(finding.verification_pairs));
          computed.finding_local = frag.Add(
              ProvenanceKind::kFinding,
              "duplicate clusters: " + subject + " via " + key_attribute,
              subject,
              {fill_node, uniqueness_node, similarity_node, block_size_node},
              {uniq_local, fill_local, fit_local, clusters_local,
               pairs_local});
        }
        computed.has_finding = true;
        computed.finding = std::move(finding);
        return Status::OK();
      }));

  // Pass 3 (sequential): absorb fragments and assemble findings in
  // relation order — ids and report stay canonical for any thread count.
  std::vector<DuplicateClusterFinding> findings;
  for (ItemResult& result : results) {
    if (!result.has_finding) continue;
    if (prov != nullptr) {
      std::vector<uint64_t> global_ids = prov->Absorb(result.fragment);
      if (result.finding_local < global_ids.size()) {
        result.finding.provenance = global_ids[result.finding_local];
      }
    }
    findings.push_back(std::move(result.finding));
  }

  auto report = std::make_unique<DedupComplexityReport>(std::move(findings));
  if (prov != nullptr) {
    std::vector<uint64_t> finding_nodes;
    for (const DuplicateClusterFinding& f : report->findings()) {
      finding_nodes.push_back(f.provenance);
    }
    report->set_provenance_node(prov->RecordValue(
        ProvenanceKind::kFinding, "dedup assessment", "",
        static_cast<double>(report->findings().size()),
        std::move(finding_nodes)));
  }
  return std::unique_ptr<ComplexityReport>(std::move(report));
}

Result<std::vector<Task>> DedupModule::PlanTasks(
    const ComplexityReport& report, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  (void)settings;
  const auto* dedup_report =
      dynamic_cast<const DedupComplexityReport*>(&report);
  if (dedup_report == nullptr) {
    return Status::InvalidArgument(
        "DedupModule received a foreign complexity report");
  }

  bool high = quality == ExpectedQuality::kHighQuality;
  std::vector<Task> tasks;
  for (const DuplicateClusterFinding& f : dedup_report->findings()) {
    Task task;
    task.category = TaskCategory::kDeduplication;
    task.quality = quality;
    task.subject = f.target_relation + " via " + f.blocking_key;
    if (high) {
      // Full resolution: review every within-cluster candidate pair, then
      // merge each confirmed cluster into one golden record.
      task.type = TaskType::kResolveDuplicateClusters;
      task.parameters[task_params::kClusters] =
          static_cast<double>(f.cluster_count);
      task.parameters[task_params::kPairs] =
          static_cast<double>(f.verification_pairs);
      task.parameters[task_params::kValues] =
          static_cast<double>(f.duplicate_records);
    } else {
      // Low effort: one keep-one-drop-rest script per affected relation.
      task.type = TaskType::kDropDuplicateRecords;
      task.parameters[task_params::kClusters] =
          static_cast<double>(f.cluster_count);
      task.parameters[task_params::kValues] =
          static_cast<double>(f.duplicate_records);
    }
    if (f.provenance != 0) task.provenance.push_back(f.provenance);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace efes
