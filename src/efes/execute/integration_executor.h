// The production side of Figure 1: an integration executor that actually
// *performs* the integration the estimation side only reasons about.
//
// Given a scenario and an expected result quality, the executor
//   1. materializes the mapping: every anchor tuple of a source relation
//      becomes a target tuple, cross-relation attribute values are pulled
//      in along the same CSG paths the structure detector matches,
//      surrogate keys are generated, and foreign keys are remapped to the
//      generated keys;
//   2. applies the quality strategy to the conflicts that arise — merging
//      or keeping-any for multiple values, creating enclosing tuples or
//      dropping for detached values, filling or rejecting for missing
//      mandatory values, best-effort converting or dropping for
//      uncastable values;
//   3. repairs the residual constraint violations of the combined target
//      instance (duplicate keys, dangling references) until it is valid.
//
// The executor exists to *validate* the estimation pipeline: the work it
// counts while integrating (merges performed, tuples created, values
// filled) should equal what the detectors predicted without integrating,
// and the high-quality result must satisfy every target constraint.

#ifndef EFES_EXECUTE_INTEGRATION_EXECUTOR_H_
#define EFES_EXECUTE_INTEGRATION_EXECUTOR_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"
#include "efes/core/task.h"

namespace efes {

class ProfileCache;

/// Work actually performed during an execution — the executor-side
/// analogue of the planner's task repetition counts.
struct ExecutionReport {
  size_t tuples_integrated = 0;

  /// Tuples whose attribute received several values and was merged
  /// (high quality) — the planner's Merge values repetitions.
  size_t values_merged = 0;
  /// Tuples where one of several values was kept (low effort).
  size_t values_kept_any = 0;
  /// Target tuples created to enclose detached source values (high
  /// quality) — the planner's Add tuples repetitions.
  size_t tuples_added = 0;
  /// Detached source values dropped (low effort).
  size_t values_dropped_detached = 0;
  /// Mandatory values filled in (high quality) — Add missing values.
  size_t values_added = 0;
  /// Tuples rejected over missing mandatory values (low effort).
  size_t tuples_rejected = 0;
  /// Values converted best-effort because they did not cast to the
  /// target type (high quality).
  size_t values_converted = 0;
  /// Uncastable values dropped (low effort).
  size_t values_dropped_uncastable = 0;
  /// Duplicate-key tuples aggregated during the repair pass.
  size_t tuples_aggregated = 0;
  /// Dangling references deleted/nulled during the repair pass.
  size_t dangling_repaired = 0;

  std::string ToString() const;
};

class IntegrationExecutor {
 public:
  struct Options {
    ExpectedQuality quality = ExpectedQuality::kHighQuality;
    /// Placeholder used when a mandatory text value must be invented.
    std::string missing_text = "(researched)";
    /// Safety cap on the residual-repair fixpoint loop.
    size_t max_repair_rounds = 8;
    /// Optional profile cache installed for the duration of Execute
    /// (mirrors RunOptions::cache on the estimation side); null leaves
    /// any ambient cache in place.
    ProfileCache* cache = nullptr;
  };

  IntegrationExecutor() = default;
  explicit IntegrationExecutor(Options options)
      : options_(std::move(options)) {}

  /// Performs the integration and returns the integrated target database
  /// (pre-existing target data included). `report`, when non-null,
  /// receives the work counters. The returned instance satisfies the
  /// target constraints (both qualities reach validity — by repair or by
  /// removal — unless max_repair_rounds is exceeded, which fails with
  /// kUnsatisfiable).
  Result<Database> Execute(const IntegrationScenario& scenario,
                           ExecutionReport* report = nullptr) const;

 private:
  Options options_;
};

}  // namespace efes

#endif  // EFES_EXECUTE_INTEGRATION_EXECUTOR_H_
