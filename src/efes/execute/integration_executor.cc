#include "efes/execute/integration_executor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "efes/cache/profile_cache.h"
#include "efes/common/fault.h"
#include "efes/common/string_util.h"
#include "efes/csg/builder.h"
#include "efes/csg/path_search.h"
#include "efes/provenance/provenance.h"
#include "efes/telemetry/log.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

std::string ExecutionReport::ToString() const {
  std::ostringstream oss;
  oss << tuples_integrated << " tuples integrated; merged values on "
      << values_merged << " tuples (kept-any on " << values_kept_any
      << "); " << tuples_added << " tuples created for detached values ("
      << values_dropped_detached << " detached values dropped); "
      << values_added << " mandatory values filled; " << tuples_rejected
      << " tuples rejected; " << values_converted
      << " values converted best-effort (" << values_dropped_uncastable
      << " dropped); " << tuples_aggregated << " duplicate tuples"
      << " aggregated; " << dangling_repaired
      << " dangling references repaired";
  return oss.str();
}

namespace {

/// Placeholder of the attribute's type for invented mandatory values.
Value Placeholder(DataType type, const std::string& missing_text) {
  switch (type) {
    case DataType::kInteger:
      return Value::Integer(0);
    case DataType::kReal:
      return Value::Real(0.0);
    case DataType::kBoolean:
      return Value::Boolean(false);
    default:
      return Value::Text(missing_text);
  }
}

/// Best-effort conversion of an uncastable value: pull the first numeric
/// substring for numeric targets, render as text otherwise — the
/// executor-side stand-in for a conversion script.
Value BestEffortConvert(const Value& value, DataType target) {
  std::string text = value.ToString();
  if (target == DataType::kInteger || target == DataType::kReal) {
    size_t start = text.find_first_of("0123456789");
    if (start == std::string::npos) return Value::Null();
    bool negative = start > 0 && text[start - 1] == '-';
    size_t end = start;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            (target == DataType::kReal && text[end] == '.'))) {
      ++end;
    }
    std::string number = text.substr(start, end - start);
    if (target == DataType::kInteger) {
      auto parsed = ParseInt64(number);
      if (!parsed.has_value()) return Value::Null();
      return Value::Integer(negative ? -*parsed : *parsed);
    }
    auto parsed = ParseDouble(number);
    if (!parsed.has_value()) return Value::Null();
    return Value::Real(negative ? -*parsed : *parsed);
  }
  if (target == DataType::kBoolean) {
    return Value::Boolean(!text.empty());
  }
  return Value::Text(std::move(text));
}

/// Target relations receiving data, parents before children (Kahn over
/// the FK graph restricted to mapped relations).
std::vector<std::string> TopologicalTargetOrder(
    const Schema& target_schema, const std::vector<std::string>& mapped) {
  std::set<std::string> mapped_set(mapped.begin(), mapped.end());
  std::map<std::string, std::set<std::string>> parents_of;
  std::map<std::string, size_t> pending;
  for (const std::string& relation : mapped) {
    pending[relation] = 0;
  }
  for (const Constraint& c : target_schema.constraints()) {
    if (c.kind != ConstraintKind::kForeignKey) continue;
    if (mapped_set.count(c.relation) == 0 ||
        mapped_set.count(c.referenced_relation) == 0 ||
        c.relation == c.referenced_relation) {
      continue;
    }
    if (parents_of[c.relation].insert(c.referenced_relation).second) {
      ++pending[c.relation];
    }
  }
  std::vector<std::string> order;
  std::vector<std::string> ready;
  for (const std::string& relation : mapped) {
    if (pending[relation] == 0) ready.push_back(relation);
  }
  while (!ready.empty()) {
    std::string relation = ready.front();
    ready.erase(ready.begin());
    order.push_back(relation);
    for (auto& [child, parents] : parents_of) {
      if (parents.erase(relation) > 0 && --pending[child] == 0) {
        ready.push_back(child);
      }
    }
  }
  // Cycles: append the rest in input order.
  for (const std::string& relation : mapped) {
    if (std::find(order.begin(), order.end(), relation) == order.end()) {
      order.push_back(relation);
    }
  }
  return order;
}

/// Key of a row projected onto `columns`; nullopt when any cell is NULL.
std::optional<std::string> ProjectionKey(const Table& table, size_t row,
                                         const std::vector<size_t>& columns) {
  std::string key;
  for (size_t c : columns) {
    const Value& value = table.at(row, c);
    if (value.is_null()) return std::nullopt;
    std::string repr = value.ToString();
    key += std::to_string(repr.size());
    key += ':';
    key += repr;
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<Database> IntegrationExecutor::Execute(
    const IntegrationScenario& scenario, ExecutionReport* report) const {
  ScopedProfileCache scoped_cache(
      options_.cache != nullptr ? options_.cache : ProfileCache::Active());
  static Histogram& execute_ms =
      MetricsRegistry::Global().GetHistogram("execute.run.ms");
  TraceSpan span("execute.run", nullptr, &execute_ms);
  MetricsRegistry::Global().GetCounter("execute.run.count").Increment();
  EFES_RETURN_IF_ERROR(CheckFaultPoint("execute.run"));
  EFES_RETURN_IF_ERROR(scenario.Validate());
  ExecutionReport local_report;
  ExecutionReport& counters = report != nullptr ? *report : local_report;
  counters = ExecutionReport{};
  bool high = options_.quality == ExpectedQuality::kHighQuality;

  EFES_ASSIGN_OR_RETURN(Database result,
                        Database::Create(scenario.target.schema()));
  const Schema& target_schema = result.schema();

  // Pre-existing target data participates in the combined instance.
  for (const Table& table : scenario.target.tables()) {
    EFES_ASSIGN_OR_RETURN(Table * destination,
                          result.mutable_table(table.name()));
    for (size_t r = 0; r < table.row_count(); ++r) {
      EFES_RETURN_IF_ERROR(destination->AppendRow(table.Row(r)));
    }
  }

  // Next surrogate id per target relation with a generated single-int PK.
  std::map<std::string, int64_t> next_id;
  auto surrogate_pk = [&](const std::string& relation)
      -> std::optional<std::string> {
    std::vector<std::string> pk = target_schema.PrimaryKeyOf(relation);
    if (pk.size() != 1) return std::nullopt;
    auto rel = target_schema.relation(relation);
    if (!rel.ok()) return std::nullopt;
    auto attr = (*rel)->Attribute(pk[0]);
    if (!attr.ok() || attr->type != DataType::kInteger) return std::nullopt;
    return pk[0];
  };
  for (const Table& table : result.tables()) {
    auto pk = surrogate_pk(table.name());
    if (!pk.has_value()) continue;
    int64_t max_id = 0;
    auto column = table.ColumnByName(*pk);
    if (column.ok()) {
      for (const Value& value : **column) {
        if (value.type() == DataType::kInteger) {
          max_id = std::max(max_id, value.AsInteger());
        }
      }
    }
    next_id[table.name()] = max_id + 1;
  }

  for (const SourceBinding& source : scenario.sources) {
    Csg csg = BuildCsg(source.database);
    std::vector<std::string> order = TopologicalTargetOrder(
        target_schema, source.correspondences.TargetRelations());

    // Per target relation: source anchor key -> assigned target PK value.
    std::map<std::string, std::unordered_map<Value, Value, ValueHash>>
        key_maps;

    for (const std::string& target_relation : order) {
      // Anchor source relation (relation correspondence, or the first
      // attribute correspondence's relation as fallback).
      std::string anchor;
      auto relation_corr =
          source.correspondences.RelationCorrespondenceFor(target_relation);
      if (relation_corr.ok()) {
        anchor = relation_corr->source_relation;
      } else {
        std::vector<Correspondence> attrs =
            source.correspondences.AttributesInto(target_relation);
        if (attrs.empty()) continue;
        anchor = attrs.front().source_relation;
      }
      EFES_ASSIGN_OR_RETURN(const Table* anchor_table,
                            source.database.table(anchor));
      auto anchor_node = csg.graph.FindTableNode(anchor);
      if (!anchor_node.ok()) continue;
      EFES_ASSIGN_OR_RETURN(const RelationDef* target_rel,
                            target_schema.relation(target_relation));
      EFES_ASSIGN_OR_RETURN(Table * destination,
                            result.mutable_table(target_relation));

      // Anchor key column (single-attribute PK, else the row index).
      std::optional<size_t> anchor_key_column;
      std::vector<std::string> anchor_pk =
          source.database.schema().PrimaryKeyOf(anchor);
      if (anchor_pk.size() == 1) {
        anchor_key_column = anchor_table->def().AttributeIndex(anchor_pk[0]);
      }

      // Resolve every attribute's feed.
      struct AttributeFeed {
        enum class Kind { kNone, kDirect, kPath, kSurrogate } kind =
            Kind::kNone;
        size_t direct_column = 0;            // kDirect
        std::vector<RelationshipId> path;    // kPath
        // FK remapping: the referenced target relation whose key map
        // translates the source value.
        std::string remap_via;
      };
      std::vector<AttributeFeed> feeds(target_rel->attribute_count());
      std::optional<std::string> generated_pk = surrogate_pk(target_relation);

      for (size_t a = 0; a < target_rel->attribute_count(); ++a) {
        const std::string& attribute = target_rel->attributes()[a].name;
        std::vector<Correspondence> corrs =
            source.correspondences.AttributesInto(target_relation,
                                                  attribute);
        if (corrs.empty()) {
          if (generated_pk.has_value() && attribute == *generated_pk) {
            feeds[a].kind = AttributeFeed::Kind::kSurrogate;
          }
          continue;
        }
        const Correspondence& corr = corrs.front();
        if (corr.source_relation == anchor) {
          auto column = anchor_table->def().AttributeIndex(
              corr.source_attribute);
          if (column.has_value()) {
            feeds[a].kind = AttributeFeed::Kind::kDirect;
            feeds[a].direct_column = *column;
          }
        } else {
          auto attr_node = csg.graph.FindAttributeNode(
              corr.source_relation, corr.source_attribute);
          if (attr_node.ok()) {
            auto best = FindBestPath(csg.graph, *anchor_node, *attr_node);
            if (best.has_value()) {
              feeds[a].kind = AttributeFeed::Kind::kPath;
              feeds[a].path = best->path;
            }
          }
        }
        // FK attributes remap through the referenced relation's key map
        // when it has been populated.
        for (const Constraint& c : target_schema.constraints()) {
          if (c.kind == ConstraintKind::kForeignKey &&
              c.relation == target_relation && c.attributes.size() == 1 &&
              c.attributes[0] == attribute &&
              key_maps.count(c.referenced_relation) > 0) {
            feeds[a].remap_via = c.referenced_relation;
          }
        }
      }

      // INSERT-DISTINCT idiom: when the target declares a fed attribute
      // unique (an entity table like venues(name UNIQUE) populated from a
      // fact table), a practitioner deduplicates while inserting instead
      // of repairing afterwards. Rows whose unique value is NULL carry no
      // entity and are skipped likewise.
      std::optional<size_t> distinct_on;
      for (size_t a = 0; a < target_rel->attribute_count(); ++a) {
        if (feeds[a].kind == AttributeFeed::Kind::kDirect ||
            feeds[a].kind == AttributeFeed::Kind::kPath) {
          if (target_schema.IsUniqueAttribute(
                  target_relation, target_rel->attributes()[a].name)) {
            distinct_on = a;
            break;
          }
        }
      }
      std::unordered_set<Value, ValueHash> seen_distinct;

      bool pk_direct = false;
      std::optional<size_t> pk_feed_index;
      if (generated_pk.has_value()) {
        auto index = target_rel->AttributeIndex(*generated_pk);
        if (index.has_value()) {
          pk_feed_index = index;
          pk_direct = feeds[*index].kind == AttributeFeed::Kind::kDirect;
        }
      }

      // Track which path-fed values were actually pulled in, to find
      // detached values afterwards.
      std::map<size_t, std::unordered_set<Value, ValueHash>> pulled;

      for (size_t row = 0; row < anchor_table->row_count(); ++row) {
        Value tuple_element = Value::Integer(static_cast<int64_t>(row));
        std::vector<Value> values(target_rel->attribute_count(),
                                  Value::Null());
        bool reject = false;
        for (size_t a = 0; a < target_rel->attribute_count(); ++a) {
          const AttributeDef& attribute = target_rel->attributes()[a];
          Value value = Value::Null();
          switch (feeds[a].kind) {
            case AttributeFeed::Kind::kNone:
              break;
            case AttributeFeed::Kind::kSurrogate:
              value = Value::Integer(next_id[target_relation]++);
              break;
            case AttributeFeed::Kind::kDirect:
              value = anchor_table->at(row, feeds[a].direct_column);
              break;
            case AttributeFeed::Kind::kPath: {
              std::vector<Value> reachable = csg.instance.ReachableViaPath(
                  csg.graph, feeds[a].path, tuple_element);
              for (const Value& v : reachable) pulled[a].insert(v);
              if (reachable.empty()) break;
              if (reachable.size() == 1) {
                value = reachable.front();
              } else if (high) {
                // Merge: combine into one value when the target is text,
                // otherwise keep the first (both count as merge work).
                ++counters.values_merged;
                if (attribute.type == DataType::kText) {
                  std::vector<std::string> parts;
                  for (const Value& v : reachable) {
                    parts.push_back(v.ToString());
                  }
                  value = Value::Text(Join(parts, "; "));
                } else {
                  value = reachable.front();
                }
              } else {
                ++counters.values_kept_any;
                value = reachable.front();
              }
              break;
            }
          }
          // FK remapping to generated keys.
          if (!value.is_null() && !feeds[a].remap_via.empty()) {
            const auto& key_map = key_maps[feeds[a].remap_via];
            auto it = key_map.find(value);
            value = it == key_map.end() ? Value::Null() : it->second;
          }
          // Type fit.
          if (!value.is_null() && !value.CanCastTo(attribute.type)) {
            if (high) {
              value = BestEffortConvert(value, attribute.type);
              ++counters.values_converted;
            } else {
              value = Value::Null();
              ++counters.values_dropped_uncastable;
            }
          }
          values[a] = std::move(value);
        }
        // A row whose fed attributes are all NULL carries no information
        // (e.g. a link table without attribute correspondences): skip.
        bool any_fed_value = false;
        for (size_t a = 0; a < target_rel->attribute_count(); ++a) {
          if ((feeds[a].kind == AttributeFeed::Kind::kDirect ||
               feeds[a].kind == AttributeFeed::Kind::kPath) &&
              !values[a].is_null()) {
            any_fed_value = true;
            break;
          }
        }
        if (!any_fed_value) continue;
        // INSERT-DISTINCT deduplication for entity tables.
        if (distinct_on.has_value()) {
          const Value& entity = values[*distinct_on];
          if (entity.is_null() || !seen_distinct.insert(entity).second) {
            continue;
          }
        }
        // Mandatory values.
        for (size_t a = 0; a < target_rel->attribute_count(); ++a) {
          const AttributeDef& attribute = target_rel->attributes()[a];
          if (!values[a].is_null() ||
              !target_schema.IsNotNullable(target_relation,
                                           attribute.name)) {
            continue;
          }
          bool is_fk_attr = !feeds[a].remap_via.empty();
          if (high && !is_fk_attr) {
            values[a] =
                Placeholder(attribute.type, options_.missing_text);
            ++counters.values_added;
          } else {
            reject = true;
          }
        }
        if (reject) {
          ++counters.tuples_rejected;
          continue;
        }
        // Record the key mapping before the row is consumed.
        if (pk_feed_index.has_value() &&
            (feeds[*pk_feed_index].kind ==
                 AttributeFeed::Kind::kSurrogate ||
             pk_direct)) {
          Value anchor_key = anchor_key_column.has_value()
                                 ? anchor_table->at(row, *anchor_key_column)
                                 : tuple_element;
          if (!anchor_key.is_null()) {
            key_maps[target_relation][anchor_key] = values[*pk_feed_index];
          }
        }
        EFES_RETURN_IF_ERROR(destination->AppendRow(std::move(values)));
        ++counters.tuples_integrated;
      }

      // Detached values of path-fed attributes: source values never
      // reached from any anchor tuple.
      for (auto& [a, seen] : pulled) {
        const Correspondence corr =
            source.correspondences
                .AttributesInto(target_relation,
                                target_rel->attributes()[a].name)
                .front();
        auto source_table = source.database.table(corr.source_relation);
        if (!source_table.ok()) continue;
        auto column =
            (*source_table)->def().AttributeIndex(corr.source_attribute);
        if (!column.has_value()) continue;
        std::vector<Value> distinct =
            (*source_table)->DistinctValues(*column);
        std::sort(distinct.begin(), distinct.end());
        for (const Value& value : distinct) {
          if (seen.count(value) > 0) continue;
          if (!high) {
            ++counters.values_dropped_detached;
            continue;
          }
          // Create an enclosing tuple for the detached value.
          std::vector<Value> values(target_rel->attribute_count(),
                                    Value::Null());
          values[a] = value;
          for (size_t other = 0; other < values.size(); ++other) {
            const AttributeDef& attribute = target_rel->attributes()[other];
            if (other == a) continue;
            if (feeds[other].kind == AttributeFeed::Kind::kSurrogate) {
              values[other] = Value::Integer(next_id[target_relation]++);
            } else if (target_schema.IsNotNullable(target_relation,
                                                   attribute.name)) {
              values[other] =
                  Placeholder(attribute.type, options_.missing_text);
              ++counters.values_added;
            }
          }
          if (!values[a].CanCastTo(target_rel->attributes()[a].type)) {
            values[a] =
                BestEffortConvert(values[a], target_rel->attributes()[a].type);
            ++counters.values_converted;
          }
          EFES_RETURN_IF_ERROR(destination->AppendRow(std::move(values)));
          ++counters.tuples_added;
        }
      }
    }
  }

  // --- Residual repair: drive the combined instance to validity. ----------
  for (size_t round = 0;; ++round) {
    std::vector<ConstraintViolation> violations =
        result.FindConstraintViolations();
    if (violations.empty()) break;
    if (round >= options_.max_repair_rounds) {
      return Status::Unsatisfiable(
          "integration result did not reach validity after " +
          std::to_string(options_.max_repair_rounds) + " repair rounds");
    }
    for (const ConstraintViolation& violation : violations) {
      const Constraint& constraint = violation.constraint;
      EFES_ASSIGN_OR_RETURN(Table * table,
                            result.mutable_table(constraint.relation));
      std::vector<size_t> columns;
      for (const std::string& attribute : constraint.attributes) {
        auto index = table->def().AttributeIndex(attribute);
        if (index.has_value()) columns.push_back(*index);
      }
      switch (constraint.kind) {
        case ConstraintKind::kNotNull: {
          std::vector<size_t> offending;
          for (size_t r = 0; r < table->row_count(); ++r) {
            if (table->at(r, columns[0]).is_null()) offending.push_back(r);
          }
          if (high) {
            DataType type = table->def().attributes()[columns[0]].type;
            for (size_t r : offending) {
              table->at(r, columns[0]) =
                  Placeholder(type, options_.missing_text);
              ++counters.values_added;
            }
          } else {
            counters.tuples_rejected += offending.size();
            table->RemoveRows(offending);
          }
          break;
        }
        case ConstraintKind::kUnique:
        case ConstraintKind::kPrimaryKey: {
          // Aggregate duplicate groups onto their first row; rows with a
          // NULL key (PK only) are rejected/filled by the NOT NULL logic
          // of the PK itself on a later round.
          std::unordered_map<std::string, size_t> first_of;
          std::vector<size_t> removals;
          for (size_t r = 0; r < table->row_count(); ++r) {
            auto key = ProjectionKey(*table, r, columns);
            if (!key.has_value()) {
              if (constraint.kind == ConstraintKind::kPrimaryKey) {
                if (high) {
                  for (size_t c : columns) {
                    if (table->at(r, c).is_null()) {
                      table->at(r, c) = Placeholder(
                          table->def().attributes()[c].type,
                          options_.missing_text);
                      ++counters.values_added;
                    }
                  }
                } else {
                  removals.push_back(r);
                  ++counters.tuples_rejected;
                }
              }
              continue;
            }
            auto [it, inserted] = first_of.emplace(*key, r);
            if (!inserted) {
              removals.push_back(r);
              ++counters.tuples_aggregated;
            }
          }
          table->RemoveRows(removals);
          break;
        }
        case ConstraintKind::kFunctionalDependency: {
          // Reconcile each determinant group onto one dependent
          // projection: high quality merges onto the first row's values,
          // low effort removes the disagreeing rows. Either way one
          // round suffices.
          std::vector<size_t> dependent_columns;
          for (const std::string& attribute : constraint.referenced_attributes) {
            auto index = table->def().AttributeIndex(attribute);
            if (index.has_value()) dependent_columns.push_back(*index);
          }
          std::unordered_map<std::string, size_t> first_of;
          std::vector<size_t> removals;
          for (size_t r = 0; r < table->row_count(); ++r) {
            auto key = ProjectionKey(*table, r, columns);
            if (!key.has_value()) continue;
            auto [it, inserted] = first_of.emplace(*key, r);
            if (inserted) continue;
            bool differs = false;
            for (size_t c : dependent_columns) {
              if (!(table->at(r, c) == table->at(it->second, c))) {
                differs = true;
                break;
              }
            }
            if (!differs) continue;
            if (high) {
              for (size_t c : dependent_columns) {
                table->at(r, c) = table->at(it->second, c);
              }
              ++counters.values_merged;
            } else {
              removals.push_back(r);
              ++counters.tuples_rejected;
            }
          }
          table->RemoveRows(removals);
          break;
        }
        case ConstraintKind::kForeignKey: {
          EFES_ASSIGN_OR_RETURN(
              Table * parent,
              result.mutable_table(constraint.referenced_relation));
          std::vector<size_t> parent_columns;
          for (const std::string& attribute :
               constraint.referenced_attributes) {
            auto index = parent->def().AttributeIndex(attribute);
            if (index.has_value()) parent_columns.push_back(*index);
          }
          std::unordered_set<std::string> parent_keys;
          for (size_t r = 0; r < parent->row_count(); ++r) {
            auto key = ProjectionKey(*parent, r, parent_columns);
            if (key.has_value()) parent_keys.insert(*key);
          }
          std::vector<size_t> dangling;
          for (size_t r = 0; r < table->row_count(); ++r) {
            auto key = ProjectionKey(*table, r, columns);
            if (key.has_value() && parent_keys.count(*key) == 0) {
              dangling.push_back(r);
            }
          }
          if (high && parent_columns.size() == 1) {
            // Add referenced parent rows carrying the dangling keys.
            std::unordered_set<Value, ValueHash> added;
            for (size_t r : dangling) {
              const Value& key_value = table->at(r, columns[0]);
              if (!added.insert(key_value).second) continue;
              std::vector<Value> parent_row(
                  parent->def().attribute_count(), Value::Null());
              parent_row[parent_columns[0]] = key_value;
              for (size_t c = 0; c < parent_row.size(); ++c) {
                if (c == parent_columns[0]) continue;
                const AttributeDef& attribute =
                    parent->def().attributes()[c];
                if (target_schema.IsNotNullable(
                        constraint.referenced_relation, attribute.name)) {
                  parent_row[c] =
                      Placeholder(attribute.type, options_.missing_text);
                  ++counters.values_added;
                }
              }
              EFES_RETURN_IF_ERROR(
                  parent->AppendRow(std::move(parent_row)));
            }
            counters.dangling_repaired += dangling.size();
          } else {
            counters.dangling_repaired += dangling.size();
            table->RemoveRows(dangling);
          }
          break;
        }
      }
    }
  }

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter("execute.run.tuples_integrated")
      .Increment(counters.tuples_integrated);
  metrics.GetCounter("execute.run.tuples_rejected")
      .Increment(counters.tuples_rejected);
  metrics.GetCounter("execute.run.values_merged")
      .Increment(counters.values_merged);
  metrics.GetCounter("execute.run.values_converted")
      .Increment(counters.values_converted);
  metrics.GetCounter("execute.run.dangling_repaired")
      .Increment(counters.dangling_repaired);
  if (ProvenanceRecorder* prov = ProvenanceRecorder::Active();
      prov != nullptr) {
    std::vector<uint64_t> counter_nodes = {
        prov->RecordValue(ProvenanceKind::kStatistic,
                          "statistic execute.tuples_integrated", "",
                          static_cast<double>(counters.tuples_integrated)),
        prov->RecordValue(ProvenanceKind::kStatistic,
                          "statistic execute.tuples_rejected", "",
                          static_cast<double>(counters.tuples_rejected)),
        prov->RecordValue(ProvenanceKind::kStatistic,
                          "statistic execute.values_merged", "",
                          static_cast<double>(counters.values_merged)),
        prov->RecordValue(ProvenanceKind::kStatistic,
                          "statistic execute.values_converted", "",
                          static_cast<double>(counters.values_converted)),
        prov->RecordValue(ProvenanceKind::kStatistic,
                          "statistic execute.dangling_repaired", "",
                          static_cast<double>(counters.dangling_repaired)),
    };
    span.set_provenance(prov->Record(ProvenanceKind::kFinding,
                                     "execution report", scenario.name,
                                     std::move(counter_nodes)));
  }
  EFES_LOG(LogLevel::kInfo, "execute: " + counters.ToString());
  return result;
}

}  // namespace efes
