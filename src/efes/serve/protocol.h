// The efes_serve line protocol: newline-delimited JSON, one request per
// line in, one response per line out (DESIGN.md §14).
//
// Request grammar (a single *flat* JSON object — nested values are
// rejected, which keeps the parser small enough to be obviously safe on
// adversarial input):
//
//   {"id":"r1","op":"open","session":"s1","dir":"/path/to/scenario"}
//   {"id":"r2","op":"estimate","session":"s1","quality":"low",
//    "modules":"mapping,dedup","format":"json","explain":true,
//    "deadline_ms":250,"faults":"engine.assess:once"}
//
// Fields: `id` (required, echoed verbatim), `op` (required: open |
// estimate | assess | close | ping | stats | shutdown), `session`,
// `dir`, `quality` (high|low), `modules` (comma list), `format`
// (text|json), `lenient`, `explain`, `deadline_ms` (0 = already
// expired; absent = no deadline beyond the server default), `faults`
// (';'-separated fault specs armed for this request only, see
// common/fault.h).
//
// Response envelope, always one line:
//
//   {"id":"r2","ok":true,"degraded":false,"result":{...}}
//   {"id":"r9","ok":false,"code":"resource exhausted",
//    "error":"admission queue full","retry_after_ms":50}
//
// `code` is StatusCodeToString of the failure; `retry_after_ms` appears
// only on overload rejections. Every field value is deterministic for a
// given request sequence — responses never embed wall-clock readings —
// which is what lets the soak harness byte-diff runs across thread
// counts.

#ifndef EFES_SERVE_PROTOCOL_H_
#define EFES_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "efes/common/result.h"

namespace efes {

/// One parsed request line.
struct ServeRequest {
  std::string id;
  std::string op;
  std::string session;
  std::string dir;
  std::string quality = "high";
  std::string modules;  // empty = all modules
  std::string format = "json";
  std::string faults;  // request-scoped fault specs, ';'-separated
  bool lenient = false;
  bool explain = false;
  bool has_deadline = false;
  uint64_t deadline_ms = 0;
};

/// Parses one request line. Never crashes on garbage: any malformed
/// input yields kParseError (or kInvalidArgument for well-formed JSON
/// with bad field types/names). When the line is good enough to carry an
/// id, the error message preserves it so the server can still address
/// the response (see RecoverRequestId).
Result<ServeRequest> ParseServeRequest(std::string_view line);

/// Best-effort extraction of the "id" field from a line that failed to
/// parse, so even the response to a malformed request carries its id.
/// Returns "" when no id is recoverable.
std::string RecoverRequestId(std::string_view line);

/// One response line (without the trailing '\n').
struct ServeResponse {
  std::string id;  // empty renders as null
  Status status;
  bool degraded = false;
  /// Raw JSON embedded verbatim as "result" (already serialized).
  /// Mutually exclusive with `result_text`.
  std::string result_json;
  /// Plain-text payload, rendered as a JSON string "result".
  std::string result_text;
  /// Emitted as "retry_after_ms" when >= 0 (overload rejections).
  int64_t retry_after_ms = -1;
};

std::string SerializeServeResponse(const ServeResponse& response);

}  // namespace efes

#endif  // EFES_SERVE_PROTOCOL_H_
