#include "efes/serve/admission.h"

#include <utility>

#include "efes/common/metrics.h"

namespace efes {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  size_t workers = options_.workers == 0 ? 1 : options_.workers;
  MetricsRegistry::Global().GetGauge("serve.admission.workers")
      .Set(static_cast<double>(workers));
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() { AwaitDrain(); }

Status AdmissionController::Admit(std::string strand, bool exclusive,
                                  Task task) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      metrics.GetCounter("serve.admission.rejected_draining").Increment();
      return Status::Unavailable(
          "server is draining and refuses new requests");
    }
    if (queued_count_ >= options_.max_queue) {
      metrics.GetCounter("serve.admission.rejected_overload").Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " requests waiting)");
    }
    ++queued_count_;
    ++outstanding_;
    Queued item{std::move(task), std::move(strand), exclusive};
    if (!item.strand.empty() && strand_active_.count(item.strand) > 0) {
      strand_waiting_[item.strand].push_back(std::move(item));
    } else {
      if (!item.strand.empty()) strand_active_.insert(item.strand);
      ready_.push_back(std::move(item));
    }
    metrics.GetCounter("serve.admission.admitted").Increment();
  }
  work_cv_.notify_one();
  return Status::OK();
}

void AdmissionController::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
    if (ready_.empty()) return;  // stop_, and nothing left to run
    Queued item = std::move(ready_.front());
    ready_.pop_front();
    --queued_count_;
    // The exclusivity gate. An exclusive task starts only when nothing
    // runs; while one waits or runs, non-exclusive tasks hold at the
    // gate. Waiters do not count as running, so this cannot deadlock on
    // a fully parked pool.
    if (item.exclusive) {
      ++exclusive_waiting_;
      gate_cv_.wait(lock,
                    [this] { return running_ == 0 && !exclusive_active_; });
      --exclusive_waiting_;
      exclusive_active_ = true;
    } else {
      gate_cv_.wait(lock, [this] {
        return !exclusive_active_ && exclusive_waiting_ == 0;
      });
    }
    ++running_;
    lock.unlock();
    item.task();
    lock.lock();
    --running_;
    if (item.exclusive) exclusive_active_ = false;
    --outstanding_;
    // Strand handoff: release the next same-session task, preserving
    // admission order.
    if (!item.strand.empty()) {
      auto it = strand_waiting_.find(item.strand);
      if (it != strand_waiting_.end() && !it->second.empty()) {
        ready_.push_back(std::move(it->second.front()));
        it->second.pop_front();
        if (it->second.empty()) strand_waiting_.erase(it);
        work_cv_.notify_one();
      } else {
        if (it != strand_waiting_.end()) strand_waiting_.erase(it);
        strand_active_.erase(item.strand);
      }
    }
    gate_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

void AdmissionController::AwaitDrain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    if (joined_) return;
    joined_ = true;
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_count_;
}

}  // namespace efes
