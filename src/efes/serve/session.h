// Session table for efes_serve (DESIGN.md §14).
//
// A session is one loaded scenario, opened once and estimated many
// times. The scenario itself is immutable after open — every estimate
// request reads it through a shared_ptr, so `close` can drop the table
// entry while an in-flight estimate on another worker still holds the
// data alive. Profiling statistics are *not* stored here: they live in
// the server-wide content-addressed ProfileCache, which `open` warms
// with one assessment pass so later estimates under any RunOptions hit
// warm entries.
//
// Lifecycle per name: absent → reserved (Reserve, on the reader thread,
// so capacity and duplicate decisions follow line order) → open
// (kAlreadyExists on re-open) → closed (kNotFound afterwards). A
// reservation holds a table slot; a failed or cancelled load releases
// it. The table is bounded: reserving beyond `max_sessions` is refused
// with kResourceExhausted, the same overload-shedding contract as the
// admission queue.

#ifndef EFES_SERVE_SESSION_H_
#define EFES_SERVE_SESSION_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/common/thread_annotations.h"
#include "efes/core/integration_scenario.h"

namespace efes {

/// What `open` reports back about the loaded scenario.
struct SessionInfo {
  std::string name;
  size_t sources = 0;
  /// True when a lenient load skipped or repaired defects.
  bool load_degraded = false;
  size_t load_issues = 0;
};

/// Thread-safe bounded session table.
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Claims `name` and one table slot *before* the slow load. Fails with
  /// kAlreadyExists / kResourceExhausted. The server calls this from the
  /// single-threaded reader, so duplicate- and capacity-decisions are
  /// made strictly in line order — two concurrent opens racing the last
  /// slot on different worker strands would otherwise make the winner
  /// scheduling-dependent, breaking response determinism.
  Status Reserve(const std::string& name);

  /// Releases a reservation whose load never completed (load error,
  /// cancelled open, admission rejection). No-op once fulfilled.
  void CancelReservation(const std::string& name);

  /// Loads `dir` (strict, or recover mode when `lenient`) and fulfills
  /// the reservation for `name` made by Reserve. Fails with the load
  /// error (the caller still owns the reservation then). The scenario
  /// name is overwritten with the session name so responses are stable
  /// regardless of the directory path.
  Result<SessionInfo> Open(const std::string& name, const std::string& dir,
                           bool lenient);

  /// The scenario behind `name`; kNotFound when absent, kUnavailable
  /// while a reservation is still loading (only reachable from a
  /// *different* session's request — per-session admission strands keep
  /// a session's own requests FIFO behind its open).
  Result<std::shared_ptr<const IntegrationScenario>> Get(
      const std::string& name) const;

  /// Drops `name` from the table (in-flight readers keep their
  /// shared_ptr). kNotFound when absent.
  Status Close(const std::string& name);

  size_t open_count() const;

  /// Session names, sorted (the std::map order) — for `stats`.
  std::vector<std::string> Names() const;

 private:
  // Immutable after construction, but only ever read while deciding
  // admission under the lock, so it carries the annotation too.
  const size_t max_sessions_ EFES_GUARDED_BY(mutex_);
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const IntegrationScenario>>
      sessions_ EFES_GUARDED_BY(mutex_);
};

}  // namespace efes

#endif  // EFES_SERVE_SESSION_H_
