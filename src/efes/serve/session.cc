#include "efes/serve/session.h"

#include <utility>

#include "efes/scenario/scenario_io.h"
#include "efes/common/metrics.h"

namespace efes {

Status SessionManager::Reserve(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.count(name) > 0) {
    return Status::AlreadyExists("session already open: " + name);
  }
  if (sessions_.size() >= max_sessions_) {
    return Status::ResourceExhausted(
        "session table full (" + std::to_string(max_sessions_) +
        " open); close a session first");
  }
  sessions_.emplace(name, nullptr);
  return Status::OK();
}

void SessionManager::CancelReservation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it != sessions_.end() && it->second == nullptr) {
    sessions_.erase(it);
  }
}

Result<SessionInfo> SessionManager::Open(const std::string& name,
                                         const std::string& dir,
                                         bool lenient) {
  LoadOptions options;
  if (lenient) options.mode = LoadOptions::Mode::kRecover;
  ScenarioLoadReport report;
  EFES_ASSIGN_OR_RETURN(IntegrationScenario scenario,
                        LoadScenario(dir, options, &report));
  // Rename to the session name: responses must not leak (and not vary
  // with) the server-side filesystem layout.
  scenario.name = name;
  auto shared =
      std::make_shared<const IntegrationScenario>(std::move(scenario));
  SessionInfo info;
  info.name = name;
  info.sources = shared->sources.size();
  info.load_degraded = report.degraded;
  info.load_issues = report.issues.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      // The reservation vanished mid-load — only possible through a
      // code path that skipped Reserve, since per-session strand FIFO
      // runs any close after this open completes.
      return Status::Internal("session \"" + name +
                              "\" was not reserved before Open");
    }
    it->second = std::move(shared);
    MetricsRegistry::Global().GetCounter("serve.sessions.opened")
        .Increment();
    MetricsRegistry::Global().GetGauge("serve.sessions.open")
        .Set(static_cast<double>(sessions_.size()));
  }
  return info;
}

Result<std::shared_ptr<const IntegrationScenario>> SessionManager::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + name);
  }
  if (it->second == nullptr) {
    return Status::Unavailable("session \"" + name +
                               "\" is still opening");
  }
  return it->second;
}

Status SessionManager::Close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.erase(name) == 0) {
    return Status::NotFound("no such session: " + name);
  }
  MetricsRegistry::Global().GetCounter("serve.sessions.closed").Increment();
  MetricsRegistry::Global().GetGauge("serve.sessions.open")
      .Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

size_t SessionManager::open_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<std::string> SessionManager::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, scenario] : sessions_) names.push_back(name);
  return names;
}

}  // namespace efes
