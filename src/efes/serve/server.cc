#include "efes/serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "efes/common/fault.h"
#include "efes/common/json_writer.h"
#include "efes/common/string_util.h"
#include "efes/experiment/default_pipeline.h"
#include "efes/experiment/json_export.h"
#include "efes/provenance/provenance.h"
#include "efes/provenance/render.h"
#include "efes/common/clock.h"
#include "efes/common/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {
namespace {

constexpr char kDrainRefusal[] =
    "server is draining and refuses new requests";
/// Fixed force-fail message: watchdog responses must stay byte-identical
/// across runs, so no elapsed times or module names in here.
constexpr char kWatchdogMessage[] =
    "deadline expired mid-module; the watchdog discarded the result";

Counter& ServeCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(name);
}

ExpectedQuality QualityFromRequest(const ServeRequest& request) {
  return request.quality == "low" ? ExpectedQuality::kLowEffort
                                  : ExpectedQuality::kHighQuality;
}

}  // namespace

EfesServer::EfesServer(ServeOptions options) : options_(std::move(options)),
                                               sessions_(options_.max_sessions),
                                               admission_(AdmissionOptions{
                                                   options_.workers,
                                                   options_.max_queue,
                                                   options_.retry_after_ms}) {
  // Install the server-lifetime cache as ambient so every worker (and the
  // warm pass in HandleOpen) shares it. A null cache is installed too:
  // the server's behavior should not depend on whatever ambient cache the
  // embedding process happened to have.
  scoped_cache_.emplace(options_.cache);
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

EfesServer::~EfesServer() {
  DrainAndFlush();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

Status EfesServer::ServeLines(std::istream& in, std::ostream& out) {
  WriteLineFn write_line = [this, &out](const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    out << line << '\n';
    out.flush();
  };
  std::string line;
  bool shutting_down = false;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    if (shutting_down ||
        shutdown_requested_.load(std::memory_order_relaxed)) {
      // Refuse, but keep reading: every submitted line gets an answer.
      admission_.BeginDrain();
      ServeResponse refusal;
      refusal.id = RecoverRequestId(line);
      refusal.status = Status::Unavailable(kDrainRefusal);
      ServeCounter("serve.requests.refused_draining").Increment();
      write_line(SerializeServeResponse(refusal));
      shutting_down = true;
      continue;
    }
    if (HandleLine(line, write_line)) shutting_down = true;
  }
  DrainAndFlush();
  return Status::OK();
}

Status EfesServer::ServeFd(int in_fd, int out_fd) {
  WriteLineFn write_line = [this, out_fd](const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    std::string buffer = line;
    buffer.push_back('\n');
    size_t offset = 0;
    while (offset < buffer.size()) {
      ssize_t written =
          ::write(out_fd, buffer.data() + offset, buffer.size() - offset);
      if (written < 0) {
        if (errno == EINTR) continue;
        return;  // client hung up; drop the rest of this line
      }
      offset += static_cast<size_t>(written);
    }
  };
  std::string pending_input;
  bool shutting_down = false;
  auto handle_buffered = [&](bool at_eof) {
    size_t start = 0;
    for (;;) {
      size_t newline = pending_input.find('\n', start);
      std::string line;
      if (newline == std::string::npos) {
        if (!at_eof) break;
        line = pending_input.substr(start);
        start = pending_input.size();
        if (Trim(line).empty()) break;
      } else {
        line = pending_input.substr(start, newline - start);
        start = newline + 1;
        if (Trim(line).empty()) continue;
      }
      if (shutting_down) {
        ServeResponse refusal;
        refusal.id = RecoverRequestId(line);
        refusal.status = Status::Unavailable(kDrainRefusal);
        ServeCounter("serve.requests.refused_draining").Increment();
        write_line(SerializeServeResponse(refusal));
      } else if (HandleLine(line, write_line)) {
        shutting_down = true;
      }
      if (newline == std::string::npos) break;
    }
    pending_input.erase(0, start);
  };
  for (;;) {
    if (shutdown_requested_.load(std::memory_order_relaxed) &&
        !shutting_down) {
      // SIGTERM: refuse whatever is already buffered, then stop reading.
      shutting_down = true;
      admission_.BeginDrain();
      handle_buffered(/*at_eof=*/true);
      break;
    }
    struct pollfd poll_fd;
    poll_fd.fd = in_fd;
    poll_fd.events = POLLIN;
    poll_fd.revents = 0;
    int ready = ::poll(&poll_fd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DrainAndFlush();
      return Status::Unavailable("poll on input descriptor failed");
    }
    if (ready == 0) continue;
    char chunk[4096];
    ssize_t bytes = ::read(in_fd, chunk, sizeof(chunk));
    if (bytes < 0) {
      if (errno == EINTR) continue;
      DrainAndFlush();
      return Status::Unavailable("read on input descriptor failed");
    }
    if (bytes == 0) {
      handle_buffered(/*at_eof=*/true);
      break;
    }
    pending_input.append(chunk, static_cast<size_t>(bytes));
    handle_buffered(/*at_eof=*/false);
  }
  DrainAndFlush();
  return Status::OK();
}

bool EfesServer::HandleLine(const std::string& line,
                            const WriteLineFn& write_line) {
  ServeCounter("serve.requests.received").Increment();
  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    // Malformed input degrades exactly this response: answer with the
    // parse error (best-effort request id) and keep serving.
    ServeCounter("serve.requests.malformed").Increment();
    ServeResponse response;
    response.id = RecoverRequestId(line);
    response.status = parsed.status();
    write_line(SerializeServeResponse(response));
    return false;
  }
  ServeRequest request = std::move(*parsed);
  if (request.op == "ping") {
    ServeResponse response;
    response.id = request.id;
    response.result_json = "{\"pong\":true}";
    write_line(SerializeServeResponse(response));
    return false;
  }
  if (request.op == "stats") {
    ServeResponse response = HandleStats(request);
    response.id = request.id;
    write_line(SerializeServeResponse(response));
    return false;
  }
  if (request.op == "shutdown") {
    // Refuse-new first, then acknowledge; in-flight requests drain after
    // the reader loop stops.
    admission_.BeginDrain();
    ServeResponse response;
    response.id = request.id;
    response.result_json = "{\"draining\":true}";
    write_line(SerializeServeResponse(response));
    return true;
  }
  // Session ops from here on.
  ServeResponse invalid;
  invalid.id = request.id;
  if (request.session.empty()) {
    invalid.status = Status::InvalidArgument("op \"" + request.op +
                                             "\" requires a session");
    write_line(SerializeServeResponse(invalid));
    return false;
  }
  if (request.op == "open") {
    if (request.dir.empty()) {
      invalid.status = Status::InvalidArgument("open requires a dir");
      write_line(SerializeServeResponse(invalid));
      return false;
    }
    // Claim the name and a table slot here, on the reader thread, so
    // duplicate- and capacity-refusals follow line order even when the
    // loads themselves race on different worker strands.
    if (Status reserved = sessions_.Reserve(request.session);
        !reserved.ok()) {
      invalid.status = std::move(reserved);
      write_line(SerializeServeResponse(invalid));
      return false;
    }
  }
  auto pending = std::make_shared<PendingRequest>();
  pending->id = request.id;
  pending->token = std::make_shared<CancelToken>();
  uint64_t deadline_ms = request.deadline_ms;
  bool has_deadline = request.has_deadline;
  if (!has_deadline && options_.default_deadline_ms > 0) {
    has_deadline = true;
    deadline_ms = options_.default_deadline_ms;
  }
  if (has_deadline) {
    pending->token->SetDeadline(deadline_ms);
    pending->force_fail_nanos =
        pending->token->deadline_nanos() +
        static_cast<int64_t>(options_.watchdog_grace_ms) * 1000000;
    RegisterWithWatchdog(pending, write_line);
  }
  bool exclusive = request.explain && request.op == "estimate";
  Status admitted = admission_.Admit(
      "session:" + request.session, exclusive,
      [this, pending, request, write_line] {
        RunRequest(pending, request, write_line);
      });
  if (!admitted.ok()) {
    if (request.op == "open") sessions_.CancelReservation(request.session);
    ServeResponse rejection;
    rejection.id = request.id;
    rejection.status = admitted;
    if (admitted.code() == StatusCode::kResourceExhausted) {
      rejection.retry_after_ms = admission_.retry_after_ms();
    }
    Respond(pending, std::move(rejection), write_line);
  }
  return false;
}

void EfesServer::RunRequest(const std::shared_ptr<PendingRequest>& pending,
                            const ServeRequest& request,
                            const WriteLineFn& write_line) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  TraceSpan span("serve.request", nullptr,
                 &metrics.GetHistogram("serve.request.ms"));
  ServeResponse response;
  response.id = request.id;
  // Per-request fault registry: faults named in the request line arm for
  // this request only (thread-local scope, see common/fault.h) and can
  // never fire in a sibling request or poison the session table.
  FaultRegistry request_faults;
  if (!request.faults.empty()) {
    Status armed = request_faults.ArmFromList(request.faults);
    if (!armed.ok()) {
      response.status = std::move(armed);
      Respond(pending, std::move(response), write_line);
      return;
    }
  }
  ScopedRequestFaults scoped_faults(
      request.faults.empty() ? nullptr : &request_faults);
  ScopedCancelToken scoped_token(pending->token.get());
  // Watchdog test hook: a request carrying serve.stall parks here,
  // past its first checkpoint, until cancelled (the watchdog's
  // force-fail path) or a bounded backstop elapses.
  if (Status stall = CheckFaultPoint("serve.stall"); !stall.ok()) {
    (void)pending->token->WaitCancelled(
        /*max_wait_ms=*/options_.watchdog_grace_ms * 50 + 5000);
  }
  Status early = CheckCancellation();
  if (!early.ok()) {
    // An open refused at its first checkpoint still owns its table
    // reservation (made on the reader thread) — release it.
    if (request.op == "open") sessions_.CancelReservation(request.session);
    response.status = std::move(early);
  } else {
    // Containment backstop: an op that throws (module code is exception-
    // free by contract, but this is the robustness layer) degrades only
    // this response.
    try {
      if (request.op == "open") {
        response = HandleOpen(request);
      } else if (request.op == "estimate") {
        response = HandleEstimate(request);
      } else if (request.op == "assess") {
        response = HandleAssess(request);
      } else {  // "close" — ValidateRequest admits no other op here
        response = HandleClose(request);
      }
    } catch (const std::exception& e) {
      if (request.op == "open") sessions_.CancelReservation(request.session);
      response = ServeResponse{};
      response.status =
          Status::Internal(std::string("request handler threw: ") + e.what());
      ServeCounter("serve.requests.caught_exceptions").Increment();
    } catch (...) {
      if (request.op == "open") sessions_.CancelReservation(request.session);
      response = ServeResponse{};
      response.status =
          Status::Internal("request handler threw a non-exception");
      ServeCounter("serve.requests.caught_exceptions").Increment();
    }
    response.id = request.id;
  }
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    ServeCounter("serve.deadline.exceeded").Increment();
  }
  Respond(pending, std::move(response), write_line);
}

ServeResponse EfesServer::HandleOpen(const ServeRequest& request) {
  ServeResponse response;
  Result<SessionInfo> info =
      sessions_.Open(request.session, request.dir, request.lenient);
  if (!info.ok()) {
    sessions_.CancelReservation(request.session);
    response.status = info.status();
    return response;
  }
  // Warm the profile cache with one assessment pass so every later
  // estimate, under any RunOptions, reuses the statistics.
  bool warm_degraded = false;
  Result<std::shared_ptr<const IntegrationScenario>> scenario =
      sessions_.Get(request.session);
  if (scenario.ok()) {
    EfesEngine engine = MakeDefaultEngine();
    RunOptions run_options;
    run_options.cache = options_.cache;
    auto warmed = engine.AssessComplexity(**scenario, run_options);
    if (!warmed.ok()) {
      if (IsCancellation(warmed.status().code())) {
        // Deadline hit mid-open: the session must not half-exist. Undo
        // the insert and report the cancellation.
        if (Status closed = sessions_.Close(request.session); !closed.ok()) {
          ServeCounter("serve.sessions.undo_failures").Increment();
        }
        response.status = warmed.status();
        return response;
      }
      // Any other warm failure is contained: the session stays usable
      // (estimates recompute lazily), the response just flags it.
      warm_degraded = true;
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("session");
  json.String(info->name);
  json.Key("sources");
  json.Number(static_cast<int64_t>(info->sources));
  json.Key("load_issues");
  json.Number(static_cast<int64_t>(info->load_issues));
  json.EndObject();
  response.result_json = json.ToString();
  response.degraded = info->load_degraded || warm_degraded;
  return response;
}

ServeResponse EfesServer::HandleEstimate(const ServeRequest& request) {
  ServeResponse response;
  Result<std::shared_ptr<const IntegrationScenario>> scenario =
      sessions_.Get(request.session);
  if (!scenario.ok()) {
    response.status = scenario.status();
    return response;
  }
  std::string modules =
      request.modules.empty() ? std::string(kDefaultModules) : request.modules;
  Result<EfesEngine> engine = MakeEngineForModules(modules);
  if (!engine.ok()) {
    response.status = engine.status();
    return response;
  }
  RunOptions run_options;
  run_options.quality = QualityFromRequest(request);
  run_options.cache = options_.cache;
  // `explain` records provenance through the process-global recorder;
  // the admission controller ran this request exclusively, so the scoped
  // install below cannot race another request's run.
  ProvenanceRecorder recorder;
  std::optional<ScopedProvenanceRecorder> scoped_recorder;
  if (request.explain) scoped_recorder.emplace(&recorder);
  Result<EstimationResult> result = engine->Run(**scenario, run_options);
  scoped_recorder.reset();
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }
  response.degraded = result->degraded;
  if (request.format == "text") {
    std::string text = result->ToText();
    if (request.explain) {
      ProvenanceSnapshot snapshot = recorder.Snapshot();
      Result<std::string> tree =
          RenderProvenanceTree(snapshot, /*task_filter=*/"");
      if (tree.ok()) {
        text += "\n";
        text += *tree;
      } else {
        response.degraded = true;
      }
    }
    response.result_text = std::move(text);
  } else {
    ProvenanceSnapshot snapshot;
    if (request.explain) snapshot = recorder.Snapshot();
    response.result_json = EstimationResultToJson(
        *result, /*telemetry=*/nullptr,
        request.explain ? &snapshot : nullptr);
  }
  return response;
}

ServeResponse EfesServer::HandleAssess(const ServeRequest& request) {
  ServeResponse response;
  Result<std::shared_ptr<const IntegrationScenario>> scenario =
      sessions_.Get(request.session);
  if (!scenario.ok()) {
    response.status = scenario.status();
    return response;
  }
  std::string modules =
      request.modules.empty() ? std::string(kDefaultModules) : request.modules;
  Result<EfesEngine> engine = MakeEngineForModules(modules);
  if (!engine.ok()) {
    response.status = engine.status();
    return response;
  }
  RunOptions run_options;
  run_options.cache = options_.cache;
  auto reports = engine->AssessComplexity(**scenario, run_options);
  if (!reports.ok()) {
    response.status = reports.status();
    return response;
  }
  if (request.format == "text") {
    std::string text;
    for (const auto& report : *reports) {
      if (report == nullptr) continue;
      if (!text.empty()) text += "\n";
      text += report->ToText();
    }
    response.result_text = std::move(text);
  } else {
    JsonWriter json;
    json.BeginObject();
    json.Key("reports");
    json.BeginArray();
    for (const auto& report : *reports) {
      if (report == nullptr) continue;
      json.BeginObject();
      json.Key("module");
      json.String(report->module_name());
      json.Key("problem_count");
      json.Number(static_cast<int64_t>(report->ProblemCount()));
      json.Key("text");
      json.String(report->ToText());
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    response.result_json = json.ToString();
  }
  return response;
}

ServeResponse EfesServer::HandleClose(const ServeRequest& request) {
  ServeResponse response;
  response.status = sessions_.Close(request.session);
  if (response.status.ok()) response.result_json = "{\"closed\":true}";
  return response;
}

ServeResponse EfesServer::HandleStats(const ServeRequest& request) {
  (void)request;
  MetricsRegistry& metrics = MetricsRegistry::Global();
  // Force-register the file_io counters so a clean run reports explicit
  // zeros — the soak gate greps for "file_io.retries":0.
  (void)metrics.GetCounter("file_io.files");
  (void)metrics.GetCounter("file_io.retries");
  (void)metrics.GetCounter("file_io.failures");
  ServeResponse response;
  JsonWriter json;
  json.BeginObject();
  json.Key("sessions");
  json.BeginArray();
  for (const std::string& name : sessions_.Names()) json.String(name);
  json.EndArray();
  json.Key("queued");
  json.Number(static_cast<int64_t>(admission_.queued()));
  json.Key("counters");
  json.BeginObject();
  MetricsSnapshot snapshot = metrics.Snapshot();
  for (const auto& counter : snapshot.counters) {
    if (!StartsWith(counter.name, "serve.") &&
        !StartsWith(counter.name, "file_io.")) {
      continue;
    }
    json.Key(counter.name);
    json.Number(static_cast<int64_t>(counter.value));
  }
  json.EndObject();
  json.EndObject();
  response.result_json = json.ToString();
  return response;
}

void EfesServer::Respond(const std::shared_ptr<PendingRequest>& pending,
                         ServeResponse response,
                         const WriteLineFn& write_line) {
  if (pending->responded.exchange(true)) {
    // The watchdog (or an admission rejection) beat us to it; a late
    // worker result is discarded, never sent after its failure response.
    ServeCounter("serve.responses.discarded_late").Increment();
    return;
  }
  ServeCounter(response.status.ok() ? "serve.requests.ok"
                                    : "serve.requests.error")
      .Increment();
  write_line(SerializeServeResponse(response));
}

void EfesServer::RegisterWithWatchdog(std::shared_ptr<PendingRequest> pending,
                                      const WriteLineFn& write_line) {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watched_.push_back(WatchedRequest{std::move(pending), write_line});
  }
  watchdog_cv_.notify_all();
}

void EfesServer::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(20),
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    int64_t now = Clock::Default()->NowNanos();
    for (auto it = watched_.begin(); it != watched_.end();) {
      PendingRequest& pending = *it->pending;
      if (pending.responded.load(std::memory_order_acquire)) {
        it = watched_.erase(it);
        continue;
      }
      if (now < pending.force_fail_nanos) {
        ++it;
        continue;
      }
      // Deadline + grace blown without reaching a checkpoint: cancel
      // (so the worker unwinds at its next checkpoint) and force the
      // failure response now. The `responded` claim guarantees the
      // worker's eventual result is discarded, not sent as a second
      // response.
      pending.token->Cancel(Status::DeadlineExceeded(kWatchdogMessage));
      if (!pending.responded.exchange(true)) {
        ServeCounter("serve.watchdog.forced").Increment();
        ServeCounter("serve.requests.error").Increment();
        ServeResponse response;
        response.id = pending.id;
        response.status = Status::DeadlineExceeded(kWatchdogMessage);
        it->write_line(SerializeServeResponse(response));
      }
      it = watched_.erase(it);
    }
  }
}

void EfesServer::DrainAndFlush() {
  admission_.BeginDrain();
  admission_.AwaitDrain();
  {
    // Workers are gone, so every watched request has (or will never get)
    // its response; clearing under the lock means no watchdog write can
    // start after this point — the frontend's output stream is about to
    // go out of scope.
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watched_.clear();
  }
  if (drained_) return;
  drained_ = true;
  if (options_.cache != nullptr && !options_.cache_save_path.empty()) {
    Status saved = options_.cache->SaveToFile(options_.cache_save_path);
    if (saved.ok()) {
      ServeCounter("serve.cache.flushes").Increment();
    } else {
      ServeCounter("serve.cache.flush_failures").Increment();
    }
  }
}

}  // namespace efes
