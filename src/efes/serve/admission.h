// Admission control for efes_serve (DESIGN.md §14): a bounded queue in
// front of a fixed worker pool, with per-session FIFO strands and an
// exclusivity gate.
//
// Overload is shed at the door: once `max_queue` admitted-but-unstarted
// tasks pile up, Admit refuses with kResourceExhausted and the caller
// attaches a Retry-After hint — the queue never grows unboundedly, and a
// slow request cannot take the whole server down with it.
//
// Strands serialize same-session requests in arrival order (an
// `estimate` admitted after its session's `open` runs after that open
// finished, even with idle workers), which is what makes concurrent
// mixed workloads deterministic per request id. Requests on different
// strands run concurrently.
//
// The exclusivity gate exists for `explain` requests: provenance
// recording installs a process-global recorder, so an exclusive task
// waits until nothing else is executing and blocks new tasks from
// starting while it runs. Throughput cost, correctness win; explain is
// a debugging op.
//
// Drain is two-phase: BeginDrain() makes every further Admit fail with
// kUnavailable (the "refuse new work" half of graceful shutdown);
// AwaitDrain() blocks until everything admitted has finished and the
// workers have exited.

#ifndef EFES_SERVE_ADMISSION_H_
#define EFES_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "efes/common/status.h"
#include "efes/common/thread_annotations.h"

namespace efes {

struct AdmissionOptions {
  /// Request worker threads (distinct from the ParallelFor pool the
  /// estimation work inside a request fans out to).
  size_t workers = 4;
  /// Maximum admitted-but-not-yet-started tasks before overload
  /// shedding kicks in. Running tasks do not count (they are bounded by
  /// `workers`).
  size_t max_queue = 64;
  /// The Retry-After hint attached to overload rejections, fixed so
  /// rejection responses stay byte-deterministic.
  int64_t retry_after_ms = 50;
};

class AdmissionController {
 public:
  using Task = std::function<void()>;

  explicit AdmissionController(AdmissionOptions options);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits `task` for asynchronous execution. Tasks sharing a non-empty
  /// `strand` run one at a time in admission order; `exclusive` tasks
  /// run with nothing else executing. Fails with kUnavailable after
  /// BeginDrain() and kResourceExhausted on overload — the task is then
  /// NOT executed.
  Status Admit(std::string strand, bool exclusive, Task task);

  /// Stops admitting (kUnavailable from here on). Idempotent, cheap,
  /// safe from any thread — including a poll loop reacting to SIGTERM.
  void BeginDrain();

  /// BeginDrain() + blocks until every admitted task finished and the
  /// workers exited. Call exactly once before destruction (the
  /// destructor calls it as a backstop).
  void AwaitDrain();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] size_t queued() const;
  [[nodiscard]] int64_t retry_after_ms() const {
    return options_.retry_after_ms;
  }

 private:
  struct Queued {
    Task task;
    std::string strand;
    bool exclusive = false;
  };

  void WorkerLoop();

  const AdmissionOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: ready_ nonempty or stop_
  // AwaitDrain: outstanding_ == 0.
  std::condition_variable idle_cv_ EFES_GUARDED_BY(mutex_);
  // Exclusivity gate transitions.
  std::condition_variable gate_cv_ EFES_GUARDED_BY(mutex_);
  std::deque<Queued> ready_ EFES_GUARDED_BY(mutex_);
  /// Tasks waiting behind their strand's currently queued/running task.
  std::map<std::string, std::deque<Queued>> strand_waiting_
      EFES_GUARDED_BY(mutex_);
  /// Strands with a task in ready_ or executing.
  std::set<std::string> strand_active_ EFES_GUARDED_BY(mutex_);
  // Admitted-not-started / admitted-not-finished / executing counts.
  size_t queued_count_ EFES_GUARDED_BY(mutex_) = 0;
  size_t outstanding_ EFES_GUARDED_BY(mutex_) = 0;
  size_t running_ EFES_GUARDED_BY(mutex_) = 0;
  size_t exclusive_waiting_ EFES_GUARDED_BY(mutex_) = 0;
  bool exclusive_active_ EFES_GUARDED_BY(mutex_) = false;
  bool draining_ EFES_GUARDED_BY(mutex_) = false;
  bool stop_ EFES_GUARDED_BY(mutex_) = false;
  bool joined_ EFES_GUARDED_BY(mutex_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace efes

#endif  // EFES_SERVE_ADMISSION_H_
