// The efes_serve request engine (DESIGN.md §14): sessions + admission +
// deadlines + per-request fault containment behind the line protocol of
// protocol.h.
//
// One EfesServer owns the session table, the admission controller, a
// watchdog thread, and (optionally) the process-wide ProfileCache it
// installs as ambient for its lifetime. Frontends feed it request lines:
//
//   * ServeLines(istream, ostream) — synchronous pipe mode for tests and
//     `efes_serve --pipe` fed by a shell. Reads to EOF (or a `shutdown`
//     request), then drains and flushes the cache snapshot.
//   * ServeFd(in_fd, out_fd) — the daemon frontend: poll()-driven, so a
//     SIGTERM handler calling RequestShutdown() is noticed within one
//     poll interval even while idle.
//
// Robustness contract per request:
//   * containment — a malformed line, a bad scenario, an injected fault,
//     or a thrown exception degrades exactly one response (partial
//     report + degraded flag, or an error envelope); the session table,
//     the profile cache, and sibling requests never observe it.
//   * deadline — `deadline_ms` arms a CancelToken checked at batch
//     boundaries; expiry yields kDeadlineExceeded with no partial
//     result. A watchdog force-fails a request that blows through its
//     deadline plus grace without reaching a checkpoint (the worker's
//     late result is discarded, never sent).
//   * determinism — for a fixed request sequence, every response line is
//     byte-identical across thread counts and cache states; only line
//     *order* may vary (clients key on id).
//
// Fault points: `serve.cancel` (checkpoints, see common/deadline.h) and
// `serve.stall` (parks a request until cancelled — the watchdog test
// hook).

#ifndef EFES_SERVE_SERVER_H_
#define EFES_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "efes/cache/profile_cache.h"
#include "efes/common/deadline.h"
#include "efes/common/thread_annotations.h"
#include "efes/serve/admission.h"
#include "efes/serve/protocol.h"
#include "efes/serve/session.h"

namespace efes {

struct ServeOptions {
  /// Request worker threads.
  size_t workers = 4;
  /// Bounded admission queue (see admission.h).
  size_t max_queue = 64;
  /// Bounded session table.
  size_t max_sessions = 32;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 = none.
  uint64_t default_deadline_ms = 0;
  /// How long past its deadline a request may run before the watchdog
  /// force-fails it (the cooperative checkpoints normally fire first).
  uint64_t watchdog_grace_ms = 200;
  /// Retry-After hint on overload rejections.
  int64_t retry_after_ms = 50;
  /// Server-lifetime profile cache, installed as ambient. May be null
  /// (no caching).
  ProfileCache* cache = nullptr;
  /// When nonempty, the cache snapshot is flushed here (atomically, via
  /// WriteFileAtomic) as part of every drain.
  std::string cache_save_path;
};

class EfesServer {
 public:
  explicit EfesServer(ServeOptions options);
  ~EfesServer();
  EfesServer(const EfesServer&) = delete;
  EfesServer& operator=(const EfesServer&) = delete;

  /// Pipe mode over C++ streams. Returns after EOF or `shutdown`, once
  /// every in-flight request drained and the cache snapshot (if
  /// configured) flushed.
  Status ServeLines(std::istream& in, std::ostream& out);

  /// Pipe mode over file descriptors with a poll() loop; the frontend
  /// for the daemon. Honors RequestShutdown() (SIGTERM) within one poll
  /// interval.
  Status ServeFd(int in_fd, int out_fd);

  /// Signals the serve loop to stop reading, drain, and return.
  /// Async-signal-safe (one relaxed atomic store).
  void RequestShutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }

 private:
  struct PendingRequest {
    std::string id;
    std::shared_ptr<CancelToken> token;
    std::atomic<bool> responded{false};
    /// Clock nanos after which the watchdog force-fails this request;
    /// CancelToken::kNoDeadline when the request has no deadline.
    int64_t force_fail_nanos = CancelToken::kNoDeadline;
  };

  using WriteLineFn = std::function<void(const std::string&)>;

  /// Parses and routes one request line. Inline ops (ping/stats/
  /// shutdown/errors) respond immediately; the rest are admitted.
  /// Returns true when the line was a `shutdown` request.
  bool HandleLine(const std::string& line, const WriteLineFn& write_line);

  /// Drains the admission queue and flushes the cache snapshot.
  void DrainAndFlush();

  /// Runs one admitted request on a worker: request faults + cancel
  /// token installed, op dispatched, response claimed against the
  /// watchdog.
  void RunRequest(const std::shared_ptr<PendingRequest>& pending,
                  const ServeRequest& request,
                  const WriteLineFn& write_line);

  ServeResponse HandleOpen(const ServeRequest& request);
  ServeResponse HandleEstimate(const ServeRequest& request);
  ServeResponse HandleAssess(const ServeRequest& request);
  ServeResponse HandleClose(const ServeRequest& request);
  ServeResponse HandleStats(const ServeRequest& request);

  /// Sends `response` unless the watchdog (or anyone else) already
  /// responded for `pending`.
  void Respond(const std::shared_ptr<PendingRequest>& pending,
               ServeResponse response, const WriteLineFn& write_line);

  void WatchdogLoop();
  void RegisterWithWatchdog(std::shared_ptr<PendingRequest> pending,
                            const WriteLineFn& write_line);

  const ServeOptions options_;
  /// Ambient cache for the server's lifetime; declared before the
  /// admission controller so it outlives every worker.
  std::optional<ScopedProfileCache> scoped_cache_;
  SessionManager sessions_;
  AdmissionController admission_;

  std::atomic<bool> shutdown_requested_{false};
  bool drained_ = false;

  /// One response line at a time, whole: concurrent workers never
  /// interleave bytes within a line.
  std::mutex write_mutex_;

  struct WatchedRequest {
    std::shared_ptr<PendingRequest> pending;
    WriteLineFn write_line;
  };
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::vector<WatchedRequest> watched_ EFES_GUARDED_BY(watchdog_mutex_);
  bool watchdog_stop_ EFES_GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;
};

}  // namespace efes

#endif  // EFES_SERVE_SERVER_H_
