#include "efes/serve/protocol.h"

#include <cstdint>
#include <optional>
#include <utility>

#include "efes/common/json_writer.h"
#include "efes/common/string_util.h"

namespace efes {

namespace {

bool IsJsonWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// A hand-rolled scanner for the flat request objects. Deliberately not
/// a general JSON parser: no nesting, no streaming, bounded by the line
/// it is given — small enough to audit against hostile input.
class LineScanner {
 public:
  explicit LineScanner(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && IsJsonWs(text_[pos_])) ++pos_;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Scalar value of one field.
  struct Value {
    enum class Kind { kString, kNumber, kBool, kNull };
    Kind kind = Kind::kNull;
    std::string string_value;
    std::string number_raw;
    bool bool_value = false;
  };

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::ParseError("expected a string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::ParseError("unescaped control byte in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t code_point;
          if (!ParseHex4(&code_point)) {
            return Status::ParseError("bad \\u escape in string");
          }
          // Combine a surrogate pair when one follows; a lone surrogate
          // is malformed input.
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            uint32_t low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Status::ParseError("lone high surrogate in string");
            }
            pos_ += 2;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
              return Status::ParseError("bad low surrogate in string");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Status::ParseError("lone low surrogate in string");
          }
          AppendUtf8(code_point, &out);
          break;
        }
        default:
          return Status::ParseError("unknown escape in string");
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<Value> ParseValue() {
    Value value;
    char head = Peek();
    if (head == '"') {
      EFES_ASSIGN_OR_RETURN(value.string_value, ParseString());
      value.kind = Value::Kind::kString;
      return value;
    }
    if (head == '{' || head == '[') {
      return Status::ParseError(
          "nested values are not supported by the request protocol");
    }
    if (ConsumeLiteral("true")) {
      value.kind = Value::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeLiteral("false")) {
      value.kind = Value::Kind::kBool;
      value.bool_value = false;
      return value;
    }
    if (ConsumeLiteral("null")) {
      value.kind = Value::Kind::kNull;
      return value;
    }
    if (head == '-' || (head >= '0' && head <= '9')) {
      SkipWs();
      size_t start = pos_;
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
            c == 'e' || c == 'E') {
          ++pos_;
        } else {
          break;
        }
      }
      value.number_raw = std::string(text_.substr(start, pos_ - start));
      if (!ParseDouble(value.number_raw).has_value()) {
        return Status::ParseError("malformed number: " + value.number_raw);
      }
      value.kind = Value::Kind::kNumber;
      return value;
    }
    return Status::ParseError("expected a scalar JSON value");
  }

 private:
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    SkipWs();
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

using Value = LineScanner::Value;

Status ExpectString(const std::string& key, const Value& value,
                    std::string* out) {
  if (value.kind == Value::Kind::kNull) return Status::OK();
  if (value.kind != Value::Kind::kString) {
    return Status::InvalidArgument("field \"" + key + "\" must be a string");
  }
  *out = value.string_value;
  return Status::OK();
}

Status ExpectBool(const std::string& key, const Value& value, bool* out) {
  if (value.kind == Value::Kind::kNull) return Status::OK();
  if (value.kind != Value::Kind::kBool) {
    return Status::InvalidArgument("field \"" + key + "\" must be a bool");
  }
  *out = value.bool_value;
  return Status::OK();
}

Status AssignField(ServeRequest* request, const std::string& key,
                   const Value& value) {
  if (key == "id") return ExpectString(key, value, &request->id);
  if (key == "op") return ExpectString(key, value, &request->op);
  if (key == "session") return ExpectString(key, value, &request->session);
  if (key == "dir") return ExpectString(key, value, &request->dir);
  if (key == "quality") return ExpectString(key, value, &request->quality);
  if (key == "modules") return ExpectString(key, value, &request->modules);
  if (key == "format") return ExpectString(key, value, &request->format);
  if (key == "faults") return ExpectString(key, value, &request->faults);
  if (key == "lenient") return ExpectBool(key, value, &request->lenient);
  if (key == "explain") return ExpectBool(key, value, &request->explain);
  if (key == "deadline_ms") {
    if (value.kind == Value::Kind::kNull) return Status::OK();
    if (value.kind != Value::Kind::kNumber) {
      return Status::InvalidArgument(
          "field \"deadline_ms\" must be a number");
    }
    std::optional<int64_t> parsed = ParseInt64(value.number_raw);
    if (!parsed.has_value() || *parsed < 0) {
      return Status::InvalidArgument(
          "field \"deadline_ms\" must be a non-negative integer, got " +
          value.number_raw);
    }
    request->has_deadline = true;
    request->deadline_ms = static_cast<uint64_t>(*parsed);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown request field \"" + key + "\"");
}

Status ValidateRequest(const ServeRequest& request) {
  if (request.id.empty()) {
    return Status::InvalidArgument("request is missing a non-empty \"id\"");
  }
  if (request.op != "open" && request.op != "estimate" &&
      request.op != "assess" && request.op != "close" &&
      request.op != "ping" && request.op != "stats" &&
      request.op != "shutdown") {
    return Status::InvalidArgument(
        request.op.empty() ? "request is missing a non-empty \"op\""
                           : "unknown op \"" + request.op + "\"");
  }
  if (request.quality != "high" && request.quality != "low") {
    return Status::InvalidArgument("field \"quality\" must be high or low");
  }
  if (request.format != "json" && request.format != "text") {
    return Status::InvalidArgument("field \"format\" must be json or text");
  }
  return Status::OK();
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  LineScanner scanner(line);
  if (!scanner.Consume('{')) {
    return Status::ParseError("request must be one JSON object per line");
  }
  ServeRequest request;
  if (!scanner.Consume('}')) {
    for (;;) {
      if (scanner.Peek() != '"') {
        return Status::ParseError("expected a quoted field name");
      }
      EFES_ASSIGN_OR_RETURN(std::string key, scanner.ParseString());
      if (!scanner.Consume(':')) {
        return Status::ParseError("expected ':' after field \"" + key +
                                  "\"");
      }
      EFES_ASSIGN_OR_RETURN(Value value, scanner.ParseValue());
      EFES_RETURN_IF_ERROR(AssignField(&request, key, value));
      if (scanner.Consume(',')) continue;
      if (scanner.Consume('}')) break;
      return Status::ParseError("expected ',' or '}' after field \"" + key +
                                "\"");
    }
  }
  if (!scanner.AtEnd()) {
    return Status::ParseError("trailing bytes after the request object");
  }
  EFES_RETURN_IF_ERROR(ValidateRequest(request));
  return request;
}

std::string RecoverRequestId(std::string_view line) {
  size_t pos = line.find("\"id\"");
  while (pos != std::string_view::npos) {
    LineScanner scanner(line.substr(pos + 4));
    if (scanner.Consume(':') && scanner.Peek() == '"') {
      Result<std::string> id = scanner.ParseString();
      if (id.ok()) return *id;
    }
    pos = line.find("\"id\"", pos + 4);
  }
  return "";
}

std::string SerializeServeResponse(const ServeResponse& response) {
  std::string out = "{\"id\":";
  if (response.id.empty()) {
    out += "null";
  } else {
    out += '"';
    out += JsonWriter::Escape(response.id);
    out += '"';
  }
  out += ",\"ok\":";
  out += response.status.ok() ? "true" : "false";
  if (!response.status.ok()) {
    out += ",\"code\":\"";
    out += StatusCodeToString(response.status.code());
    out += "\",\"error\":\"";
    out += JsonWriter::Escape(response.status.message());
    out += '"';
  }
  out += ",\"degraded\":";
  out += response.degraded ? "true" : "false";
  if (response.retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":";
    out += std::to_string(response.retry_after_ms);
  }
  if (!response.result_json.empty()) {
    out += ",\"result\":";
    out += response.result_json;
  } else if (!response.result_text.empty()) {
    out += ",\"result\":\"";
    out += JsonWriter::Escape(response.result_text);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace efes
