#include "efes/profiling/sketch.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "efes/cache/fingerprint.h"

namespace efes {

namespace {

constexpr double kEpsilon = 1e-12;

/// Build-stable fixed overhead charged against the --max-memory budget
/// (deliberately not sizeof(StatisticsSketch): cached sketch state must
/// re-import under the same budget arithmetic across builds).
constexpr uint64_t kSketchFixedBytes = 256;

bool IsNumericTarget(DataType type) {
  return type == DataType::kInteger || type == DataType::kReal;
}

/// The numeric reading the legacy statistics used: numerics directly,
/// text only when it parses completely; booleans are not numeric.
std::optional<double> NumericOf(const Value& value) {
  if (value.type() == DataType::kInteger ||
      value.type() == DataType::kReal) {
    return value.NumericValue();
  }
  if (value.CanCastTo(DataType::kReal)) {
    Result<Value> cast = value.CastTo(DataType::kReal);
    if (cast.ok()) return cast->AsReal();
  }
  return std::nullopt;
}

/// Budget cost of one tracked map entry: node + key/count overhead plus
/// the owned text bytes. A deterministic model, not malloc truth.
uint64_t EntryCost(const Value& value) {
  uint64_t cost = 64;
  if (value.type() == DataType::kText) cost += value.AsText().size();
  return cost;
}

}  // namespace

std::string_view ApproximationModeToString(ApproximationMode mode) {
  switch (mode) {
    case ApproximationMode::kExact:
      return "exact";
    case ApproximationMode::kSketch:
      return "sketch";
    case ApproximationMode::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<ApproximationMode> ParseApproximationMode(std::string_view text) {
  if (text == "exact") return ApproximationMode::kExact;
  if (text == "sketch") return ApproximationMode::kSketch;
  if (text == "auto") return ApproximationMode::kAuto;
  return Status::InvalidArgument("unknown approximation mode '" +
                                 std::string(text) +
                                 "' (expected exact, sketch, or auto)");
}

uint64_t SketchValueHash(const Value& value) {
  Fingerprinter fp;
  fp.MixValue(value);
  // The FNV digest has weak high-bit avalanche on short inputs (a few
  // multiplies cannot spread a one-byte difference into the top bits),
  // and the sampling rule keys on exactly those bits. A murmur-style
  // finalizer makes every digest bit diffuse; without it, small-integer
  // columns leave almost no survivors at level 1 and the distinct
  // estimate collapses.
  uint64_t h = fp.digest();
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

StatisticsSketch::StatisticsSketch(DataType target_type,
                                   const ProfileOptions& options)
    : target_type_(target_type), mode_(options.mode) {
  if (options.max_memory_bytes != 0) {
    cap_bytes_ = options.max_memory_bytes;
  } else if (mode_ != ApproximationMode::kExact) {
    cap_bytes_ = kDefaultSketchMemoryBytes;
  }
}

Status StatisticsSketch::Absorb(const Value& value) {
  ++total_count_;
  if (value.is_null()) {
    ++null_count_;
    return Status::OK();
  }
  if (!value.CanCastTo(target_type_)) ++uncastable_count_;
  if (IsNumericTarget(target_type_)) {
    if (std::optional<double> num = NumericOf(value)) {
      if (numeric_count_ == 0) {
        numeric_min_ = numeric_max_ = *num;
      } else {
        numeric_min_ = std::min(numeric_min_, *num);
        numeric_max_ = std::max(numeric_max_, *num);
      }
      ++numeric_count_;
    }
  }
  const uint64_t hash = SketchValueHash(value);
  if (!Tracks(hash)) return Status::OK();
  auto [it, inserted] =
      tracked_.try_emplace(value, std::pair<uint64_t, uint64_t>(0, hash));
  ++it->second.first;
  if (inserted) {
    tracked_bytes_ += EntryCost(value);
    return EnforceBudget();
  }
  return Status::OK();
}

Status StatisticsSketch::AbsorbRange(const std::vector<Value>& column,
                                     size_t begin, size_t end) {
  end = std::min(end, column.size());
  for (size_t i = begin; i < end; ++i) {
    EFES_RETURN_IF_ERROR(Absorb(column[i]));
  }
  return Status::OK();
}

Status StatisticsSketch::Merge(const StatisticsSketch& other) {
  if (other.target_type_ != target_type_ || other.mode_ != mode_ ||
      other.cap_bytes_ != cap_bytes_) {
    return Status::InvalidArgument(
        "cannot merge statistic sketches with different target types or "
        "profile options");
  }
  total_count_ += other.total_count_;
  null_count_ += other.null_count_;
  uncastable_count_ += other.uncastable_count_;
  if (other.numeric_count_ > 0) {
    if (numeric_count_ == 0) {
      numeric_min_ = other.numeric_min_;
      numeric_max_ = other.numeric_max_;
    } else {
      numeric_min_ = std::min(numeric_min_, other.numeric_min_);
      numeric_max_ = std::max(numeric_max_, other.numeric_max_);
    }
    numeric_count_ += other.numeric_count_;
  }
  if (other.level_ > level_) {
    // Adopt the coarser threshold, dropping our now-untracked values.
    level_ = other.level_;
    for (auto it = tracked_.begin(); it != tracked_.end();) {
      if (Tracks(it->second.second)) {
        ++it;
      } else {
        tracked_bytes_ -= EntryCost(it->first);
        it = tracked_.erase(it);
      }
    }
  }
  for (const auto& [value, entry] : other.tracked_) {
    if (!Tracks(entry.second)) continue;
    auto [it, inserted] = tracked_.try_emplace(
        value, std::pair<uint64_t, uint64_t>(0, entry.second));
    it->second.first += entry.first;
    if (inserted) tracked_bytes_ += EntryCost(value);
  }
  return EnforceBudget();
}

Status StatisticsSketch::EnforceBudget() {
  while (cap_bytes_ != 0 &&
         kSketchFixedBytes + tracked_bytes_ > cap_bytes_) {
    if (mode_ == ApproximationMode::kExact || level_ >= 63) {
      std::ostringstream oss;
      oss << "profiling an attribute exactly needs "
          << (kSketchFixedBytes + tracked_bytes_)
          << " bytes but the --max-memory budget is " << cap_bytes_
          << " bytes per sketch";
      if (mode_ == ApproximationMode::kExact) {
        oss << "; rerun with --approx=sketch or --approx=auto";
      }
      return Status::ResourceExhausted(oss.str());
    }
    ++level_;
    for (auto it = tracked_.begin(); it != tracked_.end();) {
      if (Tracks(it->second.second)) {
        ++it;
      } else {
        tracked_bytes_ -= EntryCost(it->first);
        it = tracked_.erase(it);
      }
    }
  }
  return Status::OK();
}

size_t StatisticsSketch::MemoryBytes() const {
  return static_cast<size_t>(kSketchFixedBytes + tracked_bytes_);
}

ApproximationMode StatisticsSketch::effective_mode() const {
  return level_ == 0 ? ApproximationMode::kExact : ApproximationMode::kSketch;
}

AttributeStatistics StatisticsSketch::Finalize() const {
  AttributeStatistics stats;
  stats.evaluated_against = target_type_;

  // --- Fill status: exact counters in every mode. -------------------------
  stats.fill_status.total_count = static_cast<size_t>(total_count_);
  stats.fill_status.null_count = static_cast<size_t>(null_count_);
  stats.fill_status.uncastable_count = static_cast<size_t>(uncastable_count_);
  const uint64_t non_null = total_count_ - null_count_;

  // Canonical iteration order: sorted by value, regardless of how the
  // unordered tracking map hashed. This is what makes Finalize a pure
  // function of the sketch state.
  std::vector<std::pair<const Value*, uint64_t>> sorted;
  sorted.reserve(tracked_.size());
  uint64_t sample_total = 0;
  for (const auto& [value, entry] : tracked_) {
    sorted.emplace_back(&value, entry.first);
    sample_total += entry.first;
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });

  // Inverse sampling rate: each distinct value is tracked with
  // probability 2^-level, with an exact count when it is.
  const double scale = std::ldexp(1.0, static_cast<int>(level_));
  uint64_t distinct_estimate = tracked_.size();
  for (uint32_t l = 0; l < level_; ++l) {
    if (distinct_estimate > (UINT64_MAX >> 1)) break;
    distinct_estimate <<= 1;
  }

  // --- Constancy (inverse normalized entropy). ----------------------------
  stats.constancy.non_null_count = static_cast<size_t>(non_null);
  stats.constancy.distinct_count = static_cast<size_t>(distinct_estimate);
  if (non_null > 0 && distinct_estimate > 1) {
    double entropy = 0.0;
    for (const auto& [value, count] : sorted) {
      double p = static_cast<double>(count) / static_cast<double>(non_null);
      entropy -= p * std::log2(p);
    }
    entropy *= scale;
    double max_entropy = std::log2(static_cast<double>(non_null));
    stats.constancy.constancy =
        max_entropy < kEpsilon ? 1.0
                               : std::max(0.0, 1.0 - entropy / max_entropy);
  } else {
    stats.constancy.constancy = 1.0;  // empty or single-valued
  }

  // --- Top-k: tracked counts are exact global frequencies. ----------------
  {
    std::vector<std::pair<Value, double>> ranked;
    ranked.reserve(sorted.size());
    for (const auto& [value, count] : sorted) {
      ranked.emplace_back(*value,
                          non_null == 0 ? 0.0
                                        : static_cast<double>(count) /
                                              static_cast<double>(non_null));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;  // deterministic tie-break
              });
    if (ranked.size() > TopKStats::kK) ranked.resize(TopKStats::kK);
    stats.top_k.top_values = std::move(ranked);
    stats.top_k.coverage = 0.0;
    for (const auto& [value, freq] : stats.top_k.top_values) {
      stats.top_k.coverage += freq;
    }
  }

  // --- String-directed statistics (ratio estimates over the sample;
  // exact at level 0 where the sample is the whole column). ----------------
  if (target_type_ == DataType::kText) {
    std::map<std::string, uint64_t> pattern_counts;
    // Flat 256-slot histogram instead of a tree map in the hot loop:
    // branch-free, cache-resident, and iterated over *distinct* values
    // only — duplicates cost one integer add, not a re-scan.
    std::array<uint64_t, 256> char_counts{};
    uint64_t total_chars = 0;
    double length_sum = 0.0;
    for (const auto& [value, count] : sorted) {
      std::string text = value->ToString();
      pattern_counts[GeneralizeToPattern(text)] += count;
      for (unsigned char c : text) char_counts[c] += count;
      total_chars += count * text.size();
      length_sum += static_cast<double>(count) *
                    static_cast<double>(text.size());
    }

    const double denom = static_cast<double>(sample_total);
    TextPatternStats pattern_stats;
    for (const auto& [pattern, count] : pattern_counts) {
      pattern_stats.patterns.emplace_back(
          pattern,
          sample_total == 0 ? 0.0 : static_cast<double>(count) / denom);
    }
    std::sort(pattern_stats.patterns.begin(), pattern_stats.patterns.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (pattern_stats.patterns.size() > TextPatternStats::kMaxPatterns) {
      pattern_stats.patterns.resize(TextPatternStats::kMaxPatterns);
    }
    stats.text_pattern = std::move(pattern_stats);

    CharHistogramStats char_stats;
    for (size_t i = 0; i < char_counts.size(); ++i) {
      if (char_counts[i] == 0) continue;
      char_stats.frequencies[static_cast<char>(i)] =
          total_chars == 0 ? 0.0
                           : static_cast<double>(char_counts[i]) /
                                 static_cast<double>(total_chars);
    }
    stats.char_histogram = std::move(char_stats);

    double mean = sample_total == 0 ? 0.0 : length_sum / denom;
    double variance = 0.0;
    for (const auto& [value, count] : sorted) {
      double d = static_cast<double>(value->ToString().size()) - mean;
      variance += static_cast<double>(count) * d * d;
    }
    if (sample_total > 0) variance /= denom;
    stats.string_length = StringLengthStats{mean, std::sqrt(variance)};
  }

  // --- Numeric statistics: exact min/max scalars; moments and buckets
  // from the (exact-at-level-0) sample. ------------------------------------
  if (IsNumericTarget(target_type_) && numeric_count_ > 0) {
    std::vector<std::pair<double, uint64_t>> numbers;
    numbers.reserve(sorted.size());
    uint64_t sample_numeric = 0;
    for (const auto& [value, count] : sorted) {
      if (std::optional<double> num = NumericOf(*value)) {
        numbers.emplace_back(*num, count);
        sample_numeric += count;
      }
    }
    const double denom = static_cast<double>(sample_numeric);
    double mean = 0.0;
    for (const auto& [v, count] : numbers) {
      mean += static_cast<double>(count) * v;
    }
    if (sample_numeric > 0) mean /= denom;
    double variance = 0.0;
    for (const auto& [v, count] : numbers) {
      variance += static_cast<double>(count) * (v - mean) * (v - mean);
    }
    if (sample_numeric > 0) variance /= denom;
    stats.mean = MeanStats{mean, std::sqrt(variance)};

    stats.value_range = ValueRangeStats{numeric_min_, numeric_max_};

    HistogramStats histogram;
    histogram.min = numeric_min_;
    histogram.max = numeric_max_;
    histogram.bucket_fractions.assign(HistogramStats::kBucketCount, 0.0);
    double width = (numeric_max_ - numeric_min_) / HistogramStats::kBucketCount;
    for (const auto& [v, count] : numbers) {
      size_t bucket =
          width < kEpsilon
              ? 0
              : std::min(HistogramStats::kBucketCount - 1,
                         static_cast<size_t>((v - numeric_min_) / width));
      if (sample_numeric > 0) {
        histogram.bucket_fractions[bucket] +=
            static_cast<double>(count) / denom;
      }
    }
    stats.histogram = std::move(histogram);
  }

  return stats;
}

SketchState StatisticsSketch::ExportState() const {
  SketchState state;
  state.target_type = target_type_;
  state.mode = mode_;
  state.cap_bytes = cap_bytes_;
  state.level = level_;
  state.total_count = total_count_;
  state.null_count = null_count_;
  state.uncastable_count = uncastable_count_;
  state.numeric_count = numeric_count_;
  state.numeric_min = numeric_min_;
  state.numeric_max = numeric_max_;
  state.entries.reserve(tracked_.size());
  for (const auto& [value, entry] : tracked_) {
    state.entries.emplace_back(value, entry.first);
  }
  std::sort(state.entries.begin(), state.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return state;
}

Result<StatisticsSketch> StatisticsSketch::FromState(
    const SketchState& state) {
  if (state.mode != ApproximationMode::kExact &&
      state.mode != ApproximationMode::kSketch &&
      state.mode != ApproximationMode::kAuto) {
    return Status::InvalidArgument("sketch state has an unknown mode");
  }
  if (state.level > 63) {
    return Status::InvalidArgument("sketch state has an impossible level");
  }
  StatisticsSketch sketch;
  sketch.target_type_ = state.target_type;
  sketch.mode_ = state.mode;
  sketch.cap_bytes_ = state.cap_bytes;
  sketch.level_ = state.level;
  sketch.total_count_ = state.total_count;
  sketch.null_count_ = state.null_count;
  sketch.uncastable_count_ = state.uncastable_count;
  sketch.numeric_count_ = state.numeric_count;
  sketch.numeric_min_ = state.numeric_min;
  sketch.numeric_max_ = state.numeric_max;
  uint64_t non_null = 0;
  for (const auto& [value, count] : state.entries) {
    if (count == 0 || value.is_null()) {
      return Status::InvalidArgument("sketch state entry is degenerate");
    }
    const uint64_t hash = SketchValueHash(value);
    if (!sketch.Tracks(hash)) {
      return Status::InvalidArgument(
          "sketch state entry violates its sampling threshold");
    }
    auto [it, inserted] = sketch.tracked_.try_emplace(
        value, std::pair<uint64_t, uint64_t>(count, hash));
    if (!inserted) {
      return Status::InvalidArgument("sketch state has duplicate entries");
    }
    sketch.tracked_bytes_ += EntryCost(value);
    non_null += count;
  }
  if (non_null > state.total_count - state.null_count ||
      state.null_count > state.total_count) {
    return Status::InvalidArgument("sketch state counters are inconsistent");
  }
  if (sketch.cap_bytes_ != 0 &&
      kSketchFixedBytes + sketch.tracked_bytes_ > sketch.cap_bytes_) {
    return Status::InvalidArgument("sketch state exceeds its own budget");
  }
  return sketch;
}

void ValueBloom::InsertHash(uint64_t hash) {
  // Three probes from independent 12-bit slices of the 64-bit hash.
  for (int probe = 0; probe < 3; ++probe) {
    uint64_t bit = (hash >> (probe * 12)) & 4095;
    bits_[bit >> 6] |= (1ull << (bit & 63));
  }
}

bool ValueBloom::MightContain(const Value& value) const {
  const uint64_t hash = SketchValueHash(value);
  for (int probe = 0; probe < 3; ++probe) {
    uint64_t bit = (hash >> (probe * 12)) & 4095;
    if ((bits_[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

bool ValueBloom::SubsetOf(const ValueBloom& other) const {
  for (size_t i = 0; i < kWords; ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

void ValueBloom::MergeFrom(const ValueBloom& other) {
  for (size_t i = 0; i < kWords; ++i) bits_[i] |= other.bits_[i];
}

}  // namespace efes
