#include "efes/profiling/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "efes/common/string_util.h"
#include "efes/profiling/profiler.h"

namespace efes {

namespace {

constexpr double kEpsilon = 1e-12;

/// Intersection of two discrete distributions given as sorted
/// (key, frequency) vectors: sum of min frequencies per shared key.
template <typename Key>
double HistogramIntersection(
    const std::vector<std::pair<Key, double>>& a,
    const std::vector<std::pair<Key, double>>& b) {
  double intersection = 0.0;
  for (const auto& [key_a, freq_a] : a) {
    for (const auto& [key_b, freq_b] : b) {
      if (key_a == key_b) {
        intersection += std::min(freq_a, freq_b);
        break;
      }
    }
  }
  return intersection;
}

/// Concentration (Herfindahl index) of a distribution: sum of squared
/// frequencies. 1 = single value; ->0 = very diverse. Used as the
/// importance of pattern/top-k style statistics.
double Concentration(const std::vector<std::pair<std::string, double>>& dist) {
  double h = 0.0;
  for (const auto& [key, freq] : dist) h += freq * freq;
  return h;
}

/// Similarity of two (mean, stddev) summaries: the product of a location
/// term and a spread term, both in (0, 1].
double MomentsFit(double mean_s, double stddev_s, double mean_t,
                  double stddev_t) {
  double scale = std::max({std::abs(mean_t), stddev_t, 1.0});
  double location = std::exp(-std::abs(mean_s - mean_t) / scale);
  double spread_hi = std::max(stddev_s, stddev_t);
  double spread =
      spread_hi < kEpsilon ? 1.0 : std::min(stddev_s, stddev_t) / spread_hi;
  // Give the location term most of the weight; spread refines it.
  return location * (0.5 + 0.5 * spread);
}

bool IsNumericTarget(DataType type) {
  return type == DataType::kInteger || type == DataType::kReal;
}

}  // namespace

std::string_view StatisticTypeToString(StatisticType type) {
  switch (type) {
    case StatisticType::kFillStatus:
      return "fill status";
    case StatisticType::kConstancy:
      return "constancy";
    case StatisticType::kTextPattern:
      return "text pattern";
    case StatisticType::kCharHistogram:
      return "character histogram";
    case StatisticType::kStringLength:
      return "string length";
    case StatisticType::kMean:
      return "mean";
    case StatisticType::kHistogram:
      return "histogram";
    case StatisticType::kValueRange:
      return "value range";
    case StatisticType::kTopK:
      return "top-k values";
  }
  return "unknown";
}

double FillStatusStats::FillFraction() const {
  if (total_count == 0) return 1.0;
  return static_cast<double>(total_count - null_count - uncastable_count) /
         static_cast<double>(total_count);
}

double FillStatusStats::NonNullFraction() const {
  if (total_count == 0) return 1.0;
  return static_cast<double>(total_count - null_count) /
         static_cast<double>(total_count);
}

double FillStatusStats::CastableFraction() const {
  size_t non_null = total_count - null_count;
  if (non_null == 0) return 1.0;
  return static_cast<double>(non_null - uncastable_count) /
         static_cast<double>(non_null);
}

namespace {

/// 256-entry character-class table (digit -> '9', letter -> 'a',
/// whitespace -> ' ', everything else verbatim, matching the C locale).
/// A flat lookup keeps the per-byte classing loop branch-free — the
/// profiling hot path runs this over every tracked value.
struct PatternClassTable {
  constexpr PatternClassTable() : cls() {
    for (int i = 0; i < 256; ++i) {
      const char c = static_cast<char>(i);
      if (c >= '0' && c <= '9') {
        cls[i] = '9';
      } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
        cls[i] = 'a';
      } else if (c == ' ' || c == '\t' || c == '\n' || c == '\v' ||
                 c == '\f' || c == '\r') {
        cls[i] = ' ';
      } else {
        cls[i] = c;
      }
    }
  }
  char cls[256];
};

constexpr PatternClassTable kPatternClasses;

}  // namespace

std::string GeneralizeToPattern(std::string_view text) {
  std::string pattern;
  char last_class = '\0';
  for (char c : text) {
    const char cls = kPatternClasses.cls[static_cast<unsigned char>(c)];
    // Collapse runs of the same digit/letter/space class; punctuation is
    // kept verbatim and not collapsed so "1998-01-02" -> "9-9-9".
    if (cls == '9' || cls == 'a' || cls == ' ') {
      if (cls == last_class) continue;
    }
    pattern.push_back(cls);
    last_class = cls;
  }
  return pattern;
}

namespace {

/// The legacy one-shot semantics: exact, unchunked, unbudgeted. An
/// exact profile without a --max-memory budget cannot fail, which is
/// what lets the deprecated wrappers keep their non-Result signatures.
ProfileOptions LegacyWholeColumnOptions() {
  ProfileOptions options;
  options.chunk_rows = 0;  // the whole column as one chunk
  options.max_memory_bytes = 0;
  options.mode = ApproximationMode::kExact;
  return options;
}

}  // namespace

AttributeStatistics ComputeStatistics(const std::vector<Value>& column,
                                      DataType target_type) {
  Result<AttributeStatistics> stats =
      ProfileColumn(column, target_type, LegacyWholeColumnOptions());
  if (!stats.ok()) return AttributeStatistics{};  // unreachable: cannot fail
  return *std::move(stats);
}

Result<std::vector<AttributeStatistics>> ComputeStatisticsBatch(
    const std::vector<ColumnStatisticsRequest>& requests) {
  std::vector<ProfileRequest> profile_requests;
  profile_requests.reserve(requests.size());
  for (const ColumnStatisticsRequest& request : requests) {
    profile_requests.push_back(
        ProfileRequest{request.column, request.target_type});
  }
  return ProfileColumns(profile_requests, LegacyWholeColumnOptions());
}

std::vector<StatisticType> ApplicableStatistics(DataType target_type) {
  if (target_type == DataType::kText) {
    return {StatisticType::kTextPattern, StatisticType::kCharHistogram,
            StatisticType::kStringLength, StatisticType::kTopK};
  }
  if (IsNumericTarget(target_type)) {
    return {StatisticType::kMean, StatisticType::kHistogram,
            StatisticType::kValueRange, StatisticType::kTopK};
  }
  // Boolean targets: value distribution is all there is.
  return {StatisticType::kTopK};
}

double ImportanceScore(StatisticType type,
                       const AttributeStatistics& target) {
  switch (type) {
    case StatisticType::kTextPattern: {
      // All values sharing one pattern => highly characteristic.
      if (!target.text_pattern.has_value() ||
          target.text_pattern->patterns.empty()) {
        return 0.0;
      }
      return Concentration(target.text_pattern->patterns);
    }
    case StatisticType::kCharHistogram: {
      if (!target.char_histogram.has_value() ||
          target.char_histogram->frequencies.empty()) {
        return 0.0;
      }
      // Concentrated alphabets (few characters dominate) are
      // characteristic; diffuse free text is not.
      double h = 0.0;
      for (const auto& [c, freq] : target.char_histogram->frequencies) {
        h += freq * freq;
      }
      // Scale: natural English text has h around 0.06; formatted codes
      // much higher. Map through sqrt to spread the range.
      return std::min(1.0, std::sqrt(h * 4.0));
    }
    case StatisticType::kStringLength: {
      if (!target.string_length.has_value()) return 0.0;
      double mean = target.string_length->mean;
      double cv = mean < kEpsilon
                      ? 0.0
                      : target.string_length->stddev / mean;
      return 1.0 / (1.0 + cv);  // tight lengths => important
    }
    case StatisticType::kMean: {
      if (!target.mean.has_value()) return 0.0;
      double mean = std::abs(target.mean->mean);
      double cv = mean < kEpsilon ? 1.0 : target.mean->stddev / mean;
      return 1.0 / (1.0 + cv);
    }
    case StatisticType::kHistogram:
      return target.histogram.has_value() ? 0.5 : 0.0;
    case StatisticType::kValueRange:
      return target.value_range.has_value() ? 0.5 : 0.0;
    case StatisticType::kTopK: {
      // High coverage by few values => discrete domain => important.
      // Squaring suppresses the noisy tail: for high-cardinality
      // attributes the specific top-k values of two samples from the same
      // population differ by chance, so they must not characterize it.
      if (target.top_k.top_values.empty()) return 0.0;
      return target.top_k.coverage * target.top_k.coverage;
    }
    case StatisticType::kFillStatus:
    case StatisticType::kConstancy:
      // Consulted directly by the decision rules, not via weighting.
      return 0.0;
  }
  return 0.0;
}

double FitValue(StatisticType type, const AttributeStatistics& source,
                const AttributeStatistics& target) {
  switch (type) {
    case StatisticType::kTextPattern: {
      if (!source.text_pattern.has_value() ||
          !target.text_pattern.has_value()) {
        return 1.0;
      }
      return HistogramIntersection(source.text_pattern->patterns,
                                   target.text_pattern->patterns);
    }
    case StatisticType::kCharHistogram: {
      if (!source.char_histogram.has_value() ||
          !target.char_histogram.has_value()) {
        return 1.0;
      }
      double intersection = 0.0;
      for (const auto& [c, freq_s] : source.char_histogram->frequencies) {
        auto it = target.char_histogram->frequencies.find(c);
        if (it != target.char_histogram->frequencies.end()) {
          intersection += std::min(freq_s, it->second);
        }
      }
      return intersection;
    }
    case StatisticType::kStringLength: {
      if (!source.string_length.has_value() ||
          !target.string_length.has_value()) {
        return 1.0;
      }
      return MomentsFit(source.string_length->mean,
                        source.string_length->stddev,
                        target.string_length->mean,
                        target.string_length->stddev);
    }
    case StatisticType::kMean: {
      if (!source.mean.has_value() || !target.mean.has_value()) return 1.0;
      return MomentsFit(source.mean->mean, source.mean->stddev,
                        target.mean->mean, target.mean->stddev);
    }
    case StatisticType::kHistogram: {
      if (!source.histogram.has_value() || !target.histogram.has_value()) {
        return 1.0;
      }
      // Compare bucket distributions over the union range by resampling
      // both histograms onto that range.
      const HistogramStats& hs = *source.histogram;
      const HistogramStats& ht = *target.histogram;
      double lo = std::min(hs.min, ht.min);
      double hi = std::max(hs.max, ht.max);
      if (hi - lo < kEpsilon) return 1.0;
      auto resample = [&](const HistogramStats& h) {
        std::vector<double> out(HistogramStats::kBucketCount, 0.0);
        double width = (h.max - h.min) / HistogramStats::kBucketCount;
        for (size_t b = 0; b < h.bucket_fractions.size(); ++b) {
          double center = width < kEpsilon
                              ? h.min
                              : h.min + width * (static_cast<double>(b) + 0.5);
          size_t target_bucket = std::min(
              HistogramStats::kBucketCount - 1,
              static_cast<size_t>((center - lo) / (hi - lo) *
                                  HistogramStats::kBucketCount));
          out[target_bucket] += h.bucket_fractions[b];
        }
        return out;
      };
      std::vector<double> a = resample(hs);
      std::vector<double> b = resample(ht);
      double intersection = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        intersection += std::min(a[i], b[i]);
      }
      // Finite-sample correction: two samples of the *same* population
      // miss each other by O(sqrt(buckets / n)) of intersection mass, so
      // small samples must not be penalized for that inevitable noise.
      size_t n = std::min(source.constancy.non_null_count,
                          target.constancy.non_null_count);
      if (n > 0) {
        intersection += 0.5 * std::sqrt(static_cast<double>(
                                            HistogramStats::kBucketCount) /
                                        static_cast<double>(n));
      }
      return std::min(1.0, intersection);
    }
    case StatisticType::kValueRange: {
      if (!source.value_range.has_value() ||
          !target.value_range.has_value()) {
        return 1.0;
      }
      const ValueRangeStats& rs = *source.value_range;
      const ValueRangeStats& rt = *target.value_range;
      double span_s = rs.max - rs.min;
      if (span_s < kEpsilon) {
        // Point range: fits iff inside (a tolerance of the target span).
        double tolerance = std::max(rt.max - rt.min, 1.0) * 0.5;
        return (rs.min >= rt.min - tolerance && rs.max <= rt.max + tolerance)
                   ? 1.0
                   : 0.0;
      }
      double overlap = std::min(rs.max, rt.max) - std::max(rs.min, rt.min);
      return std::max(0.0, overlap) / span_s;
    }
    case StatisticType::kTopK: {
      if (source.top_k.top_values.empty() ||
          target.top_k.top_values.empty()) {
        return 1.0;
      }
      // How much of the source's frequency mass is explained by the
      // target's frequent values?
      double explained = 0.0;
      for (const auto& [value_s, freq_s] : source.top_k.top_values) {
        for (const auto& [value_t, freq_t] : target.top_k.top_values) {
          if (value_s == value_t) {
            explained += freq_s;
            break;
          }
        }
      }
      double denominator = source.top_k.coverage;
      return denominator < kEpsilon ? 1.0
                                    : std::min(1.0, explained / denominator);
    }
    case StatisticType::kFillStatus:
    case StatisticType::kConstancy:
      return 1.0;
  }
  return 1.0;
}

double OverallFit(const AttributeStatistics& source,
                  const AttributeStatistics& target) {
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (StatisticType type : ApplicableStatistics(target.evaluated_against)) {
    double importance = ImportanceScore(type, target);
    if (importance < kEpsilon) continue;
    weighted += importance * FitValue(type, source, target);
    weight_sum += importance;
  }
  if (weight_sum < kEpsilon) return 1.0;
  double fit = weighted / weight_sum;
  // Small-sample confidence shrinkage towards 1: with few values, two
  // samples of the *same* population produce noisy statistics whose fit
  // falls short of 1 by O(1/sqrt(n)). Without this, tiny identical
  // attributes get flagged as heterogeneous; with it, genuinely different
  // representations (fit far below the threshold) are still caught.
  size_t n = std::min(source.constancy.non_null_count,
                      target.constancy.non_null_count);
  if (n > 0) {
    double shrink = std::min(1.0, 3.0 / std::sqrt(static_cast<double>(n)));
    fit += (1.0 - fit) * shrink;
  }
  return fit;
}

std::string AttributeStatistics::ToString() const {
  std::ostringstream oss;
  oss << "statistics (vs " << DataTypeToString(evaluated_against) << ")\n";
  oss << "  fill: " << fill_status.total_count << " rows, "
      << fill_status.null_count << " null, " << fill_status.uncastable_count
      << " uncastable (fill " << FormatDouble(fill_status.FillFraction(), 4)
      << ")\n";
  oss << "  constancy: " << FormatDouble(constancy.constancy, 4) << " ("
      << constancy.distinct_count << " distinct / "
      << constancy.non_null_count << " values)\n";
  if (text_pattern.has_value() && !text_pattern->patterns.empty()) {
    oss << "  patterns:";
    size_t shown = 0;
    for (const auto& [pattern, freq] : text_pattern->patterns) {
      if (shown++ == 3) break;
      oss << " [" << pattern << "] " << FormatDouble(freq, 3);
    }
    oss << "\n";
  }
  if (string_length.has_value()) {
    oss << "  string length: mean " << FormatDouble(string_length->mean, 4)
        << " stddev " << FormatDouble(string_length->stddev, 4) << "\n";
  }
  if (mean.has_value()) {
    oss << "  mean: " << FormatDouble(mean->mean, 6) << " stddev "
        << FormatDouble(mean->stddev, 6) << "\n";
  }
  if (value_range.has_value()) {
    oss << "  range: [" << FormatDouble(value_range->min, 6) << ", "
        << FormatDouble(value_range->max, 6) << "]\n";
  }
  if (!top_k.top_values.empty()) {
    oss << "  top values (coverage " << FormatDouble(top_k.coverage, 3)
        << "):";
    size_t shown = 0;
    for (const auto& [value, freq] : top_k.top_values) {
      if (shown++ == 3) break;
      oss << " " << value.ToString() << " (" << FormatDouble(freq, 3) << ")";
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace efes
