#include "efes/profiling/constraint_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <sstream>
#include <unordered_set>

#include "efes/telemetry/metrics.h"
#include "efes/telemetry/trace.h"

namespace efes {

namespace {

bool IsDeclared(const Schema& schema, const Constraint& candidate) {
  for (const Constraint& declared : schema.constraints()) {
    if (declared.kind == candidate.kind &&
        declared.relation == candidate.relation &&
        declared.attributes == candidate.attributes &&
        declared.referenced_relation == candidate.referenced_relation &&
        declared.referenced_attributes == candidate.referenced_attributes) {
      return true;
    }
    // A declared PK subsumes discovered NOT NULL / UNIQUE over the same
    // attribute set.
    if (declared.kind == ConstraintKind::kPrimaryKey &&
        declared.relation == candidate.relation) {
      if (candidate.kind == ConstraintKind::kUnique &&
          declared.attributes == candidate.attributes) {
        return true;
      }
      if (candidate.kind == ConstraintKind::kNotNull &&
          candidate.attributes.size() == 1 &&
          std::find(declared.attributes.begin(), declared.attributes.end(),
                    candidate.attributes[0]) != declared.attributes.end()) {
        return true;
      }
    }
  }
  return false;
}

/// Set of distinct non-null values of a column, for inclusion testing.
std::unordered_set<Value, ValueHash> DistinctSet(const Table& table,
                                                 size_t column) {
  std::unordered_set<Value, ValueHash> values;
  for (const Value& v : table.column(column)) {
    if (!v.is_null()) values.insert(v);
  }
  return values;
}

}  // namespace

std::string DiscoveredConstraint::ToString() const {
  std::ostringstream oss;
  oss << constraint.ToString() << " (support " << support << ")";
  return oss.str();
}

std::vector<DiscoveredConstraint> DiscoverConstraints(
    const Database& database, const DiscoveryOptions& options) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& discover_ms =
      metrics.GetHistogram("profiling.discovery.ms");
  static Counter& candidates =
      metrics.GetCounter("profiling.discovery.candidates");
  static Counter& validated =
      metrics.GetCounter("profiling.discovery.validated");
  static Counter& ind_checks =
      metrics.GetCounter("profiling.discovery.ind_checks");
  TraceSpan span("profiling.discover", nullptr, &discover_ms);

  std::vector<DiscoveredConstraint> discovered;
  const Schema& schema = database.schema();

  auto propose = [&](Constraint constraint, size_t support) {
    candidates.Increment();
    if (options.skip_declared && IsDeclared(schema, constraint)) return;
    validated.Increment();
    discovered.push_back(DiscoveredConstraint{std::move(constraint), support});
  };

  // --- NOT NULL and single-column UNIQUE ----------------------------------
  for (const Table& table : database.tables()) {
    if (table.row_count() < options.min_row_count) continue;
    for (size_t c = 0; c < table.column_count(); ++c) {
      const std::string& attribute = table.def().attributes()[c].name;
      size_t nulls = table.NullCount(c);
      if (nulls == 0) {
        propose(Constraint::NotNull(table.name(), attribute),
                table.row_count());
      }
      size_t distinct = table.DistinctCount(c);
      if (nulls == 0 && distinct == table.row_count()) {
        propose(Constraint::Unique(table.name(), {attribute}),
                table.row_count());
      }
    }
  }

  // --- Unary functional dependencies A -> B --------------------------------
  if (options.discover_functional_dependencies) {
    for (const Table& table : database.tables()) {
      if (table.row_count() < options.min_row_count) continue;
      for (size_t lhs = 0; lhs < table.column_count(); ++lhs) {
        size_t lhs_distinct = table.DistinctCount(lhs);
        if (lhs_distinct < options.min_distinct_for_fd) continue;
        // A unique LHS determines everything trivially; skip.
        if (table.NullCount(lhs) == 0 && lhs_distinct == table.row_count()) {
          continue;
        }
        for (size_t rhs = 0; rhs < table.column_count(); ++rhs) {
          if (lhs == rhs) continue;
          // Check A -> B exactly: every A-group has one distinct B.
          std::unordered_map<Value, Value, ValueHash> dependent_of;
          bool holds = true;
          for (size_t r = 0; r < table.row_count(); ++r) {
            const Value& determinant = table.at(r, lhs);
            if (determinant.is_null()) continue;
            const Value& dependent = table.at(r, rhs);
            auto [it, inserted] =
                dependent_of.emplace(determinant, dependent);
            if (!inserted && !(it->second == dependent)) {
              holds = false;
              break;
            }
          }
          if (holds) {
            propose(Constraint::FunctionalDependency(
                        table.name(), {table.def().attributes()[lhs].name},
                        {table.def().attributes()[rhs].name}),
                    table.row_count());
          }
        }
      }
    }
  }

  // --- Unary inclusion dependencies (FK candidates) -----------------------
  for (const Table& child : database.tables()) {
    if (child.row_count() < options.min_row_count) continue;
    for (size_t cc = 0; cc < child.column_count(); ++cc) {
      size_t child_distinct = child.DistinctCount(cc);
      if (child_distinct < options.min_distinct_for_ind) continue;
      std::unordered_set<Value, ValueHash> child_values =
          DistinctSet(child, cc);

      for (const Table& parent : database.tables()) {
        if (parent.row_count() < options.min_row_count) continue;
        for (size_t pc = 0; pc < parent.column_count(); ++pc) {
          if (&parent == &child && pc == cc) continue;
          if (parent.def().attributes()[pc].type !=
              child.def().attributes()[cc].type) {
            continue;
          }
          if (options.require_unique_referenced) {
            bool unique = parent.NullCount(pc) == 0 &&
                          parent.DistinctCount(pc) == parent.row_count();
            if (!unique) continue;
          }
          std::unordered_set<Value, ValueHash> parent_values =
              DistinctSet(parent, pc);
          if (parent_values.size() < child_values.size()) continue;
          ind_checks.Increment();
          bool included = std::all_of(
              child_values.begin(), child_values.end(),
              [&](const Value& v) { return parent_values.count(v) > 0; });
          if (included) {
            propose(Constraint::ForeignKey(
                        child.name(),
                        {child.def().attributes()[cc].name},
                        parent.name(),
                        {parent.def().attributes()[pc].name}),
                    child.row_count());
          }
        }
      }
    }
  }

  return discovered;
}

Schema SchemaWithDiscoveredConstraints(const Database& database,
                                       const DiscoveryOptions& options) {
  Schema schema = database.schema();
  for (DiscoveredConstraint& d : DiscoverConstraints(database, options)) {
    schema.AddConstraint(std::move(d.constraint));
  }
  return schema;
}

Result<Database> DatabaseWithDiscoveredConstraints(
    const Database& database, const DiscoveryOptions& options) {
  EFES_ASSIGN_OR_RETURN(
      Database completed,
      Database::Create(SchemaWithDiscoveredConstraints(database, options)));
  for (const Table& table : database.tables()) {
    EFES_ASSIGN_OR_RETURN(Table * destination,
                          completed.mutable_table(table.name()));
    for (size_t r = 0; r < table.row_count(); ++r) {
      EFES_RETURN_IF_ERROR(destination->AppendRow(table.Row(r)));
    }
  }
  return completed;
}

}  // namespace efes
