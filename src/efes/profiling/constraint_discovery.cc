#include "efes/profiling/constraint_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <sstream>
#include <unordered_set>

#include "efes/cache/fingerprint.h"
#include "efes/cache/profile_cache.h"
#include "efes/common/parallel.h"
#include "efes/common/metrics.h"
#include "efes/profiling/sketch.h"
#include "efes/telemetry/trace.h"

namespace efes {

namespace {

bool IsDeclared(const Schema& schema, const Constraint& candidate) {
  for (const Constraint& declared : schema.constraints()) {
    if (declared.kind == candidate.kind &&
        declared.relation == candidate.relation &&
        declared.attributes == candidate.attributes &&
        declared.referenced_relation == candidate.referenced_relation &&
        declared.referenced_attributes == candidate.referenced_attributes) {
      return true;
    }
    // A declared PK subsumes discovered NOT NULL / UNIQUE over the same
    // attribute set.
    if (declared.kind == ConstraintKind::kPrimaryKey &&
        declared.relation == candidate.relation) {
      if (candidate.kind == ConstraintKind::kUnique &&
          declared.attributes == candidate.attributes) {
        return true;
      }
      if (candidate.kind == ConstraintKind::kNotNull &&
          candidate.attributes.size() == 1 &&
          std::find(declared.attributes.begin(), declared.attributes.end(),
                    candidate.attributes[0]) != declared.attributes.end()) {
        return true;
      }
    }
  }
  return false;
}

/// Null count, the distinct non-null values, and a bloom filter over
/// their content hashes, computed once up front (the legacy code
/// recomputed the distinct set for every candidate pair that referenced
/// the column). The bloom is the sketch half of discovery: its sound
/// subset test prunes inclusion-dependency candidates before the exact
/// per-value scan ever runs.
struct DiscoveryColumnProfile {
  size_t nulls = 0;
  std::unordered_set<Value, ValueHash> values;
  ValueBloom bloom;

  size_t distinct() const { return values.size(); }
};

DiscoveryColumnProfile ProfileDiscoveryColumn(const Table& table,
                                              size_t column) {
  DiscoveryColumnProfile profile;
  for (const Value& v : table.column(column)) {
    if (v.is_null()) {
      ++profile.nulls;
    } else {
      auto [it, inserted] = profile.values.insert(v);
      if (inserted) profile.bloom.InsertHash(SketchValueHash(v));
    }
  }
  return profile;
}

/// Checks the exact unary functional dependency lhs -> rhs.
bool FdHolds(const Table& table, size_t lhs, size_t rhs) {
  std::unordered_map<Value, Value, ValueHash> dependent_of;
  for (size_t r = 0; r < table.row_count(); ++r) {
    const Value& determinant = table.at(r, lhs);
    if (determinant.is_null()) continue;
    const Value& dependent = table.at(r, rhs);
    auto [it, inserted] = dependent_of.emplace(determinant, dependent);
    if (!inserted && !(it->second == dependent)) return false;
  }
  return true;
}

}  // namespace

std::string DiscoveredConstraint::ToString() const {
  std::ostringstream oss;
  oss << constraint.ToString() << " (support " << support << ")";
  return oss.str();
}

namespace {

/// The full (uncached) mining pass; DiscoverConstraints below fronts it
/// with the active profile cache.
std::vector<DiscoveredConstraint> DiscoverConstraintsUncached(
    const Database& database, const DiscoveryOptions& options) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Histogram& discover_ms =
      metrics.GetHistogram("profiling.discovery.ms");
  static Counter& candidates =
      metrics.GetCounter("profiling.discovery.candidates");
  static Counter& validated =
      metrics.GetCounter("profiling.discovery.validated");
  static Counter& ind_checks =
      metrics.GetCounter("profiling.discovery.ind_checks");
  static Counter& bloom_pruned =
      metrics.GetCounter("profiling.discovery.bloom_pruned");
  TraceSpan span("profiling.discover", nullptr, &discover_ms);

  std::vector<DiscoveredConstraint> discovered;
  const Schema& schema = database.schema();

  auto propose = [&](Constraint constraint, size_t support) {
    candidates.Increment();
    if (options.skip_declared && IsDeclared(schema, constraint)) return;
    validated.Increment();
    discovered.push_back(DiscoveredConstraint{std::move(constraint), support});
  };

  // --- Per-column profiles (parallel) --------------------------------------
  // Tables below the row threshold never contribute candidates; skip them.
  std::vector<const Table*> tables;
  for (const Table& table : database.tables()) {
    if (table.row_count() >= options.min_row_count) tables.push_back(&table);
  }
  std::vector<std::pair<size_t, size_t>> column_index;  // (table, column)
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t c = 0; c < tables[t]->column_count(); ++c) {
      column_index.emplace_back(t, c);
    }
  }
  auto profiled = ParallelMap(column_index.size(), [&](size_t i) {
    auto [t, c] = column_index[i];
    return ProfileDiscoveryColumn(*tables[t], c);
  });
  if (!profiled.ok()) return discovered;  // only possible via task throw
  std::vector<std::vector<DiscoveryColumnProfile>> profiles(tables.size());
  for (size_t i = 0; i < column_index.size(); ++i) {
    auto [t, c] = column_index[i];
    (void)c;  // columns arrive in order per table
    profiles[t].push_back(std::move((*profiled)[i]));
  }

  // --- NOT NULL and single-column UNIQUE ----------------------------------
  for (size_t t = 0; t < tables.size(); ++t) {
    const Table& table = *tables[t];
    for (size_t c = 0; c < table.column_count(); ++c) {
      const std::string& attribute = table.def().attributes()[c].name;
      const DiscoveryColumnProfile& profile = profiles[t][c];
      if (profile.nulls == 0) {
        propose(Constraint::NotNull(table.name(), attribute),
                table.row_count());
      }
      if (profile.nulls == 0 && profile.distinct() == table.row_count()) {
        propose(Constraint::Unique(table.name(), {attribute}),
                table.row_count());
      }
    }
  }

  // --- Unary functional dependencies A -> B --------------------------------
  if (options.discover_functional_dependencies) {
    // Candidate pairs in canonical (table, lhs, rhs) order; the exact
    // row-scan validation is the expensive part and fans out.
    std::vector<std::tuple<size_t, size_t, size_t>> fd_candidates;
    for (size_t t = 0; t < tables.size(); ++t) {
      const Table& table = *tables[t];
      for (size_t lhs = 0; lhs < table.column_count(); ++lhs) {
        const DiscoveryColumnProfile& lhs_profile = profiles[t][lhs];
        if (lhs_profile.distinct() < options.min_distinct_for_fd) continue;
        // A unique LHS determines everything trivially; skip.
        if (lhs_profile.nulls == 0 &&
            lhs_profile.distinct() == table.row_count()) {
          continue;
        }
        for (size_t rhs = 0; rhs < table.column_count(); ++rhs) {
          if (lhs == rhs) continue;
          fd_candidates.emplace_back(t, lhs, rhs);
        }
      }
    }
    // `char` (not bool): vector<bool> packs bits, and concurrent writes
    // to neighbouring slots would race.
    auto fd_holds = ParallelMap(fd_candidates.size(), [&](size_t i) -> char {
      auto [t, lhs, rhs] = fd_candidates[i];
      return FdHolds(*tables[t], lhs, rhs) ? 1 : 0;
    });
    if (fd_holds.ok()) {
      for (size_t i = 0; i < fd_candidates.size(); ++i) {
        if (!(*fd_holds)[i]) continue;
        auto [t, lhs, rhs] = fd_candidates[i];
        const Table& table = *tables[t];
        propose(Constraint::FunctionalDependency(
                    table.name(), {table.def().attributes()[lhs].name},
                    {table.def().attributes()[rhs].name}),
                table.row_count());
      }
    }
  }

  // --- Unary inclusion dependencies (FK candidates) -----------------------
  // Candidate pairs that survive the cheap profile-based prunes, in
  // canonical (child, child column, parent, parent column) order; the
  // per-pair inclusion scan fans out.
  std::vector<std::tuple<size_t, size_t, size_t, size_t>> ind_candidates;
  for (size_t ct = 0; ct < tables.size(); ++ct) {
    const Table& child = *tables[ct];
    for (size_t cc = 0; cc < child.column_count(); ++cc) {
      const DiscoveryColumnProfile& child_profile = profiles[ct][cc];
      if (child_profile.distinct() < options.min_distinct_for_ind) continue;
      for (size_t pt = 0; pt < tables.size(); ++pt) {
        const Table& parent = *tables[pt];
        for (size_t pc = 0; pc < parent.column_count(); ++pc) {
          if (&parent == &child && pc == cc) continue;
          if (parent.def().attributes()[pc].type !=
              child.def().attributes()[cc].type) {
            continue;
          }
          const DiscoveryColumnProfile& parent_profile = profiles[pt][pc];
          if (options.require_unique_referenced) {
            bool unique = parent_profile.nulls == 0 &&
                          parent_profile.distinct() == parent.row_count();
            if (!unique) continue;
          }
          if (parent_profile.distinct() < child_profile.distinct()) continue;
          // Sketch prune: if some child hash bit is missing from the
          // parent bloom, at least one child value is definitely absent
          // and the inclusion cannot hold. A "maybe" still goes to the
          // exact scan, so the discovered set is unchanged.
          if (!child_profile.bloom.SubsetOf(parent_profile.bloom)) {
            bloom_pruned.Increment();
            continue;
          }
          ind_checks.Increment();
          ind_candidates.emplace_back(ct, cc, pt, pc);
        }
      }
    }
  }
  auto included = ParallelMap(ind_candidates.size(), [&](size_t i) -> char {
    auto [ct, cc, pt, pc] = ind_candidates[i];
    const std::unordered_set<Value, ValueHash>& child_values =
        profiles[ct][cc].values;
    const std::unordered_set<Value, ValueHash>& parent_values =
        profiles[pt][pc].values;
    return std::all_of(
               child_values.begin(), child_values.end(),
               [&](const Value& v) { return parent_values.count(v) > 0; })
               ? 1
               : 0;
  });
  if (included.ok()) {
    for (size_t i = 0; i < ind_candidates.size(); ++i) {
      if (!(*included)[i]) continue;
      auto [ct, cc, pt, pc] = ind_candidates[i];
      const Table& child = *tables[ct];
      const Table& parent = *tables[pt];
      propose(Constraint::ForeignKey(
                  child.name(), {child.def().attributes()[cc].name},
                  parent.name(), {parent.def().attributes()[pc].name}),
              child.row_count());
    }
  }

  return discovered;
}

/// Discovery results depend on the data *and* on every DiscoveryOptions
/// knob, so the cache key mixes both.
uint64_t FingerprintDiscovery(const Database& database,
                              const DiscoveryOptions& options) {
  Fingerprinter fp;
  fp.MixUint64(FingerprintDatabase(database));
  fp.MixUint64(options.min_row_count);
  fp.MixUint64(options.min_distinct_for_ind);
  fp.MixBool(options.require_unique_referenced);
  fp.MixBool(options.skip_declared);
  fp.MixBool(options.discover_functional_dependencies);
  fp.MixUint64(options.min_distinct_for_fd);
  return fp.digest();
}

}  // namespace

std::vector<DiscoveredConstraint> DiscoverConstraints(
    const Database& database, const DiscoveryOptions& options) {
  ProfileCache* cache = ProfileCache::Active();
  if (cache == nullptr) return DiscoverConstraintsUncached(database, options);
  const uint64_t key = FingerprintDiscovery(database, options);
  if (std::optional<std::vector<DiscoveredConstraint>> hit =
          cache->LookupConstraints(key)) {
    return *std::move(hit);
  }
  std::vector<DiscoveredConstraint> discovered =
      DiscoverConstraintsUncached(database, options);
  cache->StoreConstraints(key, discovered);
  return discovered;
}

Schema SchemaWithDiscoveredConstraints(const Database& database,
                                       const DiscoveryOptions& options) {
  Schema schema = database.schema();
  for (DiscoveredConstraint& d : DiscoverConstraints(database, options)) {
    schema.AddConstraint(std::move(d.constraint));
  }
  return schema;
}

Result<Database> DatabaseWithDiscoveredConstraints(
    const Database& database, const DiscoveryOptions& options) {
  EFES_ASSIGN_OR_RETURN(
      Database completed,
      Database::Create(SchemaWithDiscoveredConstraints(database, options)));
  for (const Table& table : database.tables()) {
    EFES_ASSIGN_OR_RETURN(Table * destination,
                          completed.mutable_table(table.name()));
    for (size_t r = 0; r < table.row_count(); ++r) {
      EFES_RETURN_IF_ERROR(destination->AppendRow(table.Row(r)));
    }
  }
  return completed;
}

}  // namespace efes
