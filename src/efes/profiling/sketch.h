// Mergeable statistic sketches — out-of-core profiling (DESIGN.md §16).
//
// The whole-column ComputeStatistics path materializes a column before
// profiling it, which caps EFES far below the 100M+ row target. This
// layer redesigns profiling around a *mergeable accumulator*:
//
//   StatisticsSketch sketch(type, options);
//   sketch.Absorb(chunk values...);      // any partition of the column
//   sketch.Merge(other);                 // any merge tree
//   AttributeStatistics s = sketch.Finalize();
//
// Canonical-state contract (the reason output stays byte-identical for
// any --threads=N, any chunk size, and any merge order): every piece of
// sketch state is a pure, order-independent function of the *multiset*
// of absorbed values. Counters are integer sums, min/max are exact
// scalars, and the value-frequency map is keyed by value — no float is
// ever accumulated across chunks. All nine §5.1 statistics are derived
// at Finalize() by iterating the map in sorted-value order, so two
// sketches with equal state render bit-identical statistics.
//
// Approximation taxonomy (ProfileOptions::mode):
//   * kExact  — the frequency map holds every distinct value. A
//     --max-memory budget turns overflow into kResourceExhausted.
//   * kSketch — the map is capped: values are tracked iff the top
//     `level` bits of their 64-bit content hash are zero (an adaptive
//     KMV/hash-threshold sample, each tracked value with an *exact*
//     count). When the map outgrows the budget the level increments and
//     entries above the new threshold are dropped. The final level is
//     the smallest one whose tracked set fits the cap — a pure function
//     of the full distinct set, hence partition-invariant: a chunk can
//     only ever force a level <= the canonical final level (its tracked
//     set is a subset of the column's), and Merge() re-applies the rule.
//     Distinctness is estimated as tracked*2^level (the KMV estimator),
//     entropy/top-k/patterns are ratio estimates over the sample, and
//     min/max stay exact scalars.
//   * kAuto   — identical state evolution to kSketch; reported as exact
//     while the level is still 0 (the sample *is* the full map), sketch
//     after the first forced coarsening.
//
// ValueBloom is the companion membership sketch for constraint
// discovery: a fixed-size, OR-mergeable bloom filter whose subset test
// soundly prunes inclusion-dependency candidates (a definite miss means
// some child value cannot be in the parent; a "maybe" falls through to
// the exact validation pass, so discovery results are unchanged).

#ifndef EFES_PROFILING_SKETCH_H_
#define EFES_PROFILING_SKETCH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "efes/common/result.h"
#include "efes/profiling/statistics.h"
#include "efes/relational/value.h"

namespace efes {

/// How a profile may trade accuracy for memory (DESIGN.md §16).
enum class ApproximationMode {
  kExact = 0,
  kSketch = 1,
  kAuto = 2,
};

/// Canonical lowercase name: "exact", "sketch", "auto".
std::string_view ApproximationModeToString(ApproximationMode mode);

/// Parses the canonical names; anything else is kInvalidArgument.
Result<ApproximationMode> ParseApproximationMode(std::string_view text);

/// Profiling knobs threaded through RunOptions (the PR-5 pattern) and
/// the --chunk-rows / --max-memory / --approx CLI flags.
struct ProfileOptions {
  /// Rows per streaming chunk; 0 profiles each column as one chunk.
  size_t chunk_rows = 65536;
  /// Per-sketch memory budget in bytes; 0 = unlimited (kExact) or the
  /// built-in default sample budget (kSketch/kAuto).
  size_t max_memory_bytes = 0;
  ApproximationMode mode = ApproximationMode::kExact;
};

/// Default per-sketch sample budget for kSketch/kAuto when --max-memory
/// is not set (roughly a few thousand tracked values).
inline constexpr size_t kDefaultSketchMemoryBytes = 256 * 1024;

/// Serializable sketch state (cache/profile_cache.cc persists it with
/// hexfloat doubles and escaped strings). `entries` is in canonical
/// sorted-value order, so equal sketches serialize byte-identically.
struct SketchState {
  DataType target_type = DataType::kText;
  ApproximationMode mode = ApproximationMode::kExact;
  uint64_t cap_bytes = 0;
  uint32_t level = 0;
  uint64_t total_count = 0;
  uint64_t null_count = 0;
  uint64_t uncastable_count = 0;
  uint64_t numeric_count = 0;
  double numeric_min = 0.0;
  double numeric_max = 0.0;
  std::vector<std::pair<Value, uint64_t>> entries;
};

class StatisticsSketch {
 public:
  /// An exact, unbudgeted sketch against text (vector-resize default).
  StatisticsSketch() : StatisticsSketch(DataType::kText, ProfileOptions{}) {}

  StatisticsSketch(DataType target_type, const ProfileOptions& options);

  /// Absorbs one value. Fails with kResourceExhausted only in kExact
  /// mode with a --max-memory budget the frequency map outgrew.
  [[nodiscard]] Status Absorb(const Value& value);

  /// Absorbs column[begin, end) — one streaming chunk.
  [[nodiscard]] Status AbsorbRange(const std::vector<Value>& column,
                                   size_t begin, size_t end);

  /// Folds `other` (same type/mode/budget) into this sketch. The result
  /// equals absorbing both multisets into one sketch, bit for bit.
  [[nodiscard]] Status Merge(const StatisticsSketch& other);

  /// Derives all applicable §5.1 statistics from the canonical state.
  AttributeStatistics Finalize() const;

  /// Approximate heap footprint of the tracked state, the quantity the
  /// --max-memory budget is compared against.
  size_t MemoryBytes() const;

  DataType target_type() const { return target_type_; }
  ApproximationMode requested_mode() const { return mode_; }
  /// kExact while every distinct value is still tracked (level 0),
  /// kSketch once coarsening dropped values — what provenance records.
  ApproximationMode effective_mode() const;
  uint32_t level() const { return level_; }
  size_t tracked_count() const { return tracked_.size(); }

  /// State export/import for cache persistence. FromState re-validates
  /// the tracking invariant, so a mangled snapshot entry degrades to a
  /// parse error (= a cache miss), never a corrupt sketch.
  SketchState ExportState() const;
  static Result<StatisticsSketch> FromState(const SketchState& state);

 private:
  Status EnforceBudget();
  bool Tracks(uint64_t hash) const {
    return level_ == 0 || (hash >> (64 - level_)) == 0;
  }

  DataType target_type_ = DataType::kText;
  ApproximationMode mode_ = ApproximationMode::kExact;
  uint64_t cap_bytes_ = 0;  // 0 = unlimited
  uint32_t level_ = 0;
  uint64_t total_count_ = 0;
  uint64_t null_count_ = 0;
  uint64_t uncastable_count_ = 0;
  // Exact numeric scalars (numeric targets): survive coarsening, so
  // value ranges never degrade to the sample.
  uint64_t numeric_count_ = 0;
  double numeric_min_ = 0.0;
  double numeric_max_ = 0.0;
  // Value -> (exact occurrence count, content hash). The content hash
  // (FNV-1a over the typed value, cache/fingerprint.h) drives tracking
  // and is stored to make coarsening O(tracked).
  std::unordered_map<Value, std::pair<uint64_t, uint64_t>, ValueHash>
      tracked_;
  uint64_t tracked_bytes_ = 0;
};

/// Deterministic 64-bit content hash of a value (FNV-1a, the cache
/// fingerprint encoding) — the hash the sketch sample and ValueBloom
/// share, stable across runs and builds.
uint64_t SketchValueHash(const Value& value);

/// Fixed-size (4096-bit) bloom filter over value content hashes.
/// OR-mergeable and insertion-order free; ~512 bytes per column.
class ValueBloom {
 public:
  void Insert(const Value& value) { InsertHash(SketchValueHash(value)); }
  void InsertHash(uint64_t hash);

  /// False means the value is definitely absent.
  bool MightContain(const Value& value) const;

  /// False means some value inserted here is definitely *not* in
  /// `other` — sound pruning for "this column ⊆ that column".
  bool SubsetOf(const ValueBloom& other) const;

  void MergeFrom(const ValueBloom& other);

 private:
  static constexpr size_t kWords = 64;  // 4096 bits
  std::array<uint64_t, kWords> bits_{};
};

}  // namespace efes

#endif  // EFES_PROFILING_SKETCH_H_
