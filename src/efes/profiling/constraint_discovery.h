// Constraint discovery by data profiling.
//
// "Oftentimes constraints are not enforced at the schema level but rather
// at the application level [...] techniques for schema reverse engineering
// and data profiling can reconstruct missing schema descriptions and
// constraints from the data" (Section 3.1). This module mines a database
// instance for NOT NULL, UNIQUE (candidate keys), and unary inclusion
// dependencies (foreign-key candidates) that are *not* already declared,
// giving the complexity assessment the paper's Completeness property.

#ifndef EFES_PROFILING_CONSTRAINT_DISCOVERY_H_
#define EFES_PROFILING_CONSTRAINT_DISCOVERY_H_

#include <vector>

#include "efes/relational/database.h"
#include "efes/relational/schema.h"

namespace efes {

struct DiscoveryOptions {
  /// Do not propose constraints over tables with fewer rows than this —
  /// tiny samples make every column look unique and non-null.
  size_t min_row_count = 10;

  /// Inclusion dependencies are only proposed when the dependent column
  /// has at least this many distinct values (filters out near-constant
  /// columns that are trivially included everywhere).
  size_t min_distinct_for_ind = 3;

  /// Only propose an inclusion dependency A ⊆ B as an FK candidate when B
  /// is unique (a key-like column).
  bool require_unique_referenced = true;

  /// Skip constraints that are already declared on the schema.
  bool skip_declared = true;

  /// Mine exact unary functional dependencies A -> B. Determinants with
  /// fewer distinct values than this are skipped (near-constant columns
  /// determine everything trivially).
  bool discover_functional_dependencies = true;
  size_t min_distinct_for_fd = 3;
};

/// A discovered constraint with the evidence strength behind it.
struct DiscoveredConstraint {
  Constraint constraint;
  /// Rows supporting the constraint (rows checked without counterexample).
  size_t support = 0;

  std::string ToString() const;
};

/// Profiles `database` and returns constraints that hold exactly on the
/// instance but are not declared in the schema. The result is
/// deterministic (relation/attribute order of the schema).
std::vector<DiscoveredConstraint> DiscoverConstraints(
    const Database& database, const DiscoveryOptions& options = {});

/// Convenience: returns a copy of the database's schema with all
/// discovered constraints added. Used to "complete" a source before
/// running the detectors.
Schema SchemaWithDiscoveredConstraints(const Database& database,
                                       const DiscoveryOptions& options = {});

/// Rebuilds the database under the completed schema (same data, plus the
/// discovered constraints). Because discovery mines exact constraints,
/// the rebuilt instance is valid by construction. This realizes the
/// paper's Completeness requirement: "business rules are commonly
/// enforced at the application level and are not reflected in the
/// metadata of the schemas, but should nevertheless be considered" —
/// declared constraints let the detectors short-circuit instance scans
/// and tighten the CSG inference.
Result<Database> DatabaseWithDiscoveredConstraints(
    const Database& database, const DiscoveryOptions& options = {});

}  // namespace efes

#endif  // EFES_PROFILING_CONSTRAINT_DISCOVERY_H_
