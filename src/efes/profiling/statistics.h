// The attribute statistics of Section 5.1.
//
// "The basic approach of the value fit detector is to aggregate source and
// target data into statistics and compare these statistics to detect
// heterogeneities." Each statistic type provides
//   * a computation over a column of values,
//   * an importance score i(St)   — how characteristic the statistic is
//     for the *target* attribute, and
//   * a fit value f(Ss, St) ∈ [0,1] — to what extent the source attribute
//     statistics fit the target attribute statistics.
// The fit values are averaged with the importance scores as weights
// (Section 5.1); a result below a threshold (0.9 in the paper and here)
// signals domain-specific differences.

#ifndef EFES_PROFILING_STATISTICS_H_
#define EFES_PROFILING_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/relational/table.h"
#include "efes/relational/value.h"

namespace efes {

/// The nine statistic types of the paper, Section 5.1.
enum class StatisticType {
  kFillStatus,
  kConstancy,
  kTextPattern,
  kCharHistogram,
  kStringLength,
  kMean,
  kHistogram,
  kValueRange,
  kTopK,
};

std::string_view StatisticTypeToString(StatisticType type);

/// "The fill status counts the null values in an attribute and the values
/// that cannot be cast to the target attribute's datatype."
struct FillStatusStats {
  size_t total_count = 0;
  size_t null_count = 0;
  size_t uncastable_count = 0;

  /// Fraction of rows with a usable (non-null, castable) value.
  double FillFraction() const;
  /// Fraction of rows with any non-null value, castable or not. The
  /// "substantially fewer source values" rule compares this one:
  /// uncastable values are a representation problem, not missing data.
  double NonNullFraction() const;
  /// Fraction of non-null values castable to the target type.
  double CastableFraction() const;
};

/// "The constancy is the inverse of Shannon's information entropy and is
/// useful to classify whether the values of an attribute come from a
/// discrete domain." We normalize: constancy = 1 - H(values)/log2(n).
struct ConstancyStats {
  double constancy = 1.0;
  size_t distinct_count = 0;
  size_t non_null_count = 0;
};

/// "The text pattern statistic collects frequent patterns in a string
/// attribute." Patterns generalize runs of digits to `9`, letters to `a`,
/// and keep punctuation, so "4:43" becomes "9:9" and "Sweet Home" becomes
/// "a a" — the paper's [number ":" number] idea.
struct TextPatternStats {
  /// Pattern -> relative frequency, descending, capped at kMaxPatterns.
  std::vector<std::pair<std::string, double>> patterns;
  static constexpr size_t kMaxPatterns = 32;
};

/// "Character histogram captures the relative occurrences of characters in
/// a string attribute."
struct CharHistogramStats {
  std::map<char, double> frequencies;
};

/// "The string length statistic determines the average string length and
/// its standard deviation."
struct StringLengthStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// "The mean statistic collects the mean value and standard deviation of a
/// numeric attribute."
struct MeanStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// "The histogram statistic describes numeric attributes as histograms."
/// Equi-width buckets over [min, max].
struct HistogramStats {
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bucket_fractions;  // sums to 1 when non-empty
  static constexpr size_t kBucketCount = 16;
};

/// "Value ranges are used to determine the minimum and maximum value of a
/// numeric attribute."
struct ValueRangeStats {
  double min = 0.0;
  double max = 0.0;
};

/// "For attributes with values from a discrete domain, the top-k values
/// statistic identifies the most frequent values."
struct TopKStats {
  /// Value -> relative frequency, descending, at most kK entries.
  std::vector<std::pair<Value, double>> top_values;
  /// Fraction of all non-null occurrences covered by top_values.
  double coverage = 0.0;
  static constexpr size_t kK = 10;
};

/// The full statistics bundle for one attribute, computed against a target
/// datatype ("the target attribute's datatype designating which exact
/// statistic types to use"). String-directed statistics view every value
/// through its text rendering; numeric ones only cover values castable to
/// a number.
struct AttributeStatistics {
  DataType evaluated_against = DataType::kText;

  FillStatusStats fill_status;
  ConstancyStats constancy;
  std::optional<TextPatternStats> text_pattern;
  std::optional<CharHistogramStats> char_histogram;
  std::optional<StringLengthStats> string_length;
  std::optional<MeanStats> mean;
  std::optional<HistogramStats> histogram;
  std::optional<ValueRangeStats> value_range;
  TopKStats top_k;

  /// Multi-line human-readable rendering for reports/examples.
  std::string ToString() const;
};

/// \deprecated One-shot whole-column wrapper kept for compatibility.
/// New call sites must use ProfileColumn (profiling/profiler.h), which
/// streams the column in chunks under the ambient ProfileOptions; the
/// `whole-column-profile` efes_lint check bans this name outside
/// profiling/. This wrapper profiles exactly, unchunked, unbudgeted —
/// the legacy semantics — and is itself a thin shim over the sketch
/// path, so wrapper and sketch outputs are bit-identical.
AttributeStatistics ComputeStatistics(const std::vector<Value>& column,
                                      DataType target_type);

/// \deprecated Superseded by ProfileRequest (profiling/profiler.h),
/// which adds ProfileOptions (chunking, memory budget, approximation
/// mode). Kept only for the ComputeStatisticsBatch wrapper below.
struct ColumnStatisticsRequest {
  const std::vector<Value>* column = nullptr;
  DataType target_type = DataType::kText;
};

/// \deprecated Whole-column batch wrapper over ProfileColumns
/// (profiling/profiler.h); same migration rule as ComputeStatistics.
Result<std::vector<AttributeStatistics>> ComputeStatisticsBatch(
    const std::vector<ColumnStatisticsRequest>& requests);

/// Generalizes a string into its text pattern: digit runs -> '9', letter
/// runs -> 'a', whitespace runs -> ' ', everything else verbatim.
std::string GeneralizeToPattern(std::string_view text);

// --- Importance / fit scoring (Section 5.1) -------------------------------

/// Importance score i(St(τ)) in [0,1] of statistic `type` for a target
/// attribute with statistics `target`. E.g. a text-pattern statistic where
/// all values share one pattern is highly characteristic (close to 1);
/// many diverse patterns push it towards 0.
double ImportanceScore(StatisticType type, const AttributeStatistics& target);

/// Fit value f(Ss(τ), St(τ)) in [0,1]: to what extent the source statistic
/// fits the target statistic. 1 = indistinguishable distributions.
double FitValue(StatisticType type, const AttributeStatistics& source,
                const AttributeStatistics& target);

/// The importance-weighted average fit over all statistics applicable to
/// the target type ("the overall fit value tells to what extent the source
/// attribute fulfills the most important characteristics of the target
/// attribute"). Returns 1 when no statistic is applicable.
double OverallFit(const AttributeStatistics& source,
                  const AttributeStatistics& target);

/// The statistic types consulted by OverallFit for a given target type.
std::vector<StatisticType> ApplicableStatistics(DataType target_type);

}  // namespace efes

#endif  // EFES_PROFILING_STATISTICS_H_
