// The profiling entry points — chunked, budgeted, cache-fronted.
//
// ProfileColumn/ProfileColumns replace the whole-column
// ComputeStatistics/ComputeStatisticsBatch API (both still exist in
// statistics.h as deprecated one-shot wrappers over this path). A column
// is split into ProfileOptions::chunk_rows blocks, each block is
// absorbed into a partial StatisticsSketch on the shared pool, and the
// partials are folded in canonical chunk order — so the result is
// byte-identical for any --threads=N and any chunk size (sketch.h
// explains why), while peak profiling memory is bounded by
// (threads + 1) sketches instead of one map over the whole column.
//
// Spill-to-cache: when a ProfileCache is active, multi-chunk columns
// content-address each chunk's partial sketch in the cache, so a warm
// (or interrupted-and-resumed) run re-reads absorbed chunks instead of
// recomputing them, and the finalized statistics are stored under a key
// that mixes in the approximation mode and budget whenever they can
// influence the result.
//
// Options are threaded the PR-5 way: explicitly per call, or ambient
// via ScopedProfileOptions (installed by EfesEngine::Run from
// RunOptions::profile, and by the CLI from --chunk-rows / --max-memory
// / --approx).

#ifndef EFES_PROFILING_PROFILER_H_
#define EFES_PROFILING_PROFILER_H_

#include <vector>

#include "efes/common/result.h"
#include "efes/profiling/sketch.h"
#include "efes/profiling/statistics.h"
#include "efes/relational/value.h"

namespace efes {

/// One column to profile in a batch. The referenced column must outlive
/// the ProfileColumns call.
struct ProfileRequest {
  const std::vector<Value>* column = nullptr;
  DataType target_type = DataType::kText;
};

/// The ambient options consulted by the single-argument overloads: the
/// innermost ScopedProfileOptions, or defaults when none is installed.
ProfileOptions ActiveProfileOptions();

/// RAII activation of ambient profile options, mirroring
/// ScopedProfileCache: installs a copy for the current scope and
/// restores the previous options on destruction.
class ScopedProfileOptions {
 public:
  explicit ScopedProfileOptions(const ProfileOptions& options);
  ~ScopedProfileOptions();

  ScopedProfileOptions(const ScopedProfileOptions&) = delete;
  ScopedProfileOptions& operator=(const ScopedProfileOptions&) = delete;

 private:
  ProfileOptions options_;
  const ProfileOptions* previous_;
};

/// Profiles one column against `target_type`. Fails only on a
/// --max-memory budget an exact profile cannot satisfy
/// (kResourceExhausted; kSketch/kAuto degrade instead).
Result<AttributeStatistics> ProfileColumn(const std::vector<Value>& column,
                                          DataType target_type,
                                          const ProfileOptions& options);
Result<AttributeStatistics> ProfileColumn(const std::vector<Value>& column,
                                          DataType target_type);

/// Profiles many columns through the shared pool; results come back in
/// request order, bit-identical to profiling sequentially.
Result<std::vector<AttributeStatistics>> ProfileColumns(
    const std::vector<ProfileRequest>& requests,
    const ProfileOptions& options);
Result<std::vector<AttributeStatistics>> ProfileColumns(
    const std::vector<ProfileRequest>& requests);

}  // namespace efes

#endif  // EFES_PROFILING_PROFILER_H_
