#include "efes/profiling/profiler.h"

#include <algorithm>
#include <atomic>

#include "efes/cache/fingerprint.h"
#include "efes/cache/profile_cache.h"
#include "efes/common/clock.h"
#include "efes/common/metrics.h"
#include "efes/common/parallel.h"

namespace efes {

namespace {

// Ambient options (ScopedProfileOptions), following the
// ScopedProfileCache atomic-pointer idiom.
std::atomic<const ProfileOptions*> g_active_options{nullptr};

/// True when the options can change the finalized statistics: any
/// capped mode makes the result a function of the budget too, so cache
/// keys must separate it from the exact, unbudgeted profile.
bool CapActive(const ProfileOptions& options) {
  return options.mode != ApproximationMode::kExact ||
         options.max_memory_bytes != 0;
}

/// Key of the finalized statistics: the legacy column fingerprint, and
/// when a cap is active, the approximation configuration mixed in.
uint64_t StatisticsKey(const std::vector<Value>& column, DataType target_type,
                       const ProfileOptions& options) {
  const uint64_t base = FingerprintColumn(column, target_type);
  if (!CapActive(options)) return base;
  Fingerprinter fp;
  fp.MixString("profile.capped");
  fp.MixUint64(base);
  fp.MixUint64(static_cast<uint64_t>(options.mode));
  fp.MixUint64(options.max_memory_bytes);
  return fp.digest();
}

/// Content address of one chunk's partial sketch (the spill-to-cache
/// key): chunk values in row order plus everything that shapes the
/// sketch state — target type, mode, and budget.
uint64_t ChunkSketchKey(const std::vector<Value>& column, size_t begin,
                        size_t end, DataType target_type,
                        const ProfileOptions& options) {
  Fingerprinter fp;
  fp.MixString("profile.chunk");
  fp.MixUint64(static_cast<uint64_t>(target_type));
  fp.MixUint64(static_cast<uint64_t>(options.mode));
  fp.MixUint64(options.max_memory_bytes);
  fp.MixUint64(end - begin);
  for (size_t i = begin; i < end; ++i) fp.MixValue(column[i]);
  return fp.digest();
}

}  // namespace

ProfileOptions ActiveProfileOptions() {
  const ProfileOptions* active =
      g_active_options.load(std::memory_order_acquire);
  return active == nullptr ? ProfileOptions{} : *active;
}

ScopedProfileOptions::ScopedProfileOptions(const ProfileOptions& options)
    : options_(options),
      previous_(g_active_options.exchange(&options_,
                                          std::memory_order_acq_rel)) {}

ScopedProfileOptions::~ScopedProfileOptions() {
  g_active_options.store(previous_, std::memory_order_release);
}

Result<AttributeStatistics> ProfileColumn(const std::vector<Value>& column,
                                          DataType target_type,
                                          const ProfileOptions& options) {
  static Counter& columns_profiled =
      MetricsRegistry::Global().GetCounter("profiling.statistics.columns");
  static Counter& cells_scanned =
      MetricsRegistry::Global().GetCounter("profiling.statistics.cells");
  static Counter& chunks_absorbed =
      MetricsRegistry::Global().GetCounter("profiling.statistics.chunks");
  static Counter& sketch_degrades =
      MetricsRegistry::Global().GetCounter("profiling.statistics.degraded");
  static Histogram& compute_ms =
      MetricsRegistry::Global().GetHistogram("profiling.statistics.ms");

  ProfileCache* cache = ProfileCache::Active();
  uint64_t key = 0;
  if (cache != nullptr) {
    key = StatisticsKey(column, target_type, options);
    if (std::optional<AttributeStatistics> hit =
            cache->LookupStatistics(key)) {
      return *std::move(hit);
    }
  }

  columns_profiled.Increment();
  cells_scanned.Increment(column.size());
  const int64_t start_nanos = Clock::Default()->NowNanos();

  const size_t chunk_rows =
      options.chunk_rows == 0 ? column.size() : options.chunk_rows;
  StatisticsSketch accumulator(target_type, options);
  if (column.size() <= chunk_rows) {
    chunks_absorbed.Increment();
    EFES_RETURN_IF_ERROR(accumulator.AbsorbRange(column, 0, column.size()));
  } else {
    const size_t chunk_count = (column.size() + chunk_rows - 1) / chunk_rows;
    chunks_absorbed.Increment(chunk_count);
    // Waves of one chunk per configured thread: ParallelFor builds the
    // wave's partial sketches concurrently, then the wave folds into the
    // accumulator in canonical chunk order and is released — peak memory
    // stays at (threads + 1) sketches however long the column is.
    const size_t wave = std::max<size_t>(size_t{1}, ConfiguredThreadCount());
    for (size_t base = 0; base < chunk_count; base += wave) {
      const size_t batch = std::min(wave, chunk_count - base);
      std::vector<StatisticsSketch> partials(batch);
      EFES_RETURN_IF_ERROR(ParallelFor(batch, [&](size_t i) -> Status {
        const size_t lo = (base + i) * chunk_rows;
        const size_t hi = std::min(lo + chunk_rows, column.size());
        uint64_t chunk_key = 0;
        if (cache != nullptr) {
          chunk_key =
              ChunkSketchKey(column, lo, hi, target_type, options);
          if (std::optional<StatisticsSketch> spilled =
                  cache->LookupSketch(chunk_key)) {
            partials[i] = *std::move(spilled);
            return Status::OK();
          }
        }
        StatisticsSketch sketch(target_type, options);
        EFES_RETURN_IF_ERROR(sketch.AbsorbRange(column, lo, hi));
        if (cache != nullptr) cache->StoreSketch(chunk_key, sketch);
        partials[i] = std::move(sketch);
        return Status::OK();
      }));
      for (size_t i = 0; i < batch; ++i) {
        EFES_RETURN_IF_ERROR(accumulator.Merge(partials[i]));
      }
    }
  }

  if (accumulator.effective_mode() == ApproximationMode::kSketch) {
    sketch_degrades.Increment();
  }
  AttributeStatistics stats = accumulator.Finalize();
  compute_ms.Observe(
      static_cast<double>(Clock::Default()->NowNanos() - start_nanos) / 1e6);
  if (cache != nullptr) cache->StoreStatistics(key, stats);
  return stats;
}

Result<AttributeStatistics> ProfileColumn(const std::vector<Value>& column,
                                          DataType target_type) {
  return ProfileColumn(column, target_type, ActiveProfileOptions());
}

Result<std::vector<AttributeStatistics>> ProfileColumns(
    const std::vector<ProfileRequest>& requests,
    const ProfileOptions& options) {
  std::vector<AttributeStatistics> results(requests.size());
  EFES_RETURN_IF_ERROR(ParallelFor(requests.size(), [&](size_t i) -> Status {
    Result<AttributeStatistics> stats =
        ProfileColumn(*requests[i].column, requests[i].target_type, options);
    if (!stats.ok()) return stats.status();
    results[i] = *std::move(stats);
    return Status::OK();
  }));
  return results;
}

Result<std::vector<AttributeStatistics>> ProfileColumns(
    const std::vector<ProfileRequest>& requests) {
  return ProfileColumns(requests, ActiveProfileOptions());
}

}  // namespace efes
