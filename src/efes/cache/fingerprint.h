// Deterministic content fingerprints — the keys of the profile cache.
//
// A fingerprint is a 64-bit FNV-1a hash over a canonical byte encoding of
// the hashed content: every ingredient is length- or tag-prefixed, so
// concatenation ambiguities ("ab"+"c" vs "a"+"bc") cannot collide, and
// doubles hash by bit pattern, so two columns fingerprint equal iff their
// typed values are identical. The hash is implemented in-tree (no
// dependency) and fixed forever: fingerprints are persisted in cache
// files, so changing the function is a cache-format version bump
// (profile_cache.h), never a silent edit here.

#ifndef EFES_CACHE_FINGERPRINT_H_
#define EFES_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "efes/relational/database.h"
#include "efes/relational/value.h"

namespace efes {

/// Incremental FNV-1a (64-bit) hasher with typed, prefix-free mixers.
class Fingerprinter {
 public:
  Fingerprinter& MixBytes(const void* data, size_t size);
  Fingerprinter& MixUint64(uint64_t v);
  Fingerprinter& MixBool(bool v) { return MixUint64(v ? 1 : 0); }
  /// Bit-pattern hash: -0.0 and 0.0 differ, every NaN payload differs.
  Fingerprinter& MixDouble(double v);
  /// Length-prefixed, so adjacent strings cannot shift into each other.
  Fingerprinter& MixString(std::string_view s);
  /// Type tag + payload; NULL mixes the tag alone.
  Fingerprinter& MixValue(const Value& v);

  uint64_t digest() const { return hash_; }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  uint64_t hash_ = kOffsetBasis;
};

/// Key of one column profile: the typed cell values in row order plus the
/// target datatype the statistics are evaluated against.
uint64_t FingerprintColumn(const std::vector<Value>& column,
                           DataType target_type);

/// Key ingredient for per-source discovered constraints: schema name,
/// relations (names, attributes, types), declared constraints, and every
/// cell value of every table, all in canonical schema order. Renaming a
/// column, editing a value, or adding a constraint each change the
/// fingerprint.
uint64_t FingerprintDatabase(const Database& database);

/// Mixes one constraint definition (kind, relation, attribute lists).
void MixConstraint(Fingerprinter& fp, const Constraint& constraint);

/// Canonical 16-digit lowercase hex rendering (cache-file key format).
std::string FingerprintToHex(uint64_t fingerprint);

}  // namespace efes

#endif  // EFES_CACHE_FINGERPRINT_H_
