// Content-addressed profile cache — incremental re-estimation.
//
// The paper pitches EFES as a tool an analyst runs repeatedly: tweak the
// expected quality, swap one source of a scenario, re-read the effort
// breakdown (Section 3.3). Phase-1 profiling (the nine Section 5.1
// statistics per column, the mined unique/not-null/FD/IND constraints per
// source) depends only on the *data*, not on quality or execution
// settings, so across such runs it is pure recomputation. This cache
// keys every profile by a deterministic content fingerprint
// (cache/fingerprint.h) and lets the profiling paths skip phase-1 work
// whenever the underlying bytes did not change — including across
// processes, via an on-disk snapshot.
//
// Invariants:
//   * Bit-identical results. A cache hit returns exactly the object the
//     cold computation produced (doubles persist as hexfloat, so a disk
//     roundtrip is bit-exact). Cached and uncached runs of the same
//     scenario render byte-identical reports at any thread count.
//   * Corruption is a miss, never an error. A missing, truncated,
//     version-mismatched, or mangled cache file (or a single bad entry)
//     degrades to recomputation; LoadFromFile only fails on injected
//     faults being disarmed — i.e. it doesn't. Fault points `cache.load`
//     and `cache.save` make the degraded paths testable.
//   * Thread safety. Lookup/store are mutex-protected; profiling fans
//     out over the shared pool and all workers may consult the cache.
//
// On-disk format (version bumps on any encoding change — old files are
// then ignored wholesale; version 2 added `K` partial-sketch entries
// and re-keyed statistics computed through the sketch path):
//
//   EFESCACHE 2
//   S <16-hex-key> <statistics tokens>
//   C <16-hex-key> <constraint tokens>
//   K <16-hex-key> <sketch-state tokens>
//
// Telemetry: `cache.hits`, `cache.misses`, `cache.stores`,
// `cache.bytes`, `cache.load.corrupt_entries`.

#ifndef EFES_CACHE_PROFILE_CACHE_H_
#define EFES_CACHE_PROFILE_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/common/thread_annotations.h"
#include "efes/profiling/constraint_discovery.h"
#include "efes/profiling/sketch.h"
#include "efes/profiling/statistics.h"

namespace efes {

/// Current on-disk format version (the number of the header line).
inline constexpr int kProfileCacheFormatVersion = 2;

class ProfileCache {
 public:
  ProfileCache() = default;

  // Not copyable: the active-cache registration and the entry maps are
  // identity-bound.
  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  /// Cached statistics for a column fingerprint, or nullopt (miss).
  std::optional<AttributeStatistics> LookupStatistics(uint64_t key) const;
  void StoreStatistics(uint64_t key, const AttributeStatistics& stats);

  /// Cached discovery result for a database fingerprint, or nullopt.
  std::optional<std::vector<DiscoveredConstraint>> LookupConstraints(
      uint64_t key) const;
  void StoreConstraints(uint64_t key,
                        const std::vector<DiscoveredConstraint>& constraints);

  /// Cached partial sketch for a chunk fingerprint, or nullopt — the
  /// spill-to-cache path of ProfileColumn (profiling/profiler.h): warm
  /// runs re-load absorbed chunks instead of recomputing them.
  std::optional<StatisticsSketch> LookupSketch(uint64_t key) const;
  void StoreSketch(uint64_t key, const StatisticsSketch& sketch);

  size_t entry_count() const;
  void Clear();

  /// Loads a snapshot written by SaveToFile. Missing, unreadable,
  /// version-mismatched, or corrupt content is treated as cache misses
  /// (bad entries are skipped, counted in `cache.load.corrupt_entries`);
  /// the returned status is non-OK only for injected `cache.load` faults.
  Status LoadFromFile(const std::string& path);

  /// Atomically persists the cache (WriteFileAtomic; parent directories
  /// are created). Fault point: `cache.save`.
  Status SaveToFile(const std::string& path) const;

  /// Conventional snapshot file inside a --cache-dir directory.
  static std::string FilePathInDirectory(const std::string& directory);

  /// The process-wide active cache consulted by the profiling paths
  /// (ComputeStatistics, DiscoverConstraints), or nullptr (compute
  /// everything). Installed via ScopedProfileCache, typically by
  /// EfesEngine::Run from RunOptions::cache.
  static ProfileCache* Active();

 private:
  friend class ScopedProfileCache;

  mutable std::mutex mutex_;
  // Ordered maps so SaveToFile emits entries in deterministic key order.
  std::map<uint64_t, AttributeStatistics> statistics_
      EFES_GUARDED_BY(mutex_);
  std::map<uint64_t, std::vector<DiscoveredConstraint>> constraints_
      EFES_GUARDED_BY(mutex_);
  std::map<uint64_t, StatisticsSketch> sketches_ EFES_GUARDED_BY(mutex_);
};

/// RAII activation: installs `cache` as ProfileCache::Active() for the
/// current scope and restores the previous handle on destruction.
/// Installing nullptr disables caching for the scope.
class ScopedProfileCache {
 public:
  explicit ScopedProfileCache(ProfileCache* cache);
  ~ScopedProfileCache();

  ScopedProfileCache(const ScopedProfileCache&) = delete;
  ScopedProfileCache& operator=(const ScopedProfileCache&) = delete;

 private:
  ProfileCache* previous_;
};

// --- Serialization (exposed for tests and tooling) ------------------------
// One line of space-separated tokens per entry; strings are
// percent-escaped, doubles render as hexfloat for bit-exact roundtrips.

std::string SerializeStatistics(const AttributeStatistics& stats);
Result<AttributeStatistics> ParseStatistics(std::string_view line);

std::string SerializeConstraints(
    const std::vector<DiscoveredConstraint>& constraints);
Result<std::vector<DiscoveredConstraint>> ParseConstraints(
    std::string_view line);

/// Sketch-state roundtrip (format version 2). Serialization is
/// canonical — equal sketch states produce byte-identical lines — and
/// parsing re-validates the sampling invariant via
/// StatisticsSketch::FromState, so tampered entries degrade to misses.
std::string SerializeSketch(const StatisticsSketch& sketch);
Result<StatisticsSketch> ParseSketch(std::string_view line);

}  // namespace efes

#endif  // EFES_CACHE_PROFILE_CACHE_H_
