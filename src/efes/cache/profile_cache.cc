#include "efes/cache/profile_cache.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "efes/cache/fingerprint.h"
#include "efes/common/fault.h"
#include "efes/common/file_io.h"
#include "efes/telemetry/log.h"
#include "efes/common/metrics.h"

namespace efes {

namespace {

// --- Token encoding -------------------------------------------------------
// Entries are single lines of space-separated tokens. Strings are
// percent-escaped (space, '%', control bytes) and prefixed with '=' so an
// empty string still occupies a token; doubles render as hexfloat, which
// strtod parses back bit-exactly.

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendEscapedBody(std::string* out, std::string_view s) {
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (c == '%' || c <= 0x20 || c == 0x7f) {
      out->push_back('%');
      out->push_back(kHexDigits[c >> 4]);
      out->push_back(kHexDigits[c & 0xf]);
    } else {
      out->push_back(raw);
    }
  }
}

bool HexNibble(char c, unsigned* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<unsigned>(c - '0');
    return true;
  }
  if (c >= 'a' && c <= 'f') {
    *out = static_cast<unsigned>(c - 'a' + 10);
    return true;
  }
  return false;
}

bool UnescapeBody(std::string_view body, std::string* out) {
  out->clear();
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '%') {
      out->push_back(body[i]);
      continue;
    }
    unsigned hi = 0;
    unsigned lo = 0;
    if (i + 2 >= body.size() || !HexNibble(body[i + 1], &hi) ||
        !HexNibble(body[i + 2], &lo)) {
      return false;
    }
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

std::string DoubleToken(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

/// Serializer: appends space-separated tokens to one line.
class TokenWriter {
 public:
  void Uint(uint64_t v) { Raw(std::to_string(v)); }
  void Int(int64_t v) { Raw(std::to_string(v)); }
  void Double(double v) { Raw(DoubleToken(v)); }
  void Flag(bool v) { Raw(v ? "1" : "0"); }
  void String(std::string_view s) {
    std::string token = "=";
    AppendEscapedBody(&token, s);
    Raw(token);
  }
  void ValueToken(const Value& v) {
    switch (v.type()) {
      case DataType::kNull:
        Raw("n");
        return;
      case DataType::kBoolean:
        Raw(v.AsBoolean() ? "b1" : "b0");
        return;
      case DataType::kInteger:
        Raw("i" + std::to_string(v.AsInteger()));
        return;
      case DataType::kReal:
        Raw("r" + DoubleToken(v.AsReal()));
        return;
      case DataType::kText: {
        std::string token = "t";
        AppendEscapedBody(&token, v.AsText());
        Raw(token);
        return;
      }
    }
  }

  std::string TakeLine() { return std::move(line_); }

 private:
  void Raw(std::string token) {
    if (!line_.empty()) line_.push_back(' ');
    line_ += token;
  }
  std::string line_;
};

/// Parser over one entry line. Every getter returns false (and latches
/// the failure) on malformed input, so callers can chain reads and check
/// once; corrupt entries become cache misses, never crashes.
class TokenReader {
 public:
  explicit TokenReader(std::string_view line) : rest_(line) {}

  bool NextToken(std::string_view* token) {
    if (failed_ || rest_.empty()) return Fail();
    size_t space = rest_.find(' ');
    if (space == std::string_view::npos) {
      *token = rest_;
      rest_ = {};
    } else {
      *token = rest_.substr(0, space);
      rest_.remove_prefix(space + 1);
    }
    return !token->empty() || Fail();
  }

  bool NextUint(uint64_t* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    std::string buffer(token);
    char* end = nullptr;
    *out = std::strtoull(buffer.c_str(), &end, 10);
    return (end == buffer.c_str() + buffer.size() && !buffer.empty()) ||
           Fail();
  }

  bool NextSize(size_t* out) {
    uint64_t v = 0;
    if (!NextUint(&v)) return false;
    *out = static_cast<size_t>(v);
    return true;
  }

  bool NextInt(int64_t* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    std::string buffer(token);
    char* end = nullptr;
    *out = std::strtoll(buffer.c_str(), &end, 10);
    return (end == buffer.c_str() + buffer.size() && !buffer.empty()) ||
           Fail();
  }

  bool NextDouble(double* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    std::string buffer(token);
    char* end = nullptr;
    *out = std::strtod(buffer.c_str(), &end);
    return (end == buffer.c_str() + buffer.size() && !buffer.empty()) ||
           Fail();
  }

  bool NextFlag(bool* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    if (token == "1") {
      *out = true;
      return true;
    }
    if (token == "0") {
      *out = false;
      return true;
    }
    return Fail();
  }

  bool NextString(std::string* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    if (token.empty() || token[0] != '=') return Fail();
    return UnescapeBody(token.substr(1), out) || Fail();
  }

  bool NextValue(Value* out) {
    std::string_view token;
    if (!NextToken(&token)) return false;
    std::string buffer(token.substr(1));
    char* end = nullptr;
    switch (token[0]) {
      case 'n':
        *out = Value::Null();
        return buffer.empty() || Fail();
      case 'b':
        if (buffer == "1") {
          *out = Value::Boolean(true);
          return true;
        }
        if (buffer == "0") {
          *out = Value::Boolean(false);
          return true;
        }
        return Fail();
      case 'i': {
        int64_t v = std::strtoll(buffer.c_str(), &end, 10);
        if (end != buffer.c_str() + buffer.size() || buffer.empty()) {
          return Fail();
        }
        *out = Value::Integer(v);
        return true;
      }
      case 'r': {
        double v = std::strtod(buffer.c_str(), &end);
        if (end != buffer.c_str() + buffer.size() || buffer.empty()) {
          return Fail();
        }
        *out = Value::Real(v);
        return true;
      }
      case 't': {
        std::string text;
        if (!UnescapeBody(buffer, &text)) return Fail();
        *out = Value::Text(std::move(text));
        return true;
      }
      default:
        return Fail();
    }
  }

  bool AtEnd() const { return !failed_ && rest_.empty(); }
  bool failed() const { return failed_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view rest_;
  bool failed_ = false;
};

bool ValidDataType(uint64_t raw) {
  return raw <= static_cast<uint64_t>(DataType::kText);
}

bool ValidConstraintKind(uint64_t raw) {
  return raw <= static_cast<uint64_t>(ConstraintKind::kFunctionalDependency);
}

Counter& CacheCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

// --- Statistics serialization ---------------------------------------------

std::string SerializeStatistics(const AttributeStatistics& stats) {
  TokenWriter w;
  w.Uint(static_cast<uint64_t>(stats.evaluated_against));
  w.Uint(stats.fill_status.total_count);
  w.Uint(stats.fill_status.null_count);
  w.Uint(stats.fill_status.uncastable_count);
  w.Double(stats.constancy.constancy);
  w.Uint(stats.constancy.distinct_count);
  w.Uint(stats.constancy.non_null_count);
  w.Flag(stats.text_pattern.has_value());
  if (stats.text_pattern.has_value()) {
    w.Uint(stats.text_pattern->patterns.size());
    for (const auto& [pattern, freq] : stats.text_pattern->patterns) {
      w.String(pattern);
      w.Double(freq);
    }
  }
  w.Flag(stats.char_histogram.has_value());
  if (stats.char_histogram.has_value()) {
    w.Uint(stats.char_histogram->frequencies.size());
    for (const auto& [c, freq] : stats.char_histogram->frequencies) {
      w.Int(static_cast<int64_t>(c));
      w.Double(freq);
    }
  }
  w.Flag(stats.string_length.has_value());
  if (stats.string_length.has_value()) {
    w.Double(stats.string_length->mean);
    w.Double(stats.string_length->stddev);
  }
  w.Flag(stats.mean.has_value());
  if (stats.mean.has_value()) {
    w.Double(stats.mean->mean);
    w.Double(stats.mean->stddev);
  }
  w.Flag(stats.histogram.has_value());
  if (stats.histogram.has_value()) {
    w.Double(stats.histogram->min);
    w.Double(stats.histogram->max);
    w.Uint(stats.histogram->bucket_fractions.size());
    for (double fraction : stats.histogram->bucket_fractions) {
      w.Double(fraction);
    }
  }
  w.Flag(stats.value_range.has_value());
  if (stats.value_range.has_value()) {
    w.Double(stats.value_range->min);
    w.Double(stats.value_range->max);
  }
  w.Double(stats.top_k.coverage);
  w.Uint(stats.top_k.top_values.size());
  for (const auto& [value, freq] : stats.top_k.top_values) {
    w.ValueToken(value);
    w.Double(freq);
  }
  return w.TakeLine();
}

Result<AttributeStatistics> ParseStatistics(std::string_view line) {
  TokenReader r(line);
  AttributeStatistics stats;
  uint64_t type_raw = 0;
  if (!r.NextUint(&type_raw) || !ValidDataType(type_raw)) {
    return Status::ParseError("profile cache: bad statistics type tag");
  }
  stats.evaluated_against = static_cast<DataType>(type_raw);
  bool ok = r.NextSize(&stats.fill_status.total_count) &&
            r.NextSize(&stats.fill_status.null_count) &&
            r.NextSize(&stats.fill_status.uncastable_count) &&
            r.NextDouble(&stats.constancy.constancy) &&
            r.NextSize(&stats.constancy.distinct_count) &&
            r.NextSize(&stats.constancy.non_null_count);
  bool present = false;
  if (ok && r.NextFlag(&present) && present) {
    TextPatternStats patterns;
    size_t count = 0;
    ok = r.NextSize(&count) && count <= TextPatternStats::kMaxPatterns;
    for (size_t i = 0; ok && i < count; ++i) {
      std::string pattern;
      double freq = 0.0;
      ok = r.NextString(&pattern) && r.NextDouble(&freq);
      if (ok) patterns.patterns.emplace_back(std::move(pattern), freq);
    }
    if (ok) stats.text_pattern = std::move(patterns);
  }
  ok = ok && !r.failed();
  if (ok && r.NextFlag(&present) && present) {
    CharHistogramStats chars;
    size_t count = 0;
    ok = r.NextSize(&count) && count <= 256;
    for (size_t i = 0; ok && i < count; ++i) {
      int64_t c = 0;
      double freq = 0.0;
      ok = r.NextInt(&c) && r.NextDouble(&freq) && c >= -128 && c <= 127;
      if (ok) chars.frequencies[static_cast<char>(c)] = freq;
    }
    if (ok) stats.char_histogram = std::move(chars);
  }
  ok = ok && !r.failed();
  if (ok && r.NextFlag(&present) && present) {
    StringLengthStats lengths;
    ok = r.NextDouble(&lengths.mean) && r.NextDouble(&lengths.stddev);
    if (ok) stats.string_length = lengths;
  }
  ok = ok && !r.failed();
  if (ok && r.NextFlag(&present) && present) {
    MeanStats mean;
    ok = r.NextDouble(&mean.mean) && r.NextDouble(&mean.stddev);
    if (ok) stats.mean = mean;
  }
  ok = ok && !r.failed();
  if (ok && r.NextFlag(&present) && present) {
    HistogramStats histogram;
    size_t count = 0;
    ok = r.NextDouble(&histogram.min) && r.NextDouble(&histogram.max) &&
         r.NextSize(&count) && count <= HistogramStats::kBucketCount;
    for (size_t i = 0; ok && i < count; ++i) {
      double fraction = 0.0;
      ok = r.NextDouble(&fraction);
      if (ok) histogram.bucket_fractions.push_back(fraction);
    }
    if (ok) stats.histogram = std::move(histogram);
  }
  ok = ok && !r.failed();
  if (ok && r.NextFlag(&present) && present) {
    ValueRangeStats range;
    ok = r.NextDouble(&range.min) && r.NextDouble(&range.max);
    if (ok) stats.value_range = range;
  }
  size_t top_count = 0;
  ok = ok && r.NextDouble(&stats.top_k.coverage) && r.NextSize(&top_count) &&
       top_count <= TopKStats::kK;
  for (size_t i = 0; ok && i < top_count; ++i) {
    Value value;
    double freq = 0.0;
    ok = r.NextValue(&value) && r.NextDouble(&freq);
    if (ok) stats.top_k.top_values.emplace_back(std::move(value), freq);
  }
  if (!ok || !r.AtEnd()) {
    return Status::ParseError("profile cache: malformed statistics entry");
  }
  return stats;
}

// --- Constraint serialization ---------------------------------------------

std::string SerializeConstraints(
    const std::vector<DiscoveredConstraint>& constraints) {
  TokenWriter w;
  w.Uint(constraints.size());
  for (const DiscoveredConstraint& d : constraints) {
    w.Uint(static_cast<uint64_t>(d.constraint.kind));
    w.String(d.constraint.relation);
    w.Uint(d.constraint.attributes.size());
    for (const std::string& attribute : d.constraint.attributes) {
      w.String(attribute);
    }
    w.String(d.constraint.referenced_relation);
    w.Uint(d.constraint.referenced_attributes.size());
    for (const std::string& attribute : d.constraint.referenced_attributes) {
      w.String(attribute);
    }
    w.Uint(d.support);
  }
  return w.TakeLine();
}

Result<std::vector<DiscoveredConstraint>> ParseConstraints(
    std::string_view line) {
  TokenReader r(line);
  size_t count = 0;
  // Arity cap: a mined constraint spans at most the attributes of one
  // relation; anything larger is a corrupt length field, and rejecting it
  // here keeps a flipped byte from turning into a giant allocation.
  constexpr size_t kMaxArity = 4096;
  constexpr size_t kMaxConstraints = 1 << 20;
  if (!r.NextSize(&count) || count > kMaxConstraints) {
    return Status::ParseError("profile cache: bad constraint count");
  }
  std::vector<DiscoveredConstraint> constraints;
  constraints.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DiscoveredConstraint d;
    uint64_t kind_raw = 0;
    size_t arity = 0;
    bool ok = r.NextUint(&kind_raw) && ValidConstraintKind(kind_raw) &&
              r.NextString(&d.constraint.relation) && r.NextSize(&arity) &&
              arity <= kMaxArity;
    if (ok) d.constraint.kind = static_cast<ConstraintKind>(kind_raw);
    for (size_t a = 0; ok && a < arity; ++a) {
      std::string attribute;
      ok = r.NextString(&attribute);
      if (ok) d.constraint.attributes.push_back(std::move(attribute));
    }
    ok = ok && r.NextString(&d.constraint.referenced_relation) &&
         r.NextSize(&arity) && arity <= kMaxArity;
    for (size_t a = 0; ok && a < arity; ++a) {
      std::string attribute;
      ok = r.NextString(&attribute);
      if (ok) {
        d.constraint.referenced_attributes.push_back(std::move(attribute));
      }
    }
    uint64_t support = 0;
    ok = ok && r.NextUint(&support);
    if (!ok) {
      return Status::ParseError("profile cache: malformed constraint entry");
    }
    d.support = static_cast<size_t>(support);
    constraints.push_back(std::move(d));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("profile cache: trailing constraint tokens");
  }
  return constraints;
}

// --- Sketch serialization --------------------------------------------------

std::string SerializeSketch(const StatisticsSketch& sketch) {
  const SketchState state = sketch.ExportState();
  TokenWriter w;
  w.Uint(static_cast<uint64_t>(state.target_type));
  w.Uint(static_cast<uint64_t>(state.mode));
  w.Uint(state.cap_bytes);
  w.Uint(state.level);
  w.Uint(state.total_count);
  w.Uint(state.null_count);
  w.Uint(state.uncastable_count);
  w.Uint(state.numeric_count);
  w.Double(state.numeric_min);
  w.Double(state.numeric_max);
  w.Uint(state.entries.size());
  for (const auto& [value, count] : state.entries) {
    w.ValueToken(value);
    w.Uint(count);
  }
  return w.TakeLine();
}

Result<StatisticsSketch> ParseSketch(std::string_view line) {
  TokenReader r(line);
  SketchState state;
  uint64_t type_raw = 0;
  uint64_t mode_raw = 0;
  uint64_t level = 0;
  uint64_t entry_count = 0;
  // Entry cap: tracked values are bounded by the budget (64+ bytes per
  // entry), so anything beyond a million entries is a corrupt length
  // field, not a plausible sketch.
  constexpr uint64_t kMaxEntries = 1 << 20;
  bool ok = r.NextUint(&type_raw) && ValidDataType(type_raw) &&
            r.NextUint(&mode_raw) &&
            mode_raw <= static_cast<uint64_t>(ApproximationMode::kAuto) &&
            r.NextUint(&state.cap_bytes) && r.NextUint(&level) &&
            level <= 63 && r.NextUint(&state.total_count) &&
            r.NextUint(&state.null_count) &&
            r.NextUint(&state.uncastable_count) &&
            r.NextUint(&state.numeric_count) &&
            r.NextDouble(&state.numeric_min) &&
            r.NextDouble(&state.numeric_max) && r.NextUint(&entry_count) &&
            entry_count <= kMaxEntries;
  if (ok) {
    state.target_type = static_cast<DataType>(type_raw);
    state.mode = static_cast<ApproximationMode>(mode_raw);
    state.level = static_cast<uint32_t>(level);
    state.entries.reserve(static_cast<size_t>(entry_count));
  }
  for (uint64_t i = 0; ok && i < entry_count; ++i) {
    Value value;
    uint64_t count = 0;
    ok = r.NextValue(&value) && r.NextUint(&count);
    if (ok) state.entries.emplace_back(std::move(value), count);
  }
  if (!ok || !r.AtEnd()) {
    return Status::ParseError("profile cache: malformed sketch entry");
  }
  // FromState re-checks the sampling threshold, duplicate values, and
  // counter consistency — a mangled-but-parseable line still fails here.
  Result<StatisticsSketch> sketch = StatisticsSketch::FromState(state);
  if (!sketch.ok()) {
    return Status::ParseError("profile cache: inconsistent sketch entry (" +
                              sketch.status().message() + ")");
  }
  return sketch;
}

// --- ProfileCache ----------------------------------------------------------

namespace {
std::atomic<ProfileCache*> g_active_cache{nullptr};
}  // namespace

ProfileCache* ProfileCache::Active() {
  return g_active_cache.load(std::memory_order_acquire);
}

ScopedProfileCache::ScopedProfileCache(ProfileCache* cache)
    : previous_(g_active_cache.exchange(cache, std::memory_order_acq_rel)) {}

ScopedProfileCache::~ScopedProfileCache() {
  g_active_cache.store(previous_, std::memory_order_release);
}

std::optional<AttributeStatistics> ProfileCache::LookupStatistics(
    uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = statistics_.find(key);
  if (it == statistics_.end()) {
    CacheCounter("cache.misses").Increment();
    return std::nullopt;
  }
  CacheCounter("cache.hits").Increment();
  return it->second;
}

void ProfileCache::StoreStatistics(uint64_t key,
                                   const AttributeStatistics& stats) {
  CacheCounter("cache.stores").Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  statistics_.insert_or_assign(key, stats);
}

std::optional<std::vector<DiscoveredConstraint>>
ProfileCache::LookupConstraints(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = constraints_.find(key);
  if (it == constraints_.end()) {
    CacheCounter("cache.misses").Increment();
    return std::nullopt;
  }
  CacheCounter("cache.hits").Increment();
  return it->second;
}

void ProfileCache::StoreConstraints(
    uint64_t key, const std::vector<DiscoveredConstraint>& constraints) {
  CacheCounter("cache.stores").Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  constraints_.insert_or_assign(key, constraints);
}

std::optional<StatisticsSketch> ProfileCache::LookupSketch(
    uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sketches_.find(key);
  if (it == sketches_.end()) {
    CacheCounter("cache.misses").Increment();
    return std::nullopt;
  }
  CacheCounter("cache.hits").Increment();
  return it->second;
}

void ProfileCache::StoreSketch(uint64_t key, const StatisticsSketch& sketch) {
  CacheCounter("cache.stores").Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  sketches_.insert_or_assign(key, sketch);
}

size_t ProfileCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return statistics_.size() + constraints_.size() + sketches_.size();
}

void ProfileCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  statistics_.clear();
  constraints_.clear();
  sketches_.clear();
}

std::string ProfileCache::FilePathInDirectory(const std::string& directory) {
  if (directory.empty() || directory.back() == '/') {
    return directory + "profile_cache.efes";
  }
  return directory + "/profile_cache.efes";
}

Status ProfileCache::LoadFromFile(const std::string& path) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("cache.load"));
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) {
    // Missing or unreadable snapshot: a cold cache, not a failure.
    EFES_LOG(LogLevel::kInfo,
             "cache: no snapshot at " + path + " (" +
                 content.status().ToString() + "), starting cold");
    return Status::OK();
  }
  CacheCounter("cache.bytes").Increment(content->size());
  std::string_view rest = *content;
  auto next_line = [&rest](std::string_view* line) {
    if (rest.empty()) return false;
    size_t newline = rest.find('\n');
    if (newline == std::string_view::npos) {
      *line = rest;
      rest = {};
    } else {
      *line = rest.substr(0, newline);
      rest.remove_prefix(newline + 1);
    }
    return true;
  };
  std::string_view header;
  const std::string expected_header =
      "EFESCACHE " + std::to_string(kProfileCacheFormatVersion);
  if (!next_line(&header) || header != expected_header) {
    // Unknown version or mangled header: ignore the snapshot wholesale —
    // the format owns its compatibility story via the version bump.
    EFES_LOG(LogLevel::kWarn,
             "cache: ignoring snapshot " + path +
                 " (version mismatch or corrupt header)");
    return Status::OK();
  }
  size_t loaded = 0;
  size_t corrupt = 0;
  std::string_view line;
  while (next_line(&line)) {
    if (line.empty()) continue;
    bool entry_ok = false;
    if (line.size() > 19 &&
        (line[0] == 'S' || line[0] == 'C' || line[0] == 'K') &&
        line[1] == ' ' && line[18] == ' ') {
      std::string key_text(line.substr(2, 16));
      char* end = nullptr;
      uint64_t key = std::strtoull(key_text.c_str(), &end, 16);
      if (end == key_text.c_str() + key_text.size()) {
        std::string_view payload = line.substr(19);
        if (line[0] == 'S') {
          Result<AttributeStatistics> stats = ParseStatistics(payload);
          if (stats.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            statistics_.insert_or_assign(key, *std::move(stats));
            entry_ok = true;
          }
        } else if (line[0] == 'C') {
          Result<std::vector<DiscoveredConstraint>> constraints =
              ParseConstraints(payload);
          if (constraints.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            constraints_.insert_or_assign(key, *std::move(constraints));
            entry_ok = true;
          }
        } else {
          Result<StatisticsSketch> sketch = ParseSketch(payload);
          if (sketch.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            sketches_.insert_or_assign(key, *std::move(sketch));
            entry_ok = true;
          }
        }
      }
    }
    if (entry_ok) {
      ++loaded;
    } else {
      ++corrupt;
    }
  }
  if (corrupt > 0) {
    CacheCounter("cache.load.corrupt_entries").Increment(corrupt);
    EFES_LOG(LogLevel::kWarn,
             "cache: skipped " + std::to_string(corrupt) +
                 " corrupt entrie(s) in " + path);
  }
  EFES_LOG(LogLevel::kInfo, "cache: loaded " + std::to_string(loaded) +
                                " entrie(s) from " + path);
  return Status::OK();
}

Status ProfileCache::SaveToFile(const std::string& path) const {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("cache.save"));
  std::ostringstream out;
  out << "EFESCACHE " << kProfileCacheFormatVersion << "\n";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, stats] : statistics_) {
      out << "S " << FingerprintToHex(key) << ' '
          << SerializeStatistics(stats) << "\n";
    }
    for (const auto& [key, constraints] : constraints_) {
      out << "C " << FingerprintToHex(key) << ' '
          << SerializeConstraints(constraints) << "\n";
    }
    for (const auto& [key, sketch] : sketches_) {
      out << "K " << FingerprintToHex(key) << ' ' << SerializeSketch(sketch)
          << "\n";
    }
  }
  std::error_code ec;
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    // Best effort: when this fails, WriteFileAtomic reports the real error.
    std::filesystem::create_directories(parent, ec);
  }
  std::string document = out.str();
  EFES_RETURN_IF_ERROR(WriteFileAtomic(path, document));
  CacheCounter("cache.bytes").Increment(document.size());
  return Status::OK();
}

}  // namespace efes
