#include "efes/cache/fingerprint.h"

#include <cstring>

namespace efes {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Per-ingredient tags keep the encoding prefix-free across types.
enum class MixTag : uint64_t {
  kNull = 1,
  kBoolean,
  kInteger,
  kReal,
  kText,
  kColumn,
  kDatabase,
  kRelation,
  kConstraint,
};

}  // namespace

Fingerprinter& Fingerprinter::MixBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= kFnvPrime;
  }
  return *this;
}

Fingerprinter& Fingerprinter::MixUint64(uint64_t v) {
  // Fixed little-endian byte order, so fingerprints (and therefore cache
  // files) are portable across hosts.
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return MixBytes(bytes, sizeof(bytes));
}

Fingerprinter& Fingerprinter::MixDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixUint64(bits);
}

Fingerprinter& Fingerprinter::MixString(std::string_view s) {
  MixUint64(s.size());
  return MixBytes(s.data(), s.size());
}

Fingerprinter& Fingerprinter::MixValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return MixUint64(static_cast<uint64_t>(MixTag::kNull));
    case DataType::kBoolean:
      MixUint64(static_cast<uint64_t>(MixTag::kBoolean));
      return MixBool(v.AsBoolean());
    case DataType::kInteger:
      MixUint64(static_cast<uint64_t>(MixTag::kInteger));
      return MixUint64(static_cast<uint64_t>(v.AsInteger()));
    case DataType::kReal:
      MixUint64(static_cast<uint64_t>(MixTag::kReal));
      return MixDouble(v.AsReal());
    case DataType::kText:
      MixUint64(static_cast<uint64_t>(MixTag::kText));
      return MixString(v.AsText());
  }
  return *this;
}

uint64_t FingerprintColumn(const std::vector<Value>& column,
                           DataType target_type) {
  Fingerprinter fp;
  fp.MixUint64(static_cast<uint64_t>(MixTag::kColumn));
  fp.MixUint64(static_cast<uint64_t>(target_type));
  fp.MixUint64(column.size());
  for (const Value& value : column) fp.MixValue(value);
  return fp.digest();
}

void MixConstraint(Fingerprinter& fp, const Constraint& constraint) {
  fp.MixUint64(static_cast<uint64_t>(MixTag::kConstraint));
  fp.MixUint64(static_cast<uint64_t>(constraint.kind));
  fp.MixString(constraint.relation);
  fp.MixUint64(constraint.attributes.size());
  for (const std::string& attribute : constraint.attributes) {
    fp.MixString(attribute);
  }
  fp.MixString(constraint.referenced_relation);
  fp.MixUint64(constraint.referenced_attributes.size());
  for (const std::string& attribute : constraint.referenced_attributes) {
    fp.MixString(attribute);
  }
}

uint64_t FingerprintDatabase(const Database& database) {
  Fingerprinter fp;
  fp.MixUint64(static_cast<uint64_t>(MixTag::kDatabase));
  const Schema& schema = database.schema();
  fp.MixString(schema.name());
  fp.MixUint64(schema.relations().size());
  for (const RelationDef& relation : schema.relations()) {
    fp.MixUint64(static_cast<uint64_t>(MixTag::kRelation));
    fp.MixString(relation.name());
    fp.MixUint64(relation.attributes().size());
    for (const AttributeDef& attribute : relation.attributes()) {
      fp.MixString(attribute.name);
      fp.MixUint64(static_cast<uint64_t>(attribute.type));
    }
  }
  fp.MixUint64(schema.constraints().size());
  for (const Constraint& constraint : schema.constraints()) {
    MixConstraint(fp, constraint);
  }
  // Instance data, column-major in schema order (matches Table storage,
  // so no per-row materialization).
  for (const Table& table : database.tables()) {
    fp.MixUint64(table.row_count());
    for (size_t c = 0; c < table.column_count(); ++c) {
      for (const Value& value : table.column(c)) fp.MixValue(value);
    }
  }
  return fp.digest();
}

std::string FingerprintToHex(uint64_t fingerprint) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<size_t>(i)] = kDigits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return hex;
}

}  // namespace efes
