// The structural-conflict estimation module (Section 4): plugs the
// structure conflict detector and the structure repair planner into the
// EFES framework.

#ifndef EFES_STRUCTURE_STRUCTURE_MODULE_H_
#define EFES_STRUCTURE_STRUCTURE_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "efes/core/module.h"
#include "efes/structure/conflict_detector.h"
#include "efes/structure/repair_planner.h"

namespace efes {

class StructureComplexityReport : public ComplexityReport {
 public:
  StructureComplexityReport(CsgGraph target_graph,
                            std::vector<SourceStructureAssessment> sources)
      : target_graph_(std::move(target_graph)),
        sources_(std::move(sources)) {}

  const CsgGraph& target_graph() const { return target_graph_; }
  const std::vector<SourceStructureAssessment>& sources() const {
    return sources_;
  }

  std::string module_name() const override { return "structure"; }

  /// Renders Table 3: "Constraint in target schema | Violation count in
  /// source data" (per source database, aggregated over defect sides).
  std::string ToText() const override;

  size_t ProblemCount() const override;

 private:
  CsgGraph target_graph_;
  std::vector<SourceStructureAssessment> sources_;
};

class StructureModule : public EstimationModule {
 public:
  struct Options {
    ConflictDetectorOptions detector;
    RepairPlannerOptions planner;
  };

  StructureModule() = default;
  explicit StructureModule(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "structure"; }

  Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario& scenario) const override;

  Result<std::vector<Task>> PlanTasks(
      const ComplexityReport& report, ExpectedQuality quality,
      const ExecutionSettings& settings) const override;

 private:
  Options options_;
};

}  // namespace efes

#endif  // EFES_STRUCTURE_STRUCTURE_MODULE_H_
