#include "efes/structure/conflict_detector.h"

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <optional>
#include <set>
#include <sstream>

namespace efes {

namespace {

/// Maps target nodes to source nodes via the correspondences. Table nodes
/// map through relation-level correspondences (falling back to the first
/// source relation contributing attributes); attribute nodes map through
/// attribute-level correspondences.
std::map<NodeId, NodeId> BuildNodeMapping(
    const CsgGraph& target_graph, const CsgGraph& source_graph,
    const CorrespondenceSet& correspondences) {
  std::map<NodeId, NodeId> mapping;
  for (const CsgNode& target_node : target_graph.nodes()) {
    if (target_node.kind == CsgNodeKind::kTable) {
      std::string source_relation;
      auto relation_corr =
          correspondences.RelationCorrespondenceFor(target_node.relation);
      if (relation_corr.ok()) {
        source_relation = relation_corr->source_relation;
      } else {
        // Fallback: anchor at the first source relation that feeds any
        // attribute of this target relation.
        std::vector<Correspondence> attrs =
            correspondences.AttributesInto(target_node.relation);
        if (!attrs.empty()) source_relation = attrs.front().source_relation;
      }
      if (source_relation.empty()) continue;
      auto source_node = source_graph.FindTableNode(source_relation);
      if (source_node.ok()) mapping[target_node.id] = *source_node;
    } else {
      std::vector<Correspondence> attrs = correspondences.AttributesInto(
          target_node.relation, target_node.attribute);
      if (attrs.empty()) continue;
      auto source_node = source_graph.FindAttributeNode(
          attrs.front().source_relation, attrs.front().source_attribute);
      if (source_node.ok()) mapping[target_node.id] = *source_node;
    }
  }
  return mapping;
}

std::string DescribeConstraint(const CsgGraph& graph,
                               const CsgRelationship& rel) {
  std::ostringstream oss;
  oss << "k(" << graph.node(rel.from).QualifiedName()
      << (rel.kind == CsgEdgeKind::kEquality ? " ==> " : " -> ")
      << graph.node(rel.to).QualifiedName() << ") = "
      << rel.prescribed.ToString();
  return oss.str();
}

/// The directed attribute->table relationship of (relation, attribute) in
/// `graph`, or nullopt.
std::optional<RelationshipId> FindAttributeToTable(
    const CsgGraph& graph, const std::string& relation,
    const std::string& attribute) {
  auto attr_node = graph.FindAttributeNode(relation, attribute);
  if (!attr_node.ok()) return std::nullopt;
  for (RelationshipId rel_id : graph.OutgoingOf(*attr_node)) {
    const CsgRelationship& rel = graph.relationship(rel_id);
    if (rel.kind == CsgEdgeKind::kAttribute &&
        graph.node(rel.to).kind == CsgNodeKind::kTable) {
      return rel_id;
    }
  }
  return std::nullopt;
}

/// Detects violations of composite (n-ary) unique constraints whose key
/// attributes are all fed from one source relation. The static inference
/// uses the inverse join cardinality (Lemma 3): the number of tuples a
/// combination of key values can appear in is bounded by the product of
/// the per-attribute bounds; the actual count projects the source
/// instance onto the corresponded columns.
void DetectCompositeKeyConflicts(const IntegrationScenario& scenario,
                                 const SourceBinding& source,
                                 const CsgGraph& target_graph,
                                 SourceStructureAssessment* assessment) {
  const Schema& target_schema = scenario.target.schema();
  const Schema& source_schema = source.database.schema();
  for (const Constraint& constraint : target_schema.constraints()) {
    if (constraint.kind != ConstraintKind::kPrimaryKey &&
        constraint.kind != ConstraintKind::kUnique) {
      continue;
    }
    if (constraint.attributes.size() < 2) continue;  // unary handled above

    // All key attributes must be fed from the same source relation.
    std::string source_relation;
    std::vector<std::string> source_attributes;
    bool complete = true;
    for (const std::string& attribute : constraint.attributes) {
      std::vector<Correspondence> corrs = source.correspondences
                                              .AttributesInto(
                                                  constraint.relation,
                                                  attribute);
      if (corrs.empty()) {
        complete = false;
        break;
      }
      if (source_relation.empty()) {
        source_relation = corrs.front().source_relation;
      } else if (source_relation != corrs.front().source_relation) {
        complete = false;
        break;
      }
      source_attributes.push_back(corrs.front().source_attribute);
    }
    if (!complete) continue;

    // Static short-circuit: if any contributing attribute is unique on
    // its own in the source, every combination is unique too.
    bool statically_unique = false;
    Cardinality inferred = Cardinality::Exactly(1);
    bool first = true;
    for (const std::string& attribute : source_attributes) {
      if (source_schema.IsUniqueAttribute(source_relation, attribute)) {
        statically_unique = true;
      }
      Cardinality backward =
          source_schema.IsUniqueAttribute(source_relation, attribute)
              ? Cardinality::Exactly(1)
              : Cardinality::AtLeast(1);
      inferred = first ? backward
                       : Cardinality::JoinInverse(inferred, backward);
      first = false;
    }
    if (statically_unique) continue;

    auto table_result = source.database.table(source_relation);
    if (!table_result.ok()) continue;
    const Table& table = **table_result;
    std::vector<size_t> columns;
    bool resolvable = true;
    for (const std::string& attribute : source_attributes) {
      auto index = table.def().AttributeIndex(attribute);
      if (!index.has_value()) {
        resolvable = false;
        break;
      }
      columns.push_back(*index);
    }
    if (!resolvable) continue;
    size_t duplicates = table.CountDuplicateProjections(columns);
    if (duplicates == 0) continue;

    std::optional<RelationshipId> anchor = FindAttributeToTable(
        target_graph, constraint.relation, constraint.attributes[0]);
    if (!anchor.has_value()) continue;

    StructureConflict conflict;
    conflict.source_database = source.database.name();
    conflict.target_relationship = *anchor;
    conflict.target_constraint = constraint.ToString();
    conflict.kind = StructuralConflictKind::kUniqueViolated;
    conflict.excess = true;
    conflict.prescribed = Cardinality::Exactly(1);
    conflict.inferred = inferred;
    std::ostringstream path;
    path << source_relation << "(";
    for (size_t i = 0; i < source_attributes.size(); ++i) {
      if (i > 0) path << ", ";
      path << source_attributes[i];
    }
    path << ") joined per Lemma 3";
    conflict.source_path = path.str();
    conflict.violation_count = duplicates;
    assessment->conflicts.push_back(std::move(conflict));
  }
}

/// Detects violations of target functional dependencies X -> Y whose
/// determinant and dependent attributes are all fed from one source
/// relation: a determinant group with several distinct dependent
/// projections cannot satisfy the FD after integration. Anchored at the
/// dependent attribute's table->attribute relationship and classified as
/// "multiple attribute values" (per determinant group, the dependent
/// effectively receives several values).
void DetectFunctionalDependencyConflicts(
    const IntegrationScenario& scenario, const SourceBinding& source,
    const CsgGraph& target_graph, SourceStructureAssessment* assessment) {
  const Schema& target_schema = scenario.target.schema();
  for (const Constraint& constraint : target_schema.constraints()) {
    if (constraint.kind != ConstraintKind::kFunctionalDependency) continue;

    // Resolve determinant + dependent attributes from one source relation.
    std::string source_relation;
    std::vector<std::string> lhs_attributes;
    std::vector<std::string> rhs_attributes;
    bool complete = true;
    auto resolve = [&](const std::vector<std::string>& target_attributes,
                       std::vector<std::string>* source_attributes) {
      for (const std::string& attribute : target_attributes) {
        std::vector<Correspondence> corrs =
            source.correspondences.AttributesInto(constraint.relation,
                                                  attribute);
        if (corrs.empty()) {
          complete = false;
          return;
        }
        if (source_relation.empty()) {
          source_relation = corrs.front().source_relation;
        } else if (source_relation != corrs.front().source_relation) {
          complete = false;
          return;
        }
        source_attributes->push_back(corrs.front().source_attribute);
      }
    };
    resolve(constraint.attributes, &lhs_attributes);
    if (complete) resolve(constraint.referenced_attributes, &rhs_attributes);
    if (!complete) continue;

    // Static short-circuit: the same FD declared on the source relation
    // guarantees the target FD.
    bool statically_safe = false;
    for (const Constraint& c : source.database.schema().constraints()) {
      if (c.kind == ConstraintKind::kFunctionalDependency &&
          c.relation == source_relation && c.attributes == lhs_attributes &&
          c.referenced_attributes == rhs_attributes) {
        statically_safe = true;
      }
      // A unique determinant also implies the FD.
      if ((c.kind == ConstraintKind::kUnique ||
           c.kind == ConstraintKind::kPrimaryKey) &&
          c.relation == source_relation && c.attributes == lhs_attributes) {
        statically_safe = true;
      }
    }
    if (statically_safe) continue;

    auto table_result = source.database.table(source_relation);
    if (!table_result.ok()) continue;
    const Table& table = **table_result;
    std::vector<size_t> lhs_columns;
    std::vector<size_t> rhs_columns;
    bool resolvable = true;
    for (const std::string& attribute : lhs_attributes) {
      auto index = table.def().AttributeIndex(attribute);
      if (!index.has_value()) { resolvable = false; break; }
      lhs_columns.push_back(*index);
    }
    for (const std::string& attribute : rhs_attributes) {
      auto index = table.def().AttributeIndex(attribute);
      if (!index.has_value()) { resolvable = false; break; }
      rhs_columns.push_back(*index);
    }
    if (!resolvable) continue;

    // Count determinant groups with more than one dependent projection.
    std::map<std::string, std::set<std::string>> dependents_of;
    std::map<std::string, size_t> group_sizes;
    for (size_t r = 0; r < table.row_count(); ++r) {
      std::string lhs_key;
      bool lhs_null = false;
      for (size_t c : lhs_columns) {
        const Value& value = table.at(r, c);
        if (value.is_null()) { lhs_null = true; break; }
        lhs_key += value.ToString();
        lhs_key += '\x1f';
      }
      if (lhs_null) continue;
      std::string rhs_key;
      for (size_t c : rhs_columns) {
        rhs_key += table.at(r, c).ToString();
        rhs_key += '\x1f';
      }
      dependents_of[lhs_key].insert(rhs_key);
      ++group_sizes[lhs_key];
    }
    size_t violating = 0;
    for (const auto& [key, dependents] : dependents_of) {
      if (dependents.size() > 1) violating += group_sizes[key];
    }
    if (violating == 0) continue;

    std::optional<RelationshipId> anchor = FindAttributeToTable(
        target_graph, constraint.relation,
        constraint.referenced_attributes[0]);
    if (!anchor.has_value()) continue;
    // The conflict is excess on the *inverse* (table -> dependent attr):
    // per determinant group, several dependent values.
    RelationshipId table_to_attr =
        target_graph.relationship(*anchor).inverse;

    StructureConflict conflict;
    conflict.source_database = source.database.name();
    conflict.target_relationship = table_to_attr;
    conflict.target_constraint = constraint.ToString();
    conflict.kind = StructuralConflictKind::kMultipleAttributeValues;
    conflict.excess = true;
    conflict.prescribed = Cardinality::Exactly(1);
    conflict.inferred = Cardinality::AtLeast(1);
    conflict.source_path =
        source_relation + " grouped by determinant (FD over complex "
        "relationship)";
    conflict.violation_count = violating;
    assessment->conflicts.push_back(std::move(conflict));
  }
}

/// Detects unique violations that only emerge when contributions are
/// combined: several sources feeding the same unique target attribute,
/// or a source feeding an attribute whose target table already holds
/// data. Inference: Lemma 2's overlapping union of the per-contribution
/// cardinalities; count: distinct values present in more than one
/// contribution.
void DetectCrossSourceConflicts(const IntegrationScenario& scenario,
                                const CsgGraph& target_graph,
                                SourceStructureAssessment* combined) {
  const Schema& target_schema = scenario.target.schema();
  for (const RelationDef& relation : target_schema.relations()) {
    for (const AttributeDef& attribute : relation.attributes()) {
      if (!target_schema.IsUniqueAttribute(relation.name(),
                                           attribute.name)) {
        continue;
      }
      // Gather the distinct-value set of each contribution.
      std::vector<std::unordered_set<Value, ValueHash>> contributions;
      for (const SourceBinding& source : scenario.sources) {
        std::vector<Correspondence> corrs =
            source.correspondences.AttributesInto(relation.name(),
                                                  attribute.name);
        for (const Correspondence& corr : corrs) {
          auto table = source.database.table(corr.source_relation);
          if (!table.ok()) continue;
          auto index = (*table)->def().AttributeIndex(corr.source_attribute);
          if (!index.has_value()) continue;
          std::vector<Value> distinct = (*table)->DistinctValues(*index);
          if (!distinct.empty()) {
            contributions.emplace_back(distinct.begin(), distinct.end());
          }
        }
      }
      if (contributions.empty()) continue;  // attribute receives no data
      auto target_table = scenario.target.table(relation.name());
      if (target_table.ok()) {
        auto index = (*target_table)->def().AttributeIndex(attribute.name);
        if (index.has_value()) {
          std::vector<Value> existing =
              (*target_table)->DistinctValues(*index);
          if (!existing.empty()) {
            contributions.emplace_back(existing.begin(), existing.end());
          }
        }
      }
      if (contributions.size() < 2) continue;

      // Count values occurring in two or more contributions.
      std::unordered_map<Value, size_t, ValueHash> occurrence;
      for (const auto& contribution : contributions) {
        for (const Value& value : contribution) ++occurrence[value];
      }
      size_t overlapping = 0;
      for (const auto& [value, count] : occurrence) {
        if (count > 1) ++overlapping;
      }
      if (overlapping == 0) continue;

      std::optional<RelationshipId> anchor = FindAttributeToTable(
          target_graph, relation.name(), attribute.name);
      if (!anchor.has_value()) continue;

      Cardinality inferred = Cardinality::Exactly(1);
      for (size_t i = 1; i < contributions.size(); ++i) {
        inferred = Cardinality::UnionOverlapping(inferred,
                                                 Cardinality::Exactly(1));
      }

      StructureConflict conflict;
      conflict.source_database = "(combined)";
      conflict.target_relationship = *anchor;
      conflict.target_constraint =
          "k(" + relation.name() + "." + attribute.name + " -> " +
          relation.name() + ") = 1 across " +
          std::to_string(contributions.size()) + " contributions";
      conflict.kind = StructuralConflictKind::kUniqueViolated;
      conflict.excess = true;
      conflict.prescribed = Cardinality::Exactly(1);
      conflict.inferred = inferred;
      conflict.source_path = "union of contributions per Lemma 2";
      conflict.violation_count = overlapping;
      combined->conflicts.push_back(std::move(conflict));
    }
  }
}

}  // namespace

std::string_view StructuralConflictKindToString(
    StructuralConflictKind kind) {
  switch (kind) {
    case StructuralConflictKind::kNotNullViolated:
      return "Not null violated";
    case StructuralConflictKind::kUniqueViolated:
      return "Unique violated";
    case StructuralConflictKind::kMultipleAttributeValues:
      return "Multiple attribute values";
    case StructuralConflictKind::kValueWithoutTuple:
      return "Value w/o enclosing tuple";
    case StructuralConflictKind::kForeignKeyViolated:
      return "FK violated";
  }
  return "unknown";
}

StructuralConflictKind ClassifyConflict(const CsgGraph& graph,
                                        const CsgRelationship& relationship,
                                        bool excess) {
  if (relationship.kind == CsgEdgeKind::kEquality) {
    return StructuralConflictKind::kForeignKeyViolated;
  }
  const CsgNode& origin = graph.node(relationship.from);
  if (origin.kind == CsgNodeKind::kTable) {
    // table -> attribute: too many values per tuple, or a missing
    // mandatory value.
    return excess ? StructuralConflictKind::kMultipleAttributeValues
                  : StructuralConflictKind::kNotNullViolated;
  }
  // attribute -> table: a value in several tuples (unique violated), or a
  // value without any enclosing tuple.
  return excess ? StructuralConflictKind::kUniqueViolated
                : StructuralConflictKind::kValueWithoutTuple;
}

Result<std::vector<SourceStructureAssessment>> DetectStructureConflicts(
    const IntegrationScenario& scenario, CsgGraph* target_graph_out,
    const ConflictDetectorOptions& options) {
  const PathSearchOptions& path_options = options.path_search;
  if (target_graph_out == nullptr) {
    return Status::InvalidArgument("target_graph_out must not be null");
  }
  *target_graph_out = BuildCsgGraph(scenario.target);
  const CsgGraph& target_graph = *target_graph_out;

  std::vector<SourceStructureAssessment> assessments;
  for (const SourceBinding& source : scenario.sources) {
    Csg source_csg = BuildCsg(source.database);
    std::map<NodeId, NodeId> node_mapping = BuildNodeMapping(
        target_graph, source_csg.graph, source.correspondences);

    SourceStructureAssessment assessment;
    assessment.source_database = source.database.name();

    for (const CsgRelationship& rel : target_graph.relationships()) {
      // Unconstrained relationships cannot be violated.
      if (rel.prescribed == Cardinality::Any()) continue;

      auto from_it = node_mapping.find(rel.from);
      auto to_it = node_mapping.find(rel.to);
      if (from_it == node_mapping.end() || to_it == node_mapping.end()) {
        continue;  // no source information about this relationship
      }

      std::optional<PathMatch> best = FindBestPath(
          source_csg.graph, from_it->second, to_it->second, path_options);

      auto emit = [&](bool excess, const Cardinality& inferred,
                      const std::string& path_desc, size_t count) {
        if (count == 0) return;
        StructureConflict conflict;
        conflict.source_database = source.database.name();
        conflict.target_relationship = rel.id;
        conflict.target_constraint = DescribeConstraint(target_graph, rel);
        conflict.kind = ClassifyConflict(target_graph, rel, excess);
        conflict.excess = excess;
        conflict.prescribed = rel.prescribed;
        conflict.inferred = inferred;
        conflict.source_path = path_desc;
        conflict.violation_count = count;
        assessment.conflicts.push_back(std::move(conflict));
      };

      if (!best.has_value()) {
        // No source relationship realizes the target relationship: every
        // element ends up with zero links.
        if (!rel.prescribed.Contains(0)) {
          size_t affected =
              source_csg.instance.ElementCount(from_it->second);
          emit(/*excess=*/false, Cardinality::Exactly(0), "(no source path)",
               affected);
        }
        continue;
      }

      if (best->inferred.IsSubsetOf(rel.prescribed)) {
        continue;  // statically guaranteed to fit
      }

      // Count actually conflicting elements, split by defect side.
      size_t too_few = 0;
      size_t too_many = 0;
      for (const auto& [element, degree] : source_csg.instance.PathOutDegrees(
               source_csg.graph, best->path)) {
        if (rel.prescribed.Contains(degree)) continue;
        if (degree < rel.prescribed.min()) {
          ++too_few;
        } else {
          ++too_many;
        }
      }
      std::string path_desc = DescribePath(source_csg.graph, best->path);
      emit(/*excess=*/false, best->inferred, path_desc, too_few);
      emit(/*excess=*/true, best->inferred, path_desc, too_many);
    }

    if (options.detect_composite_keys) {
      DetectCompositeKeyConflicts(scenario, source, target_graph,
                                  &assessment);
    }
    if (options.detect_functional_dependencies) {
      DetectFunctionalDependencyConflicts(scenario, source, target_graph,
                                          &assessment);
    }
    assessments.push_back(std::move(assessment));
  }

  if (options.detect_cross_source_conflicts) {
    SourceStructureAssessment combined;
    combined.source_database = "(combined)";
    DetectCrossSourceConflicts(scenario, target_graph, &combined);
    if (!combined.conflicts.empty()) {
      assessments.push_back(std::move(combined));
    }
  }
  return assessments;
}

}  // namespace efes
