// The structure conflict detector (Section 4.1).
//
// Source and target schemas are converted into CSGs; each atomic target
// relationship is matched — via the correspondences and a graph search —
// to its most concise source relationship; comparing the inferred source
// cardinality with the prescribed target cardinality reveals structural
// conflicts, which are then counted against the actual source data
// (Table 3: "Constraint in target schema | Violation count in source
// data").

#ifndef EFES_STRUCTURE_CONFLICT_DETECTOR_H_
#define EFES_STRUCTURE_CONFLICT_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "efes/core/integration_scenario.h"
#include "efes/csg/builder.h"
#include "efes/csg/path_search.h"

namespace efes {

/// The five structural conflict classes of Table 4.
enum class StructuralConflictKind {
  kNotNullViolated,          // tuple without a mandatory value
  kUniqueViolated,           // value in more than one tuple
  kMultipleAttributeValues,  // tuple with several values for one attribute
  kValueWithoutTuple,        // value not enclosed by any tuple
  kForeignKeyViolated,       // dangling reference
};

std::string_view StructuralConflictKindToString(StructuralConflictKind kind);

/// One detected conflict between a target constraint and the (conceptually
/// integrated) source data.
struct StructureConflict {
  std::string source_database;
  /// Directed relationship id within the *target* CSG graph.
  RelationshipId target_relationship = 0;
  /// E.g. "κ(records -> records.artist) = 1".
  std::string target_constraint;
  StructuralConflictKind kind = StructuralConflictKind::kNotNullViolated;
  /// True when elements carry *more* links than prescribed; false when
  /// they carry fewer.
  bool excess = false;
  Cardinality prescribed;
  /// Lemma-1 inference over the matched source relationship.
  Cardinality inferred;
  /// Human-readable matched source path.
  std::string source_path;
  /// Number of actually conflicting source data elements.
  size_t violation_count = 0;
  /// Provenance-node id of this conflict (0 = no recorder active).
  uint64_t provenance = 0;
};

/// All conflicts of one source database against the target.
struct SourceStructureAssessment {
  std::string source_database;
  std::vector<StructureConflict> conflicts;
};

/// Classifies a defective target relationship into a Table 4 row, from
/// the relationship's edge kind, its origin node kind, and the defect
/// side.
StructuralConflictKind ClassifyConflict(const CsgGraph& graph,
                                        const CsgRelationship& relationship,
                                        bool excess);

struct ConflictDetectorOptions {
  PathSearchOptions path_search;

  /// Detect violations of *composite* unique constraints (n-ary keys)
  /// whose attributes are all fed from one source relation, using the
  /// join operator's inverse cardinality (Lemma 3) for the inference and
  /// the source instance for the count. On by default: composite keys
  /// are ubiquitous in link tables.
  bool detect_composite_keys = true;

  /// Detect violations of target *functional dependencies* (X -> Y)
  /// whose attributes are all fed from one source relation: count the
  /// determinant groups carrying more than one dependent projection.
  /// Repaired like "multiple attribute values" (merge or keep-any).
  bool detect_functional_dependencies = true;

  /// Detect unique-constraint violations that only emerge when several
  /// contributions are combined — multiple sources, or a source plus
  /// pre-existing target data ("all sources might be free of duplicates,
  /// but there still might be target duplicates when they are combined",
  /// Section 3.1). The inference uses Lemma 2's overlapping union. Off by
  /// default to keep the Section 6 protocol (which treats sources
  /// independently); turn on for deployments that integrate into a
  /// populated target.
  bool detect_cross_source_conflicts = false;
};

/// Runs the detector for every source of the scenario. `target_graph_out`
/// (required) receives the target CSG the conflicts' relationship ids
/// refer to. With cross-source detection enabled, an extra assessment
/// named "(combined)" is appended when combination conflicts exist.
Result<std::vector<SourceStructureAssessment>> DetectStructureConflicts(
    const IntegrationScenario& scenario, CsgGraph* target_graph_out,
    const ConflictDetectorOptions& options = {});

}  // namespace efes

#endif  // EFES_STRUCTURE_CONFLICT_DETECTOR_H_
