#include "efes/structure/repair_planner.h"

#include <algorithm>
#include <sstream>

namespace efes {

namespace {

/// Per-relationship state of the virtual CSG instance: the prescribed
/// cardinality from the target schema and the actual cardinality of the
/// (conceptually) integrated source data, plus how many elements are
/// defective on each side.
struct VirtualState {
  Cardinality prescribed;
  Cardinality actual;
  size_t too_few = 0;
  size_t too_many = 0;
};

std::string Subject(const CsgGraph& graph, const CsgRelationship& rel) {
  // Repairs are attributed to the attribute end of the relationship
  // ("Add missing values (title)"); equality relationships to the child
  // attribute.
  const CsgNode& from = graph.node(rel.from);
  const CsgNode& to = graph.node(rel.to);
  if (to.kind == CsgNodeKind::kAttribute) return to.QualifiedName();
  return from.QualifiedName();
}

}  // namespace

TaskType DefaultRepairTask(StructuralConflictKind kind,
                           ExpectedQuality quality) {
  bool high = quality == ExpectedQuality::kHighQuality;
  switch (kind) {
    case StructuralConflictKind::kNotNullViolated:
      return high ? TaskType::kAddMissingValues : TaskType::kRejectTuples;
    case StructuralConflictKind::kUniqueViolated:
      return high ? TaskType::kAggregateTuples : TaskType::kSetValuesToNull;
    case StructuralConflictKind::kMultipleAttributeValues:
      return high ? TaskType::kMergeValues : TaskType::kKeepAnyValue;
    case StructuralConflictKind::kValueWithoutTuple:
      // Table 4 names the high-quality repair "Create enclosing tuple";
      // the planned task is Table 5/9's "Add tuples" (one INSERT..SELECT
      // statement), which is the same operation.
      return high ? TaskType::kAddTuples : TaskType::kDropDetachedValues;
    case StructuralConflictKind::kForeignKeyViolated:
      return high ? TaskType::kAddReferencedValues
                  : TaskType::kDeleteDanglingValues;
  }
  return TaskType::kRejectTuples;
}

Result<std::vector<Task>> PlanStructureRepairs(
    const CsgGraph& target_graph,
    const std::vector<StructureConflict>& conflicts, ExpectedQuality quality,
    const RepairPlannerOptions& options, std::vector<std::string>* trace) {
  const auto& relationships = target_graph.relationships();

  // --- Initialize the virtual CSG instance -------------------------------
  std::vector<VirtualState> states(relationships.size());
  // Provenance-node ids of the conflicts that made each relationship
  // defective. Side effects propagate them, so a repair triggered only by
  // another repair still traces back to the original conflicts.
  std::vector<std::vector<uint64_t>> causes(relationships.size());
  auto merge_causes = [](std::vector<uint64_t>* into,
                         const std::vector<uint64_t>& from) {
    for (uint64_t id : from) {
      if (std::find(into->begin(), into->end(), id) == into->end()) {
        into->push_back(id);
      }
    }
  };
  for (size_t i = 0; i < relationships.size(); ++i) {
    states[i].prescribed = relationships[i].prescribed;
    states[i].actual = relationships[i].prescribed;  // assume fit...
  }
  for (const StructureConflict& conflict : conflicts) {
    if (conflict.provenance != 0) {
      merge_causes(&causes[conflict.target_relationship],
                   {conflict.provenance});
    }
    VirtualState& state = states[conflict.target_relationship];
    // A conflict may carry a constraint tighter than the anchoring
    // relationship's own κ — e.g. a composite-key conflict prescribes 1
    // on an attribute whose unary κ is 1..*. Honor the tighter bound.
    if (conflict.prescribed.IsProperSubsetOf(state.prescribed)) {
      state.prescribed = conflict.prescribed;
    }
    if (conflict.excess) {
      uint64_t observed_max =
          conflict.inferred.is_empty() ? Cardinality::kUnbounded
                                       : conflict.inferred.max();
      uint64_t prescribed_max = state.prescribed.is_unbounded()
                                    ? Cardinality::kUnbounded
                                    : state.prescribed.max() + 1;
      uint64_t new_max = std::max<uint64_t>(observed_max, prescribed_max);
      state.actual = Cardinality::Between(
          state.actual.is_empty() ? 0 : state.actual.min(), new_max);
      state.too_many += conflict.violation_count;
    } else {
      state.actual = Cardinality::Between(
          0, state.actual.is_empty() ? 0 : state.actual.max());
      state.too_few += conflict.violation_count;
    }
  }

  auto emit_trace = [&](const std::string& line) {
    if (trace != nullptr) trace->push_back(line);
  };

  // --- Task bookkeeping ---------------------------------------------------
  std::vector<Task> tasks;
  // (relationship, side) -> number of times this defect was repaired.
  std::map<std::pair<RelationshipId, bool>, size_t> refix_count;

  auto choose_task = [&](StructuralConflictKind kind) {
    auto it = options.task_overrides.find({kind, quality});
    if (it != options.task_overrides.end()) return it->second;
    return DefaultRepairTask(kind, quality);
  };

  // Tasks and their (type, relationship) keys are kept in two parallel
  // vectors; merging a recurring task moves it to the back so that a fix
  // always follows its newest cause in the emitted order.
  std::vector<std::pair<TaskType, RelationshipId>> task_keys;
  auto upsert_task = [&](TaskType type, RelationshipId rel_id,
                         size_t count) {
    double repetitions = static_cast<double>(count);
    for (size_t i = 0; i < task_keys.size(); ++i) {
      if (task_keys[i] == std::make_pair(type, rel_id)) {
        Task task = std::move(tasks[i]);
        task.parameters[task_params::kRepetitions] += repetitions;
        task.parameters[task_params::kValues] += repetitions;
        task.parameters[task_params::kDistinctValues] += repetitions;
        merge_causes(&task.provenance, causes[rel_id]);
        tasks.erase(tasks.begin() + static_cast<ptrdiff_t>(i));
        task_keys.erase(task_keys.begin() + static_cast<ptrdiff_t>(i));
        tasks.push_back(std::move(task));
        task_keys.emplace_back(type, rel_id);
        return;
      }
    }
    Task task;
    task.type = type;
    task.category = TaskCategory::kCleaningStructure;
    task.quality = quality;
    task.subject = Subject(target_graph, relationships[rel_id]);
    task.parameters[task_params::kRepetitions] = repetitions;
    task.parameters[task_params::kValues] = repetitions;
    task.parameters[task_params::kDistinctValues] = repetitions;
    task.provenance = causes[rel_id];
    tasks.push_back(std::move(task));
    task_keys.emplace_back(type, rel_id);
  };

  // --- Side-effect rules ---------------------------------------------------
  // Marks `count` elements of relationship `rel_id` as lacking links;
  // `from_causes` are the conflict ids of the repair that broke them.
  auto break_too_few = [&](RelationshipId rel_id, size_t count,
                           const std::vector<uint64_t>& from_causes) {
    VirtualState& state = states[rel_id];
    if (state.prescribed.min() == 0) return;  // optional, nothing breaks
    state.actual =
        Cardinality::Between(0, std::max<uint64_t>(state.actual.max(), 1));
    state.too_few += count;
    merge_causes(&causes[rel_id], from_causes);
    emit_trace("  side effect: actual k(" +
               target_graph.DescribeRelationship(rel_id) +
               ") drops to " + states[rel_id].actual.ToString());
  };
  auto break_too_many = [&](RelationshipId rel_id, size_t count,
                            const std::vector<uint64_t>& from_causes) {
    VirtualState& state = states[rel_id];
    if (state.prescribed.is_unbounded()) return;
    state.actual = Cardinality::Between(
        state.actual.min(),
        std::max<uint64_t>(state.actual.max(), state.prescribed.max() + 1));
    state.too_many += count;
    merge_causes(&causes[rel_id], from_causes);
    emit_trace("  side effect: actual k(" +
               target_graph.DescribeRelationship(rel_id) +
               ") grows to " + states[rel_id].actual.ToString());
  };

  auto apply_side_effects = [&](TaskType type, RelationshipId rel_id,
                                size_t count) {
    // Copied, not referenced: break_* may grow causes[] and invalidate a
    // reference into it.
    const std::vector<uint64_t> repaired_causes = causes[rel_id];
    const CsgRelationship& rel = relationships[rel_id];
    switch (type) {
      case TaskType::kAddTuples: {
        // Creating tuples for detached values: the new tuples have no
        // values for the table's other mandatory attributes (Figure 5).
        // Surrogate-key attributes (unique + not-null, i.e. κ = 1 in both
        // directions) are exempt — their values are generated alongside
        // the tuples, as the mapping module already plans.
        NodeId table_node = rel.to;  // rel is attribute -> table
        for (RelationshipId out : target_graph.OutgoingOf(table_node)) {
          const CsgRelationship& sibling = target_graph.relationship(out);
          if (sibling.kind != CsgEdgeKind::kAttribute) continue;
          if (out == rel.inverse) continue;  // the repaired attribute
          const CsgRelationship& sibling_inverse =
              target_graph.relationship(sibling.inverse);
          if (sibling.prescribed == Cardinality::Exactly(1) &&
              sibling_inverse.prescribed == Cardinality::Exactly(1)) {
            continue;  // surrogate key
          }
          break_too_few(out, count, repaired_causes);
        }
        break;
      }
      case TaskType::kAggregateTuples: {
        // Merging duplicate tuples leaves several values per attribute on
        // the surviving tuple. Surrogate keys are exempt: the merge keeps
        // one key and rewires references, which the dedup script covers.
        NodeId table_node = rel.to;  // rel is attribute -> table
        for (RelationshipId out : target_graph.OutgoingOf(table_node)) {
          const CsgRelationship& sibling = target_graph.relationship(out);
          if (sibling.kind != CsgEdgeKind::kAttribute) continue;
          if (out == rel.inverse) continue;
          const CsgRelationship& sibling_inverse =
              target_graph.relationship(sibling.inverse);
          if (sibling.prescribed == Cardinality::Exactly(1) &&
              sibling_inverse.prescribed == Cardinality::Exactly(1)) {
            continue;  // surrogate key
          }
          break_too_many(out, count, repaired_causes);
        }
        break;
      }
      case TaskType::kRejectTuples: {
        // Removing tuples may detach values of the table's attributes.
        NodeId table_node = rel.from;  // rel is table -> attribute
        for (RelationshipId out : target_graph.OutgoingOf(table_node)) {
          const CsgRelationship& sibling = target_graph.relationship(out);
          if (sibling.kind != CsgEdgeKind::kAttribute) continue;
          break_too_few(sibling.inverse, count, repaired_causes);
        }
        break;
      }
      case TaskType::kSetValuesToNull: {
        // Nulled values leave their tuples without a value for this
        // attribute.
        break_too_few(rel.inverse, count, repaired_causes);  // attribute -> table
        break;
      }
      default:
        break;  // all other repairs are local
    }
  };

  // --- Simulation loop ------------------------------------------------------
  size_t iteration_cap = 4 * std::max<size_t>(relationships.size(), 1) + 16;
  for (size_t iteration = 0;; ++iteration) {
    if (iteration >= iteration_cap) {
      return Status::Unsatisfiable(
          "structure repair did not converge (cleaning loop)");
    }

    // Find the first defective relationship (deterministic order).
    bool found = false;
    RelationshipId rel_id = 0;
    bool excess = false;
    for (size_t i = 0; i < states.size(); ++i) {
      const VirtualState& state = states[i];
      if (state.actual.IsSubsetOf(state.prescribed)) continue;
      rel_id = i;
      // Repair missing links before excess links on the same relationship.
      excess = state.actual.min() >= state.prescribed.min();
      found = true;
      break;
    }
    if (!found) break;  // virtual instance is valid — done

    VirtualState& state = states[rel_id];
    auto refix_key = std::make_pair(rel_id, excess);
    if (++refix_count[refix_key] > options.max_refix_count) {
      return Status::Unsatisfiable(
          "contradicting repair tasks form a cleaning loop on " +
          target_graph.DescribeRelationship(rel_id));
    }

    StructuralConflictKind kind = ClassifyConflict(
        target_graph, relationships[rel_id], excess);
    TaskType type = choose_task(kind);
    size_t count = excess ? state.too_many : state.too_few;
    if (count == 0) count = 1;  // defensive: a defect implies >= 1 element

    emit_trace("actual k(" + target_graph.DescribeRelationship(rel_id) +
               ") is " + state.actual.ToString() + " (not within " +
               state.prescribed.ToString() + "): applying '" +
               std::string(TaskTypeToString(type)) + "' x" +
               std::to_string(count));

    // Fix the defect on the virtual instance.
    if (excess) {
      state.actual =
          Cardinality::Between(state.actual.min(), state.prescribed.max());
      state.too_many = 0;
    } else {
      state.actual = Cardinality::Between(
          state.prescribed.min(),
          std::max<uint64_t>(state.actual.max(), state.prescribed.min()));
      state.too_few = 0;
    }

    upsert_task(type, rel_id, count);
    apply_side_effects(type, rel_id, count);
  }

  return tasks;
}

}  // namespace efes
