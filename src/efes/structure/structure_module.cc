#include "efes/structure/structure_module.h"

#include <map>
#include <sstream>

#include "efes/common/deadline.h"
#include "efes/common/text_table.h"
#include "efes/provenance/provenance.h"

namespace efes {

std::string StructureComplexityReport::ToText() const {
  std::ostringstream oss;
  for (const SourceStructureAssessment& source : sources_) {
    oss << "Source: " << source.source_database << "\n";
    if (source.conflicts.empty()) {
      oss << "  (no structural conflicts)\n";
      continue;
    }
    // Aggregate the defect sides per target constraint for the Table 3
    // presentation; the planner keeps the split internally.
    std::map<std::string, size_t> per_constraint;
    std::vector<std::string> order;
    for (const StructureConflict& conflict : source.conflicts) {
      if (per_constraint.count(conflict.target_constraint) == 0) {
        order.push_back(conflict.target_constraint);
      }
      per_constraint[conflict.target_constraint] +=
          conflict.violation_count;
    }
    TextTable table;
    table.SetHeader(
        {"Constraint in target schema", "Violation count in source data"});
    for (const std::string& constraint : order) {
      table.AddRow({constraint, std::to_string(per_constraint[constraint])});
    }
    oss << table.ToString();
  }
  return oss.str();
}

size_t StructureComplexityReport::ProblemCount() const {
  size_t count = 0;
  for (const SourceStructureAssessment& source : sources_) {
    count += source.conflicts.size();
  }
  return count;
}

Result<std::unique_ptr<ComplexityReport>> StructureModule::AssessComplexity(
    const IntegrationScenario& scenario) const {
  CsgGraph target_graph;
  // Conflict detection walks every source CSG against the target; make
  // sure a cancelled deadline stops the assessment before that work.
  EFES_RETURN_IF_ERROR(CheckCancellation());
  EFES_ASSIGN_OR_RETURN(
      std::vector<SourceStructureAssessment> assessments,
      DetectStructureConflicts(scenario, &target_graph,
                               options_.detector));
  if (ProvenanceRecorder* prov = ProvenanceRecorder::Active();
      prov != nullptr) {
    // One constraint node per (source, target constraint), shared by the
    // excess/deficit conflict pair it usually splits into.
    std::map<std::string, uint64_t> constraint_nodes;
    std::vector<uint64_t> conflict_nodes;
    for (SourceStructureAssessment& source : assessments) {
      for (StructureConflict& conflict : source.conflicts) {
        const std::string key =
            source.source_database + "|" + conflict.target_constraint;
        auto [entry, inserted] = constraint_nodes.try_emplace(key, 0);
        if (inserted) {
          entry->second =
              prov->Record(ProvenanceKind::kConstraint, "target constraint",
                           conflict.target_constraint);
        }
        uint64_t inferred_node = prov->Record(
            ProvenanceKind::kConstraint, "inferred source cardinality",
            source.source_database + ":" + conflict.source_path + " : " +
                conflict.inferred.ToString());
        conflict.provenance = prov->RecordValue(
            ProvenanceKind::kFinding,
            "structural conflict: " +
                std::string(StructuralConflictKindToString(conflict.kind)),
            conflict.target_constraint,
            static_cast<double>(conflict.violation_count),
            {entry->second, inferred_node});
        conflict_nodes.push_back(conflict.provenance);
      }
    }
    auto report = std::make_unique<StructureComplexityReport>(
        std::move(target_graph), std::move(assessments));
    report->set_provenance_node(prov->RecordValue(
        ProvenanceKind::kFinding, "structure assessment", "",
        static_cast<double>(report->ProblemCount()),
        std::move(conflict_nodes)));
    return std::unique_ptr<ComplexityReport>(std::move(report));
  }
  return std::unique_ptr<ComplexityReport>(
      std::make_unique<StructureComplexityReport>(std::move(target_graph),
                                                  std::move(assessments)));
}

Result<std::vector<Task>> StructureModule::PlanTasks(
    const ComplexityReport& report, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  (void)settings;
  const auto* structure_report =
      dynamic_cast<const StructureComplexityReport*>(&report);
  if (structure_report == nullptr) {
    return Status::InvalidArgument(
        "StructureModule received a foreign complexity report");
  }
  std::vector<Task> all_tasks;
  for (const SourceStructureAssessment& source :
       structure_report->sources()) {
    EFES_ASSIGN_OR_RETURN(
        std::vector<Task> tasks,
        PlanStructureRepairs(structure_report->target_graph(),
                             source.conflicts, quality, options_.planner));
    for (Task& task : tasks) {
      // Qualify the subject with the source when the scenario has several.
      if (structure_report->sources().size() > 1) {
        task.subject = source.source_database + ": " + task.subject;
      }
      all_tasks.push_back(std::move(task));
    }
  }
  return all_tasks;
}

}  // namespace efes
