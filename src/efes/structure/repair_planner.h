// The structure repair planner (Section 4.2).
//
// Proposes cleaning tasks for the detected structural conflicts, and —
// because "data cleaning operations usually have side effects that can
// cause new violations" — simulates each applied task on a *virtual CSG
// instance*: the target CSG annotated with actual cardinalities that
// describe the state of the conceptually integrated source data
// (Figure 5). The planner loops pick-task → simulate-effects until the
// virtual instance satisfies all prescribed cardinalities, orders tasks
// so causes precede fixes, and detects "infinite cleaning loops" caused
// by contradicting repair choices.

#ifndef EFES_STRUCTURE_REPAIR_PLANNER_H_
#define EFES_STRUCTURE_REPAIR_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "efes/core/task.h"
#include "efes/structure/conflict_detector.h"

namespace efes {

struct RepairPlannerOptions {
  /// Overrides the default Table 4 task choice for a conflict kind and
  /// quality. Key: (kind, quality). Used for configurability and to
  /// exercise cycle detection with contradicting strategies.
  std::map<std::pair<StructuralConflictKind, ExpectedQuality>, TaskType>
      task_overrides;

  /// How often the same defect may recur (through side effects) before
  /// the planner declares a cleaning loop.
  size_t max_refix_count = 3;
};

/// Returns the default Table 4 cleaning task for a conflict kind and
/// expected quality.
TaskType DefaultRepairTask(StructuralConflictKind kind,
                           ExpectedQuality quality);

/// Plans the ordered repair-task list for the conflicts of one source.
/// `trace`, when non-null, receives one line per simulation step — the
/// textual analogue of Figure 5. Fails with kUnsatisfiable on cleaning
/// loops.
Result<std::vector<Task>> PlanStructureRepairs(
    const CsgGraph& target_graph,
    const std::vector<StructureConflict>& conflicts, ExpectedQuality quality,
    const RepairPlannerOptions& options = {},
    std::vector<std::string>* trace = nullptr);

}  // namespace efes

#endif  // EFES_STRUCTURE_REPAIR_PLANNER_H_
