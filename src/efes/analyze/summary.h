// Per-translation-unit summaries for efes_analyze (DESIGN.md §15).
//
// efes_lint (PR 4) checks token-local invariants one file at a time.
// The whole-program checks in analyze.h need more: which class members
// are lock-annotated, which functions call which, which headers include
// which, which observability names appear at call sites. Summarize()
// extracts exactly that from one file's token stream (lint/token.h) —
// a deliberately shallow, deterministic parse with a brace/class/
// function scope tracker, not an AST. The merged summaries of every
// file form the index the checks in analyze.cc run over.
//
// Known lexical approximations (documented in DESIGN.md §15):
//   * lock regions are brace-scoped: a std::lock_guard/unique_lock/
//     scoped_lock declaration opens a region until its enclosing block
//     closes; `x.unlock()` / `x.lock()` on the named lock object
//     suspend and resume it. Lambdas are attributed to the enclosing
//     scope (a lambda body executed elsewhere inherits the lexical
//     region, which is conservative for the wait-predicate idiom).
//   * member accesses are identifiers ending in '_' (the project style
//     for data members) not reached through `.`/`->` on another object;
//     `this->` counts as a self access.
//   * constructors and destructors are exempt from access recording —
//     no concurrent access exists before/after the object's lifetime.

#ifndef EFES_ANALYZE_SUMMARY_H_
#define EFES_ANALYZE_SUMMARY_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/lint/lint.h"

namespace efes::analyze {

/// `#include "efes/..."` edge, path without quotes.
struct IncludeEdge {
  std::string target;
  int line = 0;
};

/// One EFES_GUARDED_BY(mutex) annotation on a class member.
struct GuardedMember {
  std::string class_name;
  std::string member;
  std::string mutex_name;
  int line = 0;
};

/// One member-style access (identifier ending in '_') inside a method
/// body, with the mutexes whose lock regions lexically cover it.
struct MemberAccess {
  std::string class_name;
  std::string member;
  int line = 0;
  /// Sorted, deduplicated mutex member names held at the access.
  std::vector<std::string> held_mutexes;
};

/// One function definition and the names it calls.
struct FunctionInfo {
  /// Unqualified name; `class_name` is empty for free functions.
  std::string name;
  std::string class_name;
  int line = 0;
  /// Sorted, deduplicated callee identifiers (free calls and method
  /// calls alike — the call graph is name-based).
  std::vector<std::string> calls;
};

/// A complete string literal at an observability call site.
struct LiteralSite {
  enum class Kind { kMetric, kFault, kFlag };
  Kind kind = Kind::kMetric;
  std::string name;
  int line = 0;
};

/// A suppression comment naming one check id.
struct Suppression {
  std::string check;
  int line = 0;
};

struct FileSummary {
  std::string path;
  std::vector<IncludeEdge> includes;
  std::vector<GuardedMember> guarded;
  std::vector<MemberAccess> accesses;
  std::vector<FunctionInfo> functions;
  std::vector<LiteralSite> literals;
  std::vector<Suppression> suppressions;
  /// bad-suppression findings discovered while summarizing.
  std::vector<lint::Finding> findings;
};

/// Call-site names whose string-literal arguments are observability
/// names. Defaults match the EFES tree; tests override them.
struct SummaryConfig {
  /// Metric/span registration sites: every complete dotted literal
  /// (lint::IsDottedMetricName) anywhere in the argument list is a
  /// metric name. Concatenation fragments ("fault.", ".hits") fail the
  /// dotted test, which is what keeps dynamic names out.
  std::vector<std::string> metric_functions = {
      "GetCounter", "GetGauge", "GetHistogram",
      "TraceSpan",  "ServeCounter", "CacheCounter"};
  /// Fault-point check sites, same literal rule.
  std::vector<std::string> fault_functions = {"CheckFaultPoint"};
  /// Flag-definition sites: only the first argument literal is a name.
  std::vector<std::string> flag_functions = {
      "AddBool", "AddString", "AddUint",
      "AddChoice", "AddAction", "AddOptional"};
  /// Lock RAII type names opening a brace-scoped lock region.
  std::vector<std::string> lock_types = {"lock_guard", "unique_lock",
                                         "scoped_lock"};
};

/// Extracts `content`'s summary. Never fails: malformed input degrades
/// to a partial summary, exactly like the lint tokenizer itself.
FileSummary Summarize(std::string_view path, std::string_view content,
                      const SummaryConfig& config = SummaryConfig());

}  // namespace efes::analyze

#endif  // EFES_ANALYZE_SUMMARY_H_
