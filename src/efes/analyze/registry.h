// Loader/parser for the docs/registry/ manifests consumed by the
// registry check (analyze.h). A manifest is a markdown file where each
// registered name is a list line with the name in backticks:
//
//   - `serve.requests.received` — one per request line read
//   - `fault.<point>.hits` (dynamic) — per-point hit counter
//
// Lines containing "(dynamic)" document runtime-built name families and
// are excluded from both directions of the consistency check; every
// other backticked list entry must have a call site, and every call-
// site literal must have an entry.

#ifndef EFES_ANALYZE_REGISTRY_H_
#define EFES_ANALYZE_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/analyze/analyze.h"
#include "efes/common/result.h"

namespace efes::analyze {

/// Parses one manifest: every line of the form `- \`name\` ...` yields
/// an entry unless the line contains "(dynamic)". Never fails; lines
/// that don't match the grammar are prose.
std::vector<ManifestEntry> ParseManifest(std::string_view content);

/// Reads `<dir>/metrics.md`, `<dir>/faults.md`, `<dir>/flags.md`. A
/// missing manifest is an error — deleting one must fail the analyzer,
/// not silently skip the check.
Result<RegistryManifests> LoadRegistryDir(const std::string& dir);

}  // namespace efes::analyze

#endif  // EFES_ANALYZE_REGISTRY_H_
