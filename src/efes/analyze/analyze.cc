#include "efes/analyze/analyze.h"

#include <algorithm>
#include <climits>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace efes::analyze {
namespace {

constexpr std::string_view kLockDiscipline = "lock-discipline";
constexpr std::string_view kCancellation = "cancellation";
constexpr std::string_view kLayering = "layering";
constexpr std::string_view kRegistry = "registry";
constexpr std::string_view kBadSuppression = "bad-suppression";

constexpr int kTopRank = INT_MAX;
constexpr int kUnknownRank = -1;

using lint::Finding;

bool PathMatchesAny(std::string_view path,
                    const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns) {
    if (path.find(p) != std::string_view::npos) return true;
  }
  return false;
}

bool Contains(const std::vector<std::string>& haystack,
              std::string_view needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

/// The layer rank of a path: top for tools/tests/bench, the matching
/// LayerRule's rank for efes/ directories, kUnknownRank otherwise.
int RankOf(std::string_view path, const AnalyzeConfig& config) {
  if (PathMatchesAny(path, config.top_paths)) return kTopRank;
  for (const LayerRule& rule : config.layers) {
    if (path.find(rule.dir) != std::string_view::npos) return rule.rank;
  }
  return kUnknownRank;
}

/// The "efes/..." include key of an analyzed file path, or "" when the
/// path is not under an efes/ directory (tools, tests — never included).
std::string IncludeKeyOf(std::string_view path) {
  size_t pos = path.find("efes/");
  if (pos == std::string_view::npos) return std::string();
  return std::string(path.substr(pos));
}

/// The efes/<dir>/ prefix of an include key, for messages.
std::string DirOf(std::string_view key) {
  size_t slash = key.rfind('/');
  if (slash == std::string_view::npos) return std::string(key);
  return std::string(key.substr(0, slash + 1));
}

void CheckLockDiscipline(const std::vector<FileSummary>& summaries,
                         std::vector<Finding>* findings) {
  // (class, member) -> required mutex.
  std::map<std::pair<std::string, std::string>, std::string> guarded;
  for (const FileSummary& summary : summaries) {
    for (const GuardedMember& g : summary.guarded) {
      guarded.emplace(std::make_pair(g.class_name, g.member),
                      g.mutex_name);
    }
  }
  // Unannotated members whose every access happens under the same
  // mutex: (class, member) -> common held mutexes so far, plus the
  // first access site for the finding anchor.
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      inferred;
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, int>>
      first_site;
  for (const FileSummary& summary : summaries) {
    for (const MemberAccess& access : summary.accesses) {
      auto key = std::make_pair(access.class_name, access.member);
      auto it = guarded.find(key);
      if (it != guarded.end()) {
        const std::string& mutex = it->second;
        if (std::find(access.held_mutexes.begin(),
                      access.held_mutexes.end(),
                      mutex) != access.held_mutexes.end()) {
          continue;
        }
        findings->push_back(
            {summary.path, access.line, std::string(kLockDiscipline),
             access.class_name + "::" + access.member +
                 " is EFES_GUARDED_BY(" + mutex +
                 ") but accessed outside a lock region of it",
             false});
        continue;
      }
      // Inference direction: intersect the held-mutex sets across every
      // access; a non-empty result at the end means the member is
      // consistently locked but not annotated — deleting an annotation
      // must fail the analyzer, not silently relax the check.
      auto [entry, inserted] =
          inferred.emplace(key, access.held_mutexes);
      if (inserted) {
        first_site.emplace(key,
                           std::make_pair(summary.path, access.line));
      } else {
        std::vector<std::string> common;
        for (const std::string& m : entry->second) {
          if (std::find(access.held_mutexes.begin(),
                        access.held_mutexes.end(),
                        m) != access.held_mutexes.end()) {
            common.push_back(m);
          }
        }
        entry->second = std::move(common);
      }
    }
  }
  for (const auto& [key, mutexes] : inferred) {
    if (mutexes.empty()) continue;
    const auto& [path, line] = first_site.at(key);
    findings->push_back(
        {path, line, std::string(kLockDiscipline),
         key.first + "::" + key.second +
             " is always accessed under " + mutexes.front() +
             " but is not annotated EFES_GUARDED_BY(" + mutexes.front() +
             ")",
         false});
  }
}

void CheckCancellationCoverage(const std::vector<FileSummary>& summaries,
                               const AnalyzeConfig& config,
                               std::vector<Finding>* findings) {
  // Name-based call graph: callees merged across every definition
  // sharing a name (conservative: reachability only gets easier).
  std::map<std::string, std::set<std::string>> graph;
  for (const FileSummary& summary : summaries) {
    for (const FunctionInfo& fn : summary.functions) {
      graph[fn.name].insert(fn.calls.begin(), fn.calls.end());
    }
  }

  auto reaches_checkpoint = [&](const std::vector<std::string>& seeds) {
    std::set<std::string> visited;
    std::vector<std::string> stack(seeds.begin(), seeds.end());
    while (!stack.empty()) {
      std::string name = std::move(stack.back());
      stack.pop_back();
      if (name == config.checkpoint_function) return true;
      if (!visited.insert(name).second) continue;
      auto it = graph.find(name);
      if (it == graph.end()) continue;
      for (const std::string& callee : it->second) {
        if (visited.count(callee) == 0) stack.push_back(callee);
      }
    }
    return false;
  };

  for (const FileSummary& summary : summaries) {
    if (!PathMatchesAny(summary.path, config.checkpoint_dirs)) continue;
    for (const FunctionInfo& fn : summary.functions) {
      bool root_name = Contains(config.checkpoint_roots, fn.name);
      bool fans_out = false;
      for (const std::string& call : fn.calls) {
        if (Contains(config.parallel_primitives, call)) {
          fans_out = true;
          break;
        }
      }
      if (!root_name && !fans_out) continue;
      if (reaches_checkpoint(fn.calls)) continue;
      std::string label = fn.class_name.empty()
                              ? fn.name
                              : fn.class_name + "::" + fn.name;
      findings->push_back(
          {summary.path, fn.line, std::string(kCancellation),
           label + (root_name ? " is an estimation root"
                              : " fans out over the parallel pool") +
               " but never reaches " + config.checkpoint_function +
               " — long work here cannot be cancelled",
           false});
    }
  }
}

void CheckLayering(const std::vector<FileSummary>& summaries,
                   const AnalyzeConfig& config,
                   std::vector<Finding>* findings) {
  for (const FileSummary& summary : summaries) {
    int file_rank = RankOf(summary.path, config);
    if (file_rank == kUnknownRank &&
        summary.path.find("efes/") != std::string::npos) {
      findings->push_back(
          {summary.path, 1, std::string(kLayering),
           "directory of " + summary.path +
               " is not in the declared layer order "
               "(AnalyzeConfig::layers) — add it at the right rank",
           false});
      continue;
    }
    for (const IncludeEdge& include : summary.includes) {
      int target_rank = kUnknownRank;
      for (const LayerRule& rule : config.layers) {
        if (include.target.find(rule.dir) != std::string::npos) {
          target_rank = rule.rank;
          break;
        }
      }
      if (target_rank == kUnknownRank) {
        findings->push_back(
            {summary.path, include.line, std::string(kLayering),
             "included header \"" + include.target +
                 "\" is in no declared layer "
                 "(AnalyzeConfig::layers)",
             false});
        continue;
      }
      if (file_rank != kTopRank && file_rank != kUnknownRank &&
          target_rank > file_rank) {
        findings->push_back(
            {summary.path, include.line, std::string(kLayering),
             "layering back-edge: " + DirOf(IncludeKeyOf(summary.path)) +
                 " (layer " + std::to_string(file_rank) +
                 ") includes \"" + include.target + "\" (layer " +
                 std::to_string(target_rank) + ")",
             false});
      }
    }
  }

  // Include cycles among the analyzed headers (file-level DFS).
  std::map<std::string, const FileSummary*> by_key;
  for (const FileSummary& summary : summaries) {
    std::string key = IncludeKeyOf(summary.path);
    if (!key.empty()) by_key.emplace(std::move(key), &summary);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path_stack;
  std::set<std::string> reported;

  // Iterative DFS with an explicit stack of (node, next-edge-index).
  for (const auto& [start, summary_ptr] : by_key) {
    (void)summary_ptr;
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack{{start, 0}};
    color[start] = 1;
    path_stack.push_back(start);
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      const FileSummary* node_summary = by_key.at(node);
      if (edge_index >= node_summary->includes.size()) {
        color[node] = 2;
        path_stack.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge& edge = node_summary->includes[edge_index++];
      auto target_it = by_key.find(edge.target);
      if (target_it == by_key.end()) continue;
      const std::string& target = target_it->first;
      if (color[target] == 1) {
        // Back edge: the cycle is path_stack from `target` to `node`.
        auto cycle_begin = std::find(path_stack.begin(), path_stack.end(),
                                     target);
        std::vector<std::string> cycle(cycle_begin, path_stack.end());
        // Canonical rotation (smallest key first) for deduplication.
        auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        std::string joined;
        for (const std::string& n : cycle) {
          joined += n;
          joined += " -> ";
        }
        joined += cycle.front();
        if (reported.insert(joined).second) {
          findings->push_back({node_summary->path, edge.line,
                               std::string(kLayering),
                               "include cycle: " + joined, false});
        }
        continue;
      }
      if (color[target] == 0) {
        color[target] = 1;
        path_stack.push_back(target);
        stack.push_back({target, 0});
      }
    }
  }
}

void CheckRegistry(const std::vector<FileSummary>& summaries,
                   const RegistryManifests& registry,
                   std::vector<Finding>* findings) {
  struct Direction {
    LiteralSite::Kind kind;
    const std::vector<ManifestEntry>* manifest;
    const std::string* manifest_path;
    std::string_view noun;
  };
  const Direction directions[] = {
      {LiteralSite::Kind::kMetric, &registry.metrics,
       &registry.metrics_path, "metric/span name"},
      {LiteralSite::Kind::kFault, &registry.faults, &registry.faults_path,
       "fault point"},
      {LiteralSite::Kind::kFlag, &registry.flags, &registry.flags_path,
       "flag"},
  };
  for (const Direction& dir : directions) {
    std::set<std::string> listed;
    for (const ManifestEntry& entry : *dir.manifest) {
      listed.insert(entry.name);
    }
    std::set<std::string> used;
    for (const FileSummary& summary : summaries) {
      for (const LiteralSite& site : summary.literals) {
        if (site.kind != dir.kind) continue;
        used.insert(site.name);
        if (listed.count(site.name) == 0) {
          findings->push_back(
              {summary.path, site.line, std::string(kRegistry),
               std::string(dir.noun) + " '" + site.name +
                   "' is not listed in " + *dir.manifest_path,
               false});
        }
      }
    }
    for (const ManifestEntry& entry : *dir.manifest) {
      if (used.count(entry.name) == 0) {
        findings->push_back(
            {*dir.manifest_path, entry.line, std::string(kRegistry),
             "stale registry entry '" + entry.name +
                 "': no call site in the analyzed tree — remove it or "
                 "mark it (dynamic)",
             false});
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& AllCheckIds() {
  static const std::vector<std::string>* ids = []() {
    // EFES_LINT_ALLOW(banned-function): intentionally leaked function-local singleton
    auto* v = new std::vector<std::string>();
    v->emplace_back(kLockDiscipline);
    v->emplace_back(kCancellation);
    v->emplace_back(kLayering);
    v->emplace_back(kRegistry);
    v->emplace_back(kBadSuppression);
    return v;
  }();
  return *ids;
}

Analyzer::Analyzer(AnalyzeConfig config) : config_(std::move(config)) {}

void Analyzer::AddFile(std::string_view path, std::string_view content) {
  summaries_.push_back(Summarize(path, content, config_.summary));
}

void Analyzer::SetRegistry(RegistryManifests manifests) {
  registry_ = std::move(manifests);
  has_registry_ = true;
}

std::vector<Finding> Analyzer::Run() const {
  std::vector<Finding> findings;
  for (const FileSummary& summary : summaries_) {
    findings.insert(findings.end(), summary.findings.begin(),
                    summary.findings.end());
  }
  CheckLockDiscipline(summaries_, &findings);
  CheckCancellationCoverage(summaries_, config_, &findings);
  CheckLayering(summaries_, config_, &findings);
  if (has_registry_) CheckRegistry(summaries_, registry_, &findings);

  // Apply in-source suppressions (same line or the line above; the
  // manifest .md files have no summaries, so stale-entry findings stay).
  std::map<std::string, const FileSummary*> by_path;
  for (const FileSummary& summary : summaries_) {
    by_path.emplace(summary.path, &summary);
  }
  for (Finding& f : findings) {
    if (f.check == kBadSuppression) continue;
    auto it = by_path.find(f.file);
    if (it == by_path.end()) continue;
    for (const Suppression& s : it->second->suppressions) {
      if (s.check == f.check && (s.line == f.line || s.line == f.line - 1)) {
        f.suppressed = true;
        break;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  return findings;
}

std::vector<Finding> Analyzer::RunFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [path, content] : files) {
    AddFile(path, content);
  }
  return Run();
}

std::string RenderText(const std::vector<Finding>& findings,
                       bool show_suppressed) {
  std::string out;
  size_t shown = 0;
  for (const Finding& f : findings) {
    if (f.suppressed && !show_suppressed) continue;
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
           f.message;
    if (f.suppressed) out += " (suppressed)";
    out += "\n";
    ++shown;
  }
  size_t unsuppressed = lint::CountUnsuppressed(findings);
  out += "efes_analyze: " + std::to_string(unsuppressed) +
         " unsuppressed finding(s), " +
         std::to_string(findings.size() - unsuppressed) + " suppressed";
  if (!show_suppressed && shown != findings.size()) {
    out += " (hidden)";
  }
  out += "\n";
  return out;
}

}  // namespace efes::analyze
