#include "efes/analyze/registry.h"

#include <utility>

#include "efes/common/file_io.h"

namespace efes::analyze {

std::vector<ManifestEntry> ParseManifest(std::string_view content) {
  std::vector<ManifestEntry> entries;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view line = content.substr(pos, eol - pos);
    ++line_number;
    pos = eol + 1;

    size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) continue;
    std::string_view trimmed = line.substr(start);
    if (trimmed.rfind("- `", 0) != 0) continue;
    if (line.find("(dynamic)") != std::string_view::npos) continue;
    size_t name_begin = 3;
    size_t name_end = trimmed.find('`', name_begin);
    if (name_end == std::string_view::npos || name_end == name_begin) {
      continue;
    }
    entries.push_back(
        {std::string(trimmed.substr(name_begin, name_end - name_begin)),
         line_number});
    if (eol == content.size()) break;
  }
  return entries;
}

Result<RegistryManifests> LoadRegistryDir(const std::string& dir) {
  RegistryManifests manifests;
  manifests.metrics_path = dir + "/metrics.md";
  manifests.faults_path = dir + "/faults.md";
  manifests.flags_path = dir + "/flags.md";

  EFES_ASSIGN_OR_RETURN(std::string metrics,
                        ReadFileToString(manifests.metrics_path));
  EFES_ASSIGN_OR_RETURN(std::string faults,
                        ReadFileToString(manifests.faults_path));
  EFES_ASSIGN_OR_RETURN(std::string flags,
                        ReadFileToString(manifests.flags_path));

  manifests.metrics = ParseManifest(metrics);
  manifests.faults = ParseManifest(faults);
  manifests.flags = ParseManifest(flags);
  return manifests;
}

}  // namespace efes::analyze
