// efes_analyze: whole-program semantic analysis for the EFES tree
// (DESIGN.md §15) — the second analyzer tier above efes_lint.
//
// efes_lint checks each file's token stream in isolation; the
// guarantees the server stack (PR 8) leans on are cross-file: a member
// guarded in one header is accessed from a .cc, a module's Assess body
// reaches CheckCancellation through two helper calls, an include edge
// quietly inverts the layer order, a metric name is registered in code
// but missing from the documented registry. This analyzer merges
// per-file summaries (summary.h) into one index and runs four
// whole-program checks over it:
//
//   lock-discipline  An EFES_GUARDED_BY(mutex)-annotated member is
//                    accessed in a method body outside a lexical
//                    std::lock_guard/unique_lock/scoped_lock region of
//                    that mutex (constructors, destructors, and
//                    *Locked caller-holds-the-lock helpers exempt).
//                    Also the inference direction: a member whose every
//                    access is under the same mutex must carry the
//                    annotation, so deleting one is itself a finding
//                    rather than a silent relaxation.
//   cancellation     An estimation root — a function named
//                    AssessComplexity/Run in core/serve/module code, or
//                    any function there fanning out via ParallelFor/
//                    ParallelMap — never reaches CheckCancellation
//                    through the name-based call graph. New modules
//                    cannot silently become un-cancellable.
//   layering         An `#include "efes/..."` edge points from a lower
//                    layer to a higher one (declared order: common <
//                    lint/telemetry < relational/provenance/analyze <
//                    cache/profiling < matching/csg < core+modules <
//                    execute/scenario < experiment < serve; tools/
//                    tests/bench above all), a directory is missing
//                    from the declared order, or headers form an
//                    include cycle.
//   registry         An observability name (metric/span, fault point,
//                    CLI flag) appears at a call site but not in the
//                    checked-in docs/registry/ manifest, or a manifest
//                    entry has no call site left (stale). Names built
//                    at runtime are excluded by the complete-dotted-
//                    literal rule and declared `(dynamic)` in the
//                    manifests.
//   bad-suppression  An EFES_ANALYZE_ALLOW comment with an unknown
//                    check id or no reason (not suppressible).
//
// Suppressions: `// EFES_ANALYZE_ALLOW(<check-id>): <reason>` on the
// finding's line or the line above, same contract as EFES_LINT_ALLOW.
// Stale-manifest findings anchor in the manifest .md files and are
// deliberately not suppressible — fix the manifest.

#ifndef EFES_ANALYZE_ANALYZE_H_
#define EFES_ANALYZE_ANALYZE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "efes/analyze/summary.h"
#include "efes/lint/lint.h"

namespace efes::analyze {

/// One directory-substring → layer-rank rule. Includes may point to the
/// same or a lower rank; an edge to a strictly higher rank is a
/// back-edge finding.
struct LayerRule {
  std::string dir;
  int rank = 0;
};

struct AnalyzeConfig {
  SummaryConfig summary;

  /// The declared layer order. Same-rank directories may include each
  /// other (cache<->profiling, core<->dedup are deliberate pairs; the
  /// include-cycle check still rejects header cycles inside them).
  std::vector<LayerRule> layers = {
      {"efes/common/", 0},
      {"efes/lint/", 1},       {"efes/telemetry/", 1},
      {"efes/relational/", 2}, {"efes/provenance/", 2},
      {"efes/analyze/", 2},
      {"efes/cache/", 3},      {"efes/profiling/", 3},
      {"efes/matching/", 4},   {"efes/csg/", 4},
      {"efes/core/", 5},       {"efes/dedup/", 5},
      {"efes/mapping/", 5},    {"efes/structure/", 5},
      {"efes/values/", 5},     {"efes/baseline/", 5},
      {"efes/execute/", 6},    {"efes/scenario/", 6},
      {"efes/experiment/", 7},
      {"efes/serve/", 8},
  };
  /// Path substrings sitting above every layer (may include anything).
  std::vector<std::string> top_paths = {"tools/", "tests/", "bench/"};

  /// Function names that are cancellation roots when defined under
  /// `checkpoint_dirs`.
  std::vector<std::string> checkpoint_roots = {"AssessComplexity", "Run"};
  /// Directories whose roots (and ParallelFor/ParallelMap callers) must
  /// reach the checkpoint.
  std::vector<std::string> checkpoint_dirs = {
      "efes/core/",   "efes/serve/",     "efes/execute/",
      "efes/mapping/", "efes/structure/", "efes/values/",
      "efes/dedup/",  "efes/baseline/"};
  std::string checkpoint_function = "CheckCancellation";
  /// Calling one of these also makes a function a root: a fan-out point
  /// must stay cancellable (today they are, via ParallelFor's own entry
  /// checkpoint — this is the regression guard for exactly that).
  std::vector<std::string> parallel_primitives = {"ParallelFor",
                                                  "ParallelMap"};
};

/// One backtick-quoted name parsed out of a manifest line.
struct ManifestEntry {
  std::string name;
  int line = 0;
};

/// The three docs/registry/ manifests (see registry.h for the loader).
struct RegistryManifests {
  std::string metrics_path = "docs/registry/metrics.md";
  std::string faults_path = "docs/registry/faults.md";
  std::string flags_path = "docs/registry/flags.md";
  std::vector<ManifestEntry> metrics;
  std::vector<ManifestEntry> faults;
  std::vector<ManifestEntry> flags;
};

/// Names of all analyzer checks, for --list-checks and validation.
const std::vector<std::string>& AllCheckIds();

/// Whole-program analyzer: feed every file, then Run(). Deterministic
/// for a fixed file set (findings are sorted by file/line/check).
class Analyzer {
 public:
  Analyzer() : Analyzer(AnalyzeConfig()) {}
  explicit Analyzer(AnalyzeConfig config);

  /// Summarizes and indexes one file.
  void AddFile(std::string_view path, std::string_view content);

  /// Installs the registry manifests and enables the registry check
  /// (without them the check is skipped — the CLI warns).
  void SetRegistry(RegistryManifests manifests);

  /// Runs every check over the merged index.
  std::vector<lint::Finding> Run() const;

  /// Convenience: AddFile each {path, content} pair, then Run.
  std::vector<lint::Finding> RunFiles(
      const std::vector<std::pair<std::string, std::string>>& files);

  const std::vector<FileSummary>& summaries() const { return summaries_; }

 private:
  AnalyzeConfig config_;
  std::vector<FileSummary> summaries_;
  bool has_registry_ = false;
  RegistryManifests registry_;
};

/// Text report, one "file:line: [check] message" per line plus an
/// "efes_analyze: ..." summary line (same shape as lint::RenderText).
std::string RenderText(const std::vector<lint::Finding>& findings,
                       bool show_suppressed = false);

}  // namespace efes::analyze

#endif  // EFES_ANALYZE_ANALYZE_H_
