#include "efes/analyze/summary.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "efes/lint/token.h"

namespace efes::analyze {
namespace {

using lint::Token;
using lint::TokenKind;

constexpr size_t kNpos = std::string_view::npos;

constexpr std::string_view kBadSuppression = "bad-suppression";

/// Check ids an EFES_ANALYZE_ALLOW comment may name (bad-suppression is
/// not suppressible, mirroring efes_lint).
constexpr std::string_view kSuppressibleChecks[] = {
    "lock-discipline", "cancellation", "layering", "registry"};

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool Contains(const std::vector<std::string>& haystack,
              std::string_view needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

/// Control-flow and expression keywords that look like `name(`.
bool IsCallLikeKeyword(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",    "while",    "switch",   "return",
      "sizeof",   "catch",  "new",      "delete",   "throw",
      "do",       "case",   "goto",     "decltype", "alignof",
      "operator", "static_assert", "noexcept", "typeid"};
  return kKeywords.count(s) > 0;
}

bool HasLowercase(std::string_view s) {
  for (char c : s) {
    if (c >= 'a' && c <= 'z') return true;
  }
  return false;
}

/// Strips the quotes off a plain "..." literal token.
std::string Unquote(std::string_view text) {
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return std::string(text.substr(1, text.size() - 2));
  }
  return std::string(text);
}

/// Same shape as efes_lint's suppression scanner, with the
/// EFES_ANALYZE_ALLOW marker and the analyzer's check catalog.
void CollectSuppressions(const std::vector<Token>& tokens,
                         std::string_view path,
                         std::vector<Suppression>* suppressions,
                         std::vector<lint::Finding>* findings) {
  constexpr std::string_view kMarker = "EFES_ANALYZE_ALLOW(";
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != kNpos) {
      int line = t.line + static_cast<int>(std::count(
                              text.begin(), text.begin() + pos, '\n'));
      size_t id_begin = pos + kMarker.size();
      pos = id_begin;
      if (id_begin >= text.size() || text[id_begin] < 'a' ||
          text[id_begin] > 'z') {
        continue;  // prose describing the syntax, not a suppression
      }
      size_t id_end = text.find(')', id_begin);
      if (id_end == kNpos) continue;
      std::string check(text.substr(id_begin, id_end - id_begin));
      bool known = std::find(std::begin(kSuppressibleChecks),
                             std::end(kSuppressibleChecks),
                             check) != std::end(kSuppressibleChecks);
      if (!known) {
        findings->push_back({std::string(path), line,
                             std::string(kBadSuppression),
                             "EFES_ANALYZE_ALLOW names unknown check '" +
                                 check + "'",
                             false});
        continue;
      }
      size_t r = id_end + 1;
      if (r < text.size() && text[r] == ':') ++r;
      size_t reason_end = text.find('\n', r);
      if (reason_end == kNpos) reason_end = text.size();
      std::string_view reason = text.substr(r, reason_end - r);
      bool has_reason = false;
      for (char c : reason) {
        if (c != ' ' && c != '\t' && c != '*' && c != '/') {
          has_reason = true;
          break;
        }
      }
      if (!has_reason) {
        findings->push_back(
            {std::string(path), line, std::string(kBadSuppression),
             "EFES_ANALYZE_ALLOW(" + check + ") has no reason; write "
             "EFES_ANALYZE_ALLOW(" + check + "): <why this is safe>",
             false});
        continue;
      }
      suppressions->push_back({std::move(check), line});
    }
  }
}

size_t MatchParen(const std::vector<Token>& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    if (IsPunct(code[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

size_t SkipAngles(const std::vector<Token>& code, size_t i) {
  int depth = 0;
  size_t limit = std::min(code.size(), i + 256);
  for (size_t k = i; k < limit; ++k) {
    if (code[k].kind != TokenKind::kPunct) continue;
    if (code[k].text == "<") ++depth;
    if (code[k].text == ">") --depth;
    if (code[k].text == ">>") depth -= 2;
    if (depth <= 0) return k + 1;
  }
  return kNpos;
}

struct ClassScope {
  std::string name;
  int body_depth = 0;
};

struct LockRegion {
  std::string var;
  std::vector<std::string> mutexes;
  int depth = 0;
  /// Toggled off/on by `var.unlock()` / `var.lock()`.
  bool active = true;
};

struct OpenFunction {
  std::string name;
  std::string class_name;
  int line = 0;
  /// Constructors and destructors: accesses are not recorded.
  bool exempt = false;
  int body_depth = 0;
  std::set<std::string> calls;
};

}  // namespace

FileSummary Summarize(std::string_view path, std::string_view content,
                      const SummaryConfig& config) {
  FileSummary out;
  out.path = std::string(path);

  std::vector<Token> tokens = lint::Tokenize(content);
  CollectSuppressions(tokens, path, &out.suppressions, &out.findings);

  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) code.push_back(t);
  }

  std::vector<ClassScope> classes;
  std::vector<LockRegion> locks;
  std::optional<OpenFunction> fn;
  int depth = 0;

  auto flush_function = [&]() {
    FunctionInfo info;
    info.name = std::move(fn->name);
    info.class_name = std::move(fn->class_name);
    info.line = fn->line;
    info.calls.assign(fn->calls.begin(), fn->calls.end());
    out.functions.push_back(std::move(info));
    fn.reset();
  };

  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];

    if (t.kind == TokenKind::kPunct) {
      if (t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == "}") {
        --depth;
        while (!locks.empty() && locks.back().depth > depth) {
          locks.pop_back();
        }
        if (fn && depth < fn->body_depth) flush_function();
        while (!classes.empty() && depth < classes.back().body_depth) {
          classes.pop_back();
        }
        continue;
      }
      if (t.text == "#" && i + 2 < code.size() &&
          IsIdent(code[i + 1], "include") &&
          code[i + 2].kind == TokenKind::kString) {
        std::string target = Unquote(code[i + 2].text);
        if (target.rfind("efes/", 0) == 0) {
          out.includes.push_back({std::move(target), code[i + 2].line});
        }
        i += 2;
        continue;
      }
      continue;
    }

    if (t.kind != TokenKind::kIdentifier) continue;

    // ---- observability literal sites (any scope) ---------------------
    {
      std::optional<LiteralSite::Kind> kind;
      if (Contains(config.metric_functions, t.text)) {
        kind = LiteralSite::Kind::kMetric;
      } else if (Contains(config.fault_functions, t.text)) {
        kind = LiteralSite::Kind::kFault;
      } else if (Contains(config.flag_functions, t.text)) {
        kind = LiteralSite::Kind::kFlag;
      }
      if (kind) {
        size_t open = kNpos;
        if (i + 1 < code.size() && IsPunct(code[i + 1], "(")) {
          open = i + 1;
        } else if (i + 2 < code.size() &&
                   code[i + 1].kind == TokenKind::kIdentifier &&
                   IsPunct(code[i + 2], "(")) {
          open = i + 2;  // declaration form: TraceSpan span("name", ...)
        }
        size_t close = open == kNpos ? kNpos : MatchParen(code, open);
        if (close != kNpos) {
          if (*kind == LiteralSite::Kind::kFlag) {
            // Only the first argument of a flag definition is a name.
            if (open + 1 < close &&
                code[open + 1].kind == TokenKind::kString) {
              out.literals.push_back({*kind, Unquote(code[open + 1].text),
                                      code[open + 1].line});
            }
          } else {
            for (size_t m = open + 1; m < close; ++m) {
              if (code[m].kind != TokenKind::kString) continue;
              std::string name = Unquote(code[m].text);
              // Complete dotted names only: concatenation fragments of
              // dynamic names ("fault.", ".hits") fail this test.
              if (lint::IsDottedMetricName(name)) {
                out.literals.push_back({*kind, std::move(name),
                                        code[m].line});
              }
            }
          }
        }
      }
    }

    // ---- class/struct scope tracking ---------------------------------
    if ((t.text == "class" || t.text == "struct") && !fn) {
      bool is_enum = i > 0 && IsIdent(code[i - 1], "enum");
      if (!is_enum && i + 1 < code.size() &&
          code[i + 1].kind == TokenKind::kIdentifier) {
        size_t name_i = i + 1;
        size_t k = name_i + 1;
        if (k < code.size() && IsIdent(code[k], "final")) ++k;
        size_t body = kNpos;
        if (k < code.size() && IsPunct(code[k], "{")) {
          body = k;
        } else if (k < code.size() && IsPunct(code[k], ":")) {
          for (size_t m = k + 1; m < code.size(); ++m) {
            if (IsPunct(code[m], "{")) {
              body = m;
              break;
            }
            if (IsPunct(code[m], ";")) break;
          }
        }
        // Anything else (`;`, `>`, `,`): a forward declaration or a
        // template parameter, not a definition.
        if (body != kNpos) {
          classes.push_back({std::string(code[name_i].text), depth + 1});
          ++depth;  // consume the body '{'
          i = body;
        }
      }
      continue;
    }

    // ---- EFES_GUARDED_BY annotations in a class body -----------------
    if (t.text == "EFES_GUARDED_BY" && i + 3 < code.size() &&
        IsPunct(code[i + 1], "(") &&
        code[i + 2].kind == TokenKind::kIdentifier &&
        IsPunct(code[i + 3], ")")) {
      if (!fn && !classes.empty() && depth == classes.back().body_depth &&
          i > 0 && code[i - 1].kind == TokenKind::kIdentifier) {
        out.guarded.push_back({classes.back().name,
                               std::string(code[i - 1].text),
                               std::string(code[i + 2].text), t.line});
      }
      i += 3;
      continue;
    }

    if (!fn) {
      // ---- function definition headers -------------------------------
      if (i + 1 < code.size() && IsPunct(code[i + 1], "(") &&
          !IsCallLikeKeyword(t.text) && HasLowercase(t.text) &&
          !(i > 0 && (IsPunct(code[i - 1], ".") ||
                      IsPunct(code[i - 1], "->")))) {
        bool is_dtor = i > 0 && IsPunct(code[i - 1], "~");
        size_t before = is_dtor ? i - 1 : i;  // index of '~' or the name
        std::string class_name;
        if (before >= 2 && IsPunct(code[before - 1], "::") &&
            code[before - 2].kind == TokenKind::kIdentifier) {
          class_name = std::string(code[before - 2].text);
        } else if (!classes.empty() &&
                   depth == classes.back().body_depth) {
          class_name = classes.back().name;
        }
        bool ctor_like =
            is_dtor || (!class_name.empty() && t.text == class_name);
        size_t close = MatchParen(code, i + 1);
        size_t body = kNpos;
        if (close != kNpos) {
          size_t k = close + 1;
          while (k < code.size()) {
            const Token& u = code[k];
            if (IsPunct(u, "{")) {
              body = k;
              break;
            }
            if (IsPunct(u, ";") || IsPunct(u, "=")) break;
            if (IsPunct(u, ":")) {
              if (ctor_like) {
                // Member-init list; the next top-level '{' is close
                // enough to the body (constructors are exempt anyway).
                for (size_t m = k + 1; m < code.size(); ++m) {
                  if (IsPunct(code[m], "{")) {
                    body = m;
                    break;
                  }
                  if (IsPunct(code[m], ";")) break;
                }
              }
              break;
            }
            bool allowed =
                u.kind == TokenKind::kIdentifier ||
                u.kind == TokenKind::kNumber ||
                (u.kind == TokenKind::kPunct &&
                 (u.text == "->" || u.text == "::" || u.text == "<" ||
                  u.text == ">" || u.text == ">>" || u.text == "*" ||
                  u.text == "&" || u.text == "&&" || u.text == "," ||
                  u.text == "(" || u.text == ")" || u.text == "[" ||
                  u.text == "]"));
            if (!allowed) break;
            ++k;
          }
        }
        if (body != kNpos) {
          OpenFunction open;
          open.name = std::string(t.text);
          open.class_name = std::move(class_name);
          open.line = t.line;
          // The *Locked suffix is the project convention for "caller
          // holds the guarding mutex"; such helpers are exempt from the
          // lock-discipline access check, like constructors/destructors.
          open.exempt = ctor_like || (t.text.size() > 6 &&
                                      t.text.substr(t.text.size() - 6) ==
                                          "Locked");
          open.body_depth = depth + 1;
          fn = std::move(open);
          ++depth;  // consume the body '{'
          i = body;
        }
      }
      continue;
    }

    // ---- inside a function body --------------------------------------

    // Lock region: [std::] lock_guard|unique_lock|scoped_lock [<...>]
    // var(args);
    if (Contains(config.lock_types, t.text)) {
      size_t k = i + 1;
      if (k < code.size() && IsPunct(code[k], "<")) {
        size_t after = SkipAngles(code, k);
        if (after != kNpos) k = after;
      }
      if (k + 1 < code.size() && code[k].kind == TokenKind::kIdentifier &&
          IsPunct(code[k + 1], "(")) {
        size_t close = MatchParen(code, k + 1);
        if (close != kNpos) {
          LockRegion region;
          region.var = std::string(code[k].text);
          region.depth = depth;
          for (size_t m = k + 2; m < close; ++m) {
            if (code[m].kind != TokenKind::kIdentifier) continue;
            // Skip qualified names (std::defer_lock and friends).
            if (IsPunct(code[m - 1], "::")) continue;
            if (m + 1 < close && IsPunct(code[m + 1], "::")) continue;
            region.mutexes.emplace_back(code[m].text);
          }
          std::sort(region.mutexes.begin(), region.mutexes.end());
          region.mutexes.erase(
              std::unique(region.mutexes.begin(), region.mutexes.end()),
              region.mutexes.end());
          if (!region.mutexes.empty()) locks.push_back(std::move(region));
          i = close;
          continue;
        }
      }
    }

    // var.unlock() / var.lock() suspends / resumes var's region.
    if (i + 2 < code.size() && IsPunct(code[i + 1], ".") &&
        (IsIdent(code[i + 2], "unlock") || IsIdent(code[i + 2], "lock"))) {
      for (LockRegion& region : locks) {
        if (region.var == t.text) {
          region.active = IsIdent(code[i + 2], "lock");
        }
      }
    }

    // Call-graph edge.
    if (i + 1 < code.size() && IsPunct(code[i + 1], "(") &&
        !IsCallLikeKeyword(t.text)) {
      fn->calls.emplace(t.text);
    }

    // Member-style access: trailing-underscore identifier not reached
    // through another object.
    if (!fn->exempt && !fn->class_name.empty() && t.text.size() > 1 &&
        t.text.back() == '_') {
      bool via_object =
          i > 0 &&
          (IsPunct(code[i - 1], ".") || IsPunct(code[i - 1], "->")) &&
          !(i > 1 && IsIdent(code[i - 2], "this"));
      bool qualified = i > 0 && IsPunct(code[i - 1], "::");
      if (!via_object && !qualified) {
        MemberAccess access;
        access.class_name = fn->class_name;
        access.member = std::string(t.text);
        access.line = t.line;
        for (const LockRegion& region : locks) {
          if (!region.active) continue;
          access.held_mutexes.insert(access.held_mutexes.end(),
                                     region.mutexes.begin(),
                                     region.mutexes.end());
        }
        std::sort(access.held_mutexes.begin(), access.held_mutexes.end());
        access.held_mutexes.erase(std::unique(access.held_mutexes.begin(),
                                              access.held_mutexes.end()),
                                  access.held_mutexes.end());
        out.accesses.push_back(std::move(access));
      }
    }
  }

  if (fn) flush_function();
  return out;
}

}  // namespace efes::analyze
