#include "efes/mapping/mapping_module.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "efes/common/deadline.h"
#include "efes/common/text_table.h"
#include "efes/provenance/provenance.h"

namespace efes {

namespace {

/// Undirected join graph over the relations of one schema: relations are
/// vertices, foreign keys are edges. Used to find the intermediate tables
/// a mapping query must traverse.
std::map<std::string, std::set<std::string>> BuildJoinGraph(
    const Schema& schema) {
  std::map<std::string, std::set<std::string>> graph;
  for (const RelationDef& rel : schema.relations()) {
    graph[rel.name()];  // ensure vertex
  }
  for (const Constraint& c : schema.constraints()) {
    if (c.kind != ConstraintKind::kForeignKey) continue;
    graph[c.relation].insert(c.referenced_relation);
    graph[c.referenced_relation].insert(c.relation);
  }
  return graph;
}

/// Shortest path between two relations in the join graph (BFS); empty
/// when unreachable, otherwise includes both endpoints.
std::vector<std::string> ShortestJoinPath(
    const std::map<std::string, std::set<std::string>>& graph,
    const std::string& from, const std::string& to) {
  if (from == to) return {from};
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue = {from};
  parent[from] = from;
  while (!queue.empty()) {
    std::string current = queue.front();
    queue.pop_front();
    auto it = graph.find(current);
    if (it == graph.end()) continue;
    for (const std::string& next : it->second) {
      if (parent.count(next) > 0) continue;
      parent[next] = current;
      if (next == to) {
        std::vector<std::string> path = {to};
        std::string walk = to;
        while (walk != from) {
          walk = parent[walk];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return {};
}

/// The set of source tables the mapping query needs: the contributing
/// relations plus any intermediate relations on pairwise shortest join
/// paths (a lightweight Steiner-tree approximation — exact Steiner trees
/// buy nothing for effort estimation).
std::vector<std::string> RequiredSourceTables(
    const Schema& source_schema,
    const std::vector<std::string>& contributing) {
  if (contributing.size() <= 1) return contributing;
  auto graph = BuildJoinGraph(source_schema);
  std::set<std::string> required(contributing.begin(), contributing.end());
  for (size_t i = 1; i < contributing.size(); ++i) {
    std::vector<std::string> path =
        ShortestJoinPath(graph, contributing[0], contributing[i]);
    required.insert(path.begin(), path.end());
  }
  return std::vector<std::string>(required.begin(), required.end());
}

}  // namespace

std::string MappingComplexityReport::ToText() const {
  TextTable table;
  table.SetHeader({"Source database", "Target table", "Source tables",
                   "Attributes", "Primary key", "Foreign keys"});
  for (const MappingConnection& c : connections_) {
    table.AddRow({c.source_database, c.target_table,
                  std::to_string(c.source_tables.size()),
                  std::to_string(c.attribute_count),
                  c.needs_key_generation ? "yes" : "no",
                  std::to_string(c.foreign_key_count)});
  }
  return table.ToString();
}

Result<std::unique_ptr<ComplexityReport>> MappingModule::AssessComplexity(
    const IntegrationScenario& scenario) const {
  ProvenanceRecorder* prov = ProvenanceRecorder::Active();
  std::vector<MappingConnection> connections;
  for (const SourceBinding& source : scenario.sources) {
    // Source databases can be numerous and each connection walk touches
    // the whole join graph; checkpoint at the per-source boundary.
    EFES_RETURN_IF_ERROR(CheckCancellation());
    const Schema& source_schema = source.database.schema();
    const Schema& target_schema = scenario.target.schema();
    for (const std::string& target_table :
         source.correspondences.TargetRelations()) {
      std::vector<Correspondence> attribute_correspondences =
          source.correspondences.AttributesInto(target_table);
      std::vector<std::string> contributing =
          source.correspondences.SourceRelationsFor(target_table);
      if (attribute_correspondences.empty() && contributing.empty()) {
        continue;
      }

      // Target foreign keys anchored at this table must be established by
      // the mapping: correspondences that feed FK attributes are key
      // remappings rather than plain attribute copies, and the mapping
      // query must additionally reach the source relation that anchors
      // the referenced target table (to resolve the new keys).
      std::set<std::string> fk_attributes;
      for (const Constraint& c : target_schema.constraints()) {
        if (c.kind != ConstraintKind::kForeignKey ||
            c.relation != target_table) {
          continue;
        }
        fk_attributes.insert(c.attributes.begin(), c.attributes.end());
        auto referenced_anchor = source.correspondences
                                     .RelationCorrespondenceFor(
                                         c.referenced_relation);
        if (referenced_anchor.ok() &&
            std::find(contributing.begin(), contributing.end(),
                      referenced_anchor->source_relation) ==
                contributing.end()) {
          contributing.push_back(referenced_anchor->source_relation);
        }
      }

      size_t copied_attributes = 0;
      for (const Correspondence& c : attribute_correspondences) {
        if (fk_attributes.count(c.target_attribute) == 0) {
          ++copied_attributes;
        }
      }

      MappingConnection connection;
      connection.source_database = source.database.name();
      connection.target_table = target_table;
      connection.source_tables =
          RequiredSourceTables(source_schema, contributing);
      connection.attribute_count = copied_attributes;

      // Key generation: the target table declares a primary key and none
      // of its key attributes receives values from this source.
      std::vector<std::string> pk = target_schema.PrimaryKeyOf(target_table);
      if (!pk.empty()) {
        bool any_key_attribute_fed = false;
        for (const std::string& key_attribute : pk) {
          if (!source.correspondences
                   .AttributesInto(target_table, key_attribute)
                   .empty()) {
            any_key_attribute_fed = true;
            break;
          }
        }
        connection.needs_key_generation = !any_key_attribute_fed;
      }

      // Target foreign keys anchored at this table must be established by
      // the mapping (value lookups / surrogate-key joins).
      for (const Constraint& c : target_schema.constraints()) {
        if (c.kind == ConstraintKind::kForeignKey &&
            c.relation == target_table) {
          ++connection.foreign_key_count;
        }
      }

      if (prov != nullptr) {
        // Each connection derives from the correspondence scores that
        // established it; the planner forwards the id into the task.
        std::vector<uint64_t> inputs;
        for (const Correspondence& c : attribute_correspondences) {
          inputs.push_back(prov->RecordValue(
              ProvenanceKind::kCorrespondence, "correspondence",
              connection.source_database + ":" + c.source_relation + "." +
                  c.source_attribute + " -> " + c.target_relation + "." +
                  c.target_attribute,
              c.confidence));
        }
        connection.provenance = prov->Record(
            ProvenanceKind::kFinding, "mapping connection",
            connection.source_database + " -> " + connection.target_table,
            std::move(inputs));
      }
      connections.push_back(std::move(connection));
    }
  }
  auto report =
      std::make_unique<MappingComplexityReport>(std::move(connections));
  if (prov != nullptr) {
    std::vector<uint64_t> connection_nodes;
    for (const MappingConnection& c : report->connections()) {
      connection_nodes.push_back(c.provenance);
    }
    report->set_provenance_node(prov->RecordValue(
        ProvenanceKind::kFinding, "mapping assessment", "",
        static_cast<double>(report->connections().size()),
        std::move(connection_nodes)));
  }
  return std::unique_ptr<ComplexityReport>(std::move(report));
}

Result<std::vector<Task>> MappingModule::PlanTasks(
    const ComplexityReport& report, ExpectedQuality quality,
    const ExecutionSettings& settings) const {
  (void)quality;    // a mapping must be written either way
  (void)settings;   // tool availability is priced by the effort function
  const auto* mapping_report =
      dynamic_cast<const MappingComplexityReport*>(&report);
  if (mapping_report == nullptr) {
    return Status::InvalidArgument(
        "MappingModule received a foreign complexity report");
  }
  std::vector<Task> tasks;
  for (const MappingConnection& c : mapping_report->connections()) {
    Task task;
    task.type = TaskType::kWriteMapping;
    task.category = TaskCategory::kMapping;
    task.quality = ExpectedQuality::kHighQuality;
    task.subject = c.source_database + " -> " + c.target_table;
    task.parameters[task_params::kTables] =
        static_cast<double>(c.source_tables.size());
    task.parameters[task_params::kAttributes] =
        static_cast<double>(c.attribute_count);
    task.parameters[task_params::kPrimaryKeys] =
        c.needs_key_generation ? 1.0 : 0.0;
    task.parameters[task_params::kForeignKeys] =
        static_cast<double>(c.foreign_key_count);
    if (c.provenance != 0) task.provenance.push_back(c.provenance);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace efes
