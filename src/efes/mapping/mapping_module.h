// The mapping estimation module (Sections 3.3/3.4).
//
// "For each table in the target schema and each source database that
// provides data for that table, some connection has to be established to
// fetch the source data and write it into the target table. [...] every
// connection can be described in terms of certain metrics, such as the
// number of source tables to be queried, the number of attributes that
// must be copied, and whether new IDs for a primary key need to be
// generated" — the mapping complexity report of Table 2.

#ifndef EFES_MAPPING_MAPPING_MODULE_H_
#define EFES_MAPPING_MAPPING_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "efes/core/module.h"

namespace efes {

/// One connection: a (source database, target table) pair that must be
/// realized by the executable mapping.
struct MappingConnection {
  std::string source_database;
  std::string target_table;
  /// Source relations that must be queried, including intermediate
  /// relations needed to join the contributing ones.
  std::vector<std::string> source_tables;
  /// Number of attributes to copy (attribute correspondences).
  size_t attribute_count = 0;
  /// Whether fresh primary-key values must be generated because no source
  /// attribute feeds the target table's key.
  bool needs_key_generation = false;
  /// Target-side foreign keys that the mapping must establish.
  size_t foreign_key_count = 0;
  /// Provenance-node id of this connection (0 = no recorder active).
  uint64_t provenance = 0;
};

class MappingComplexityReport : public ComplexityReport {
 public:
  explicit MappingComplexityReport(std::vector<MappingConnection> connections)
      : connections_(std::move(connections)) {}

  const std::vector<MappingConnection>& connections() const {
    return connections_;
  }

  std::string module_name() const override { return "mapping"; }
  std::string ToText() const override;
  size_t ProblemCount() const override { return connections_.size(); }

 private:
  std::vector<MappingConnection> connections_;
};

/// Detector + planner for mapping effort. The planner emits one
/// `Write mapping` task per connection; the effort function of Example
/// 3.8 / Table 9 then prices tables, attributes, and key generation.
class MappingModule : public EstimationModule {
 public:
  std::string name() const override { return "mapping"; }

  Result<std::unique_ptr<ComplexityReport>> AssessComplexity(
      const IntegrationScenario& scenario) const override;

  Result<std::vector<Task>> PlanTasks(
      const ComplexityReport& report, ExpectedQuality quality,
      const ExecutionSettings& settings) const override;
};

}  // namespace efes

#endif  // EFES_MAPPING_MAPPING_MODULE_H_
