// Renderers for the provenance DAG: the `--explain[=<task-id>]` text tree
// and the `provenance` section of the JSON export. Both honor the
// `provenance.export` fault point and a degraded snapshot by reporting a
// degraded explain section instead of failing the run.

#ifndef EFES_PROVENANCE_RENDER_H_
#define EFES_PROVENANCE_RENDER_H_

#include <string>
#include <string_view>

#include "efes/common/json_writer.h"
#include "efes/common/result.h"
#include "efes/provenance/provenance.h"

namespace efes {

/// Renders the DAG as a text tree rooted at the total-effort node (or, with
/// a non-empty `task_filter` such as "t3" or "3", at that task's effort
/// node). Shared nodes are expanded once and referenced by id afterwards.
/// Fails with kNotFound for an unknown task id and with kUnavailable when
/// the snapshot is degraded or the `provenance.export` fault point fires —
/// callers treat the latter as "degraded", not as a run failure.
Result<std::string> RenderProvenanceTree(const ProvenanceSnapshot& snapshot,
                                         std::string_view task_filter = {});

/// Writes the snapshot as one JSON object value: `{"nodes": [...]}`, or
/// `{"degraded": true}` when the snapshot is degraded or the
/// `provenance.export` fault point fires. The caller owns the surrounding
/// document and has already emitted the key.
void WriteProvenanceJson(const ProvenanceSnapshot& snapshot, JsonWriter& json);

}  // namespace efes

#endif  // EFES_PROVENANCE_RENDER_H_
