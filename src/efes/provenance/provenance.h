// Estimate provenance: a typed DAG that links every number the engine
// reports — planned tasks, per-module effort, the total — back to the
// inputs that produced it: §5.1 statistic values with their source and
// column ids, discovered constraints, matcher correspondence scores,
// decision thresholds (e.g. the 0.9 fit cutoff), and effort-model
// parameters.
//
// Recording is ambient and off by default, mirroring ScopedProfileCache:
// a ProvenanceRecorder only observes runs while a ScopedProvenanceRecorder
// is on the stack, so clean runs stay byte-identical to an uninstrumented
// build. Pipeline code records through ProvenanceRecorder::Active() and
// treats a null recorder (or a returned id of 0) as "not recording".
//
// Determinism contract: node ids are assigned in recording order, and all
// recording happens either on the sequential pipeline path or through
// ProvenanceFragment — per-work-item buffers built inside parallel loops
// and absorbed afterwards in canonical item order. The resulting DAG (and
// therefore `--explain` output) is bit-identical for any --threads=N and
// for cold/warm/uncached cache states.

#ifndef EFES_PROVENANCE_PROVENANCE_H_
#define EFES_PROVENANCE_PROVENANCE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "efes/common/thread_annotations.h"

namespace efes {

/// Node taxonomy, from raw evidence to priced outputs (DESIGN.md §12).
enum class ProvenanceKind {
  kStatistic,       // a §5.1 statistic value (fill fraction, distinct count)
  kConstraint,      // a prescribed target constraint or inferred cardinality
  kCorrespondence,  // a schema correspondence with its matcher score
  kThreshold,       // a decision threshold, e.g. the 0.9 fit cutoff
  kParameter,       // an effort-model or task parameter value
  kFinding,         // a detector finding (connection, conflict, heterogeneity)
  kTask,            // a planned task
  kTaskEffort,      // one effort-function evaluation (minutes for one task)
  kModuleEffort,    // a per-module effort subtotal
  kTotalEffort,     // the estimate's bottom line
};

std::string_view ProvenanceKindToString(ProvenanceKind kind);

/// One vertex of the provenance DAG. `inputs` point at the nodes this one
/// was derived from; leaves (statistics, thresholds, parameters) have none.
struct ProvenanceNode {
  /// 1-based recording-order id; 0 is the reserved "no node" sentinel.
  uint64_t id = 0;
  ProvenanceKind kind = ProvenanceKind::kStatistic;
  /// What the node is, e.g. "statistic source.non_null_fraction".
  std::string label;
  /// What it is about, e.g. "freedb:songs.length -> tracks.duration".
  std::string subject;
  /// Short stable handle for CLI lookup (`--explain=t3`); tasks only.
  std::string ref;
  bool has_value = false;
  double value = 0.0;
  std::vector<uint64_t> inputs;
};

/// Point-in-time copy of a recorder's DAG, as handed to the renderers.
struct ProvenanceSnapshot {
  std::vector<ProvenanceNode> nodes;
  /// True when recording hit the `provenance.record` fault point: the DAG
  /// is incomplete and renderers must degrade instead of explaining.
  bool degraded = false;
};

/// Nodes buffered inside one parallel work item, before global ids exist.
/// A fragment references earlier nodes either by global id (for nodes
/// recorded before the parallel section, e.g. thresholds) or by the local
/// index Add() returned (for nodes in the same fragment). The recorder
/// assigns real ids when it absorbs the fragment on the sequential merge
/// path, which is what keeps ids canonical under any thread count.
class ProvenanceFragment {
 public:
  /// Appends a node; returns its local index within this fragment.
  size_t Add(ProvenanceKind kind, std::string label, std::string subject,
             std::vector<uint64_t> inputs = {},
             std::vector<size_t> local_inputs = {});
  size_t AddValue(ProvenanceKind kind, std::string label, std::string subject,
                  double value, std::vector<uint64_t> inputs = {},
                  std::vector<size_t> local_inputs = {});

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

 private:
  friend class ProvenanceRecorder;

  struct PendingNode {
    ProvenanceNode node;  // id unassigned; node.inputs hold global ids
    std::vector<size_t> local_inputs;
  };
  std::vector<PendingNode> nodes_;
};

/// Collects the provenance DAG for one estimation run. Thread-safe, but
/// parallel phases should buffer into ProvenanceFragments and Absorb()
/// them in canonical order — direct Record() calls from worker threads
/// would make ids scheduling-dependent.
class ProvenanceRecorder {
 public:
  ProvenanceRecorder() = default;
  ProvenanceRecorder(const ProvenanceRecorder&) = delete;
  ProvenanceRecorder& operator=(const ProvenanceRecorder&) = delete;

  /// Records one node and returns its id, or 0 when recording has
  /// degraded (the `provenance.record` fault point fired). Input ids of 0
  /// are dropped, so callers can pass through unset handles freely.
  uint64_t Record(ProvenanceKind kind, std::string label, std::string subject,
                  std::vector<uint64_t> inputs = {});
  uint64_t RecordValue(ProvenanceKind kind, std::string label,
                       std::string subject, double value,
                       std::vector<uint64_t> inputs = {});

  /// Assigns global ids to `fragment`'s nodes in order; returns one global
  /// id per local index (all 0 when degraded).
  std::vector<uint64_t> Absorb(const ProvenanceFragment& fragment);

  /// Attaches a lookup handle (e.g. "t3") to an already-recorded node.
  void SetRef(uint64_t id, std::string ref);

  bool degraded() const;
  ProvenanceSnapshot Snapshot() const;

  /// The recorder installed by the innermost ScopedProvenanceRecorder, or
  /// nullptr when no one is recording (the default).
  static ProvenanceRecorder* Active();

 private:
  uint64_t RecordLocked(ProvenanceNode node);

  mutable std::mutex mutex_;
  std::vector<ProvenanceNode> nodes_ EFES_GUARDED_BY(mutex_);
  bool degraded_ EFES_GUARDED_BY(mutex_) = false;
};

/// Installs a recorder as the ambient ProvenanceRecorder::Active() for the
/// current scope and restores the previous one on destruction.
class ScopedProvenanceRecorder {
 public:
  explicit ScopedProvenanceRecorder(ProvenanceRecorder* recorder);
  ~ScopedProvenanceRecorder();

  ScopedProvenanceRecorder(const ScopedProvenanceRecorder&) = delete;
  ScopedProvenanceRecorder& operator=(const ScopedProvenanceRecorder&) =
      delete;

 private:
  ProvenanceRecorder* previous_ = nullptr;
};

}  // namespace efes

#endif  // EFES_PROVENANCE_PROVENANCE_H_
