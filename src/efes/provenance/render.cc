#include "efes/provenance/render.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "efes/common/fault.h"
#include "efes/common/string_util.h"

namespace efes {

namespace {

std::string NodeLine(const ProvenanceNode& node) {
  std::string line = "#" + std::to_string(node.id) + " " + node.label;
  if (!node.subject.empty()) line += " (" + node.subject + ")";
  if (node.has_value) line += " = " + FormatDouble(node.value);
  return line;
}

void RenderSubtree(const std::map<uint64_t, const ProvenanceNode*>& by_id,
                   const ProvenanceNode& node, const std::string& prefix,
                   std::set<uint64_t>* expanded, std::ostringstream* out) {
  for (size_t i = 0; i < node.inputs.size(); ++i) {
    auto it = by_id.find(node.inputs[i]);
    if (it == by_id.end()) continue;
    const ProvenanceNode& child = *it->second;
    const bool last = i + 1 == node.inputs.size();
    *out << prefix << (last ? "`- " : "+- ") << NodeLine(child);
    if (!child.inputs.empty() && !expanded->insert(child.id).second) {
      // The DAG shares evidence (thresholds, settings) across consumers;
      // expand each shared subtree once and point back afterwards.
      *out << " (shown above)\n";
      continue;
    }
    *out << "\n";
    RenderSubtree(by_id, child, prefix + (last ? "   " : "|  "), expanded,
                  out);
  }
}

}  // namespace

Result<std::string> RenderProvenanceTree(const ProvenanceSnapshot& snapshot,
                                         std::string_view task_filter) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("provenance.export"));
  if (snapshot.degraded) {
    return Status::Unavailable(
        "provenance recording degraded; explain tree unavailable");
  }

  std::map<uint64_t, const ProvenanceNode*> by_id;
  std::set<uint64_t> consumed;
  for (const ProvenanceNode& node : snapshot.nodes) {
    by_id[node.id] = &node;
    consumed.insert(node.inputs.begin(), node.inputs.end());
  }

  std::vector<const ProvenanceNode*> roots;
  if (task_filter.empty()) {
    // Root at the total-effort node when the snapshot has one: evidence
    // that never fed a finding (stats below every threshold, unused
    // thresholds) stays in the JSON export but out of the tree. Without
    // a total (e.g. free-standing matcher scores), show every root.
    const ProvenanceNode* total = nullptr;
    for (const ProvenanceNode& node : snapshot.nodes) {
      if (node.kind == ProvenanceKind::kTotalEffort) total = &node;
    }
    if (total != nullptr) {
      roots.push_back(total);
    } else {
      for (const ProvenanceNode& node : snapshot.nodes) {
        if (!consumed.contains(node.id)) roots.push_back(&node);
      }
    }
  } else {
    const ProvenanceNode* task = nullptr;
    for (const ProvenanceNode& node : snapshot.nodes) {
      if (!node.ref.empty() && (node.ref == task_filter ||
                                node.ref == "t" + std::string(task_filter))) {
        task = &node;
        break;
      }
    }
    if (task == nullptr) {
      return Status::NotFound("no task with id '" + std::string(task_filter) +
                              "' in the provenance record");
    }
    // Explain the priced number, not just the task: root at the effort
    // node derived from this task when there is one.
    const ProvenanceNode* root = task;
    for (const ProvenanceNode& node : snapshot.nodes) {
      if (node.kind == ProvenanceKind::kTaskEffort &&
          std::find(node.inputs.begin(), node.inputs.end(), task->id) !=
              node.inputs.end()) {
        root = &node;
        break;
      }
    }
    roots.push_back(root);
  }

  std::ostringstream out;
  std::set<uint64_t> expanded;
  for (const ProvenanceNode* root : roots) {
    out << NodeLine(*root) << "\n";
    expanded.insert(root->id);
    RenderSubtree(by_id, *root, "", &expanded, &out);
  }
  return out.str();
}

void WriteProvenanceJson(const ProvenanceSnapshot& snapshot,
                         JsonWriter& json) {
  const bool degraded =
      snapshot.degraded || !CheckFaultPoint("provenance.export").ok();
  json.BeginObject();
  if (degraded) {
    json.Key("degraded").Bool(true).EndObject();
    return;
  }
  json.Key("nodes").BeginArray();
  for (const ProvenanceNode& node : snapshot.nodes) {
    json.BeginObject()
        .Key("id")
        .Number(node.id)
        .Key("kind")
        .String(ProvenanceKindToString(node.kind))
        .Key("label")
        .String(node.label);
    if (!node.subject.empty()) json.Key("subject").String(node.subject);
    if (!node.ref.empty()) json.Key("ref").String(node.ref);
    if (node.has_value) json.Key("value").Number(node.value);
    json.Key("inputs").BeginArray();
    for (uint64_t input : node.inputs) json.Number(input);
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();
}

}  // namespace efes
