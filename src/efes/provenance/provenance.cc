#include "efes/provenance/provenance.h"

#include <atomic>
#include <utility>

#include "efes/common/fault.h"

namespace efes {

namespace {

/// The ambient recorder. Process-global rather than thread-local because
/// one run's parallel workers must all see the recorder installed by the
/// driver thread; workers only buffer into fragments, so the shared
/// pointer never serializes them. Atomic so unrelated server requests
/// reading a null recorder never race an explain request installing one
/// (the server additionally runs explain requests exclusively — recording
/// itself is still single-run-at-a-time).
std::atomic<ProvenanceRecorder*> g_active_recorder{nullptr};

void DropZeroIds(std::vector<uint64_t>* ids) {
  std::erase(*ids, static_cast<uint64_t>(0));
}

}  // namespace

std::string_view ProvenanceKindToString(ProvenanceKind kind) {
  switch (kind) {
    case ProvenanceKind::kStatistic:
      return "statistic";
    case ProvenanceKind::kConstraint:
      return "constraint";
    case ProvenanceKind::kCorrespondence:
      return "correspondence";
    case ProvenanceKind::kThreshold:
      return "threshold";
    case ProvenanceKind::kParameter:
      return "parameter";
    case ProvenanceKind::kFinding:
      return "finding";
    case ProvenanceKind::kTask:
      return "task";
    case ProvenanceKind::kTaskEffort:
      return "task_effort";
    case ProvenanceKind::kModuleEffort:
      return "module_effort";
    case ProvenanceKind::kTotalEffort:
      return "total_effort";
  }
  return "unknown";
}

size_t ProvenanceFragment::Add(ProvenanceKind kind, std::string label,
                               std::string subject,
                               std::vector<uint64_t> inputs,
                               std::vector<size_t> local_inputs) {
  PendingNode pending;
  pending.node.kind = kind;
  pending.node.label = std::move(label);
  pending.node.subject = std::move(subject);
  pending.node.inputs = std::move(inputs);
  pending.local_inputs = std::move(local_inputs);
  nodes_.push_back(std::move(pending));
  return nodes_.size() - 1;
}

size_t ProvenanceFragment::AddValue(ProvenanceKind kind, std::string label,
                                    std::string subject, double value,
                                    std::vector<uint64_t> inputs,
                                    std::vector<size_t> local_inputs) {
  size_t index = Add(kind, std::move(label), std::move(subject),
                     std::move(inputs), std::move(local_inputs));
  nodes_[index].node.has_value = true;
  nodes_[index].node.value = value;
  return index;
}

uint64_t ProvenanceRecorder::RecordLocked(ProvenanceNode node) {
  if (degraded_) return 0;
  if (!CheckFaultPoint("provenance.record").ok()) {
    // Degrade, don't fail: the run proceeds and renderers report a
    // degraded (absent) explain section instead of an error.
    degraded_ = true;
    return 0;
  }
  DropZeroIds(&node.inputs);
  node.id = nodes_.size() + 1;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

uint64_t ProvenanceRecorder::Record(ProvenanceKind kind, std::string label,
                                    std::string subject,
                                    std::vector<uint64_t> inputs) {
  ProvenanceNode node;
  node.kind = kind;
  node.label = std::move(label);
  node.subject = std::move(subject);
  node.inputs = std::move(inputs);
  std::lock_guard<std::mutex> lock(mutex_);
  return RecordLocked(std::move(node));
}

uint64_t ProvenanceRecorder::RecordValue(ProvenanceKind kind,
                                         std::string label,
                                         std::string subject, double value,
                                         std::vector<uint64_t> inputs) {
  ProvenanceNode node;
  node.kind = kind;
  node.label = std::move(label);
  node.subject = std::move(subject);
  node.has_value = true;
  node.value = value;
  node.inputs = std::move(inputs);
  std::lock_guard<std::mutex> lock(mutex_);
  return RecordLocked(std::move(node));
}

std::vector<uint64_t> ProvenanceRecorder::Absorb(
    const ProvenanceFragment& fragment) {
  std::vector<uint64_t> ids(fragment.nodes_.size(), 0);
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t index = 0; index < fragment.nodes_.size(); ++index) {
    const ProvenanceFragment::PendingNode& pending = fragment.nodes_[index];
    ProvenanceNode node = pending.node;
    for (size_t local : pending.local_inputs) {
      if (local < index) node.inputs.push_back(ids[local]);
    }
    ids[index] = RecordLocked(std::move(node));
  }
  return ids;
}

void ProvenanceRecorder::SetRef(uint64_t id, std::string ref) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > nodes_.size()) return;
  nodes_[id - 1].ref = std::move(ref);
}

bool ProvenanceRecorder::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

ProvenanceSnapshot ProvenanceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProvenanceSnapshot snapshot;
  snapshot.nodes = nodes_;
  snapshot.degraded = degraded_;
  return snapshot;
}

ProvenanceRecorder* ProvenanceRecorder::Active() {
  return g_active_recorder.load(std::memory_order_acquire);
}

ScopedProvenanceRecorder::ScopedProvenanceRecorder(
    ProvenanceRecorder* recorder)
    : previous_(g_active_recorder.exchange(recorder,
                                           std::memory_order_acq_rel)) {}

ScopedProvenanceRecorder::~ScopedProvenanceRecorder() {
  g_active_recorder.store(previous_, std::memory_order_release);
}

}  // namespace efes
