// Lexer for efes_lint: splits C++ source into a flat token stream with
// line numbers, so checks operate on real tokens instead of regexes over
// raw text. Comments, string literals (including raw strings), and
// character literals are single tokens, which is what keeps the checks
// free of "matched a keyword inside a comment" false positives.
//
// This is deliberately NOT a conforming C++ lexer: no trigraphs, no
// universal-character-names, and preprocessor directives are tokenized
// inline (`#` is an ordinary punctuator). That is enough for the
// project-invariant checks in lint.h, and it never fails: malformed
// input degrades to best-effort tokens rather than an error.

#ifndef EFES_LINT_TOKEN_H_
#define EFES_LINT_TOKEN_H_

#include <string_view>
#include <vector>

namespace efes::lint {

enum class TokenKind {
  /// Identifier or keyword ([A-Za-z_][A-Za-z0-9_]*).
  kIdentifier,
  /// Numeric literal, including hex/binary/float/digit-separator forms.
  kNumber,
  /// String or character literal: "...", '...', R"tag(...)tag", with any
  /// encoding prefix (u8, u, U, L).
  kString,
  /// Operator or punctuator. Multi-character operators (::, ->, <<, ...)
  /// are one token.
  kPunct,
  /// // or /* */ comment, text preserved (suppressions live here).
  kComment,
};

struct Token {
  TokenKind kind;
  /// View into the source buffer passed to Tokenize.
  std::string_view text;
  /// 1-based line of the token's first character.
  int line;
};

/// Tokenizes `source`. Never fails; unterminated literals/comments are
/// consumed to end of line or end of input. The returned views alias
/// `source`, which must outlive them.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace efes::lint

#endif  // EFES_LINT_TOKEN_H_
