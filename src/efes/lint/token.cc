#include "efes/lint/token.h"

#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>

namespace efes::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators, longest first so maximal munch works by
/// scanning the array in order.
constexpr std::array<std::string_view, 22> kMultiPunct = {
    "...", "->*", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "++", "--", "##"};

/// True if the lexer position sits on a raw-string opener, given that
/// source[i] == 'R' (possibly after an encoding prefix already consumed by
/// the caller). Raw strings are R"tag( ... )tag".
bool IsRawStringAt(std::string_view s, size_t i) {
  return i + 1 < s.size() && s[i] == 'R' && s[i + 1] == '"';
}

/// Consumes a raw string starting at s[i] == 'R'. Returns one past the
/// closing quote (or s.size() when unterminated).
size_t ConsumeRawString(std::string_view s, size_t i, int* line) {
  size_t p = i + 2;  // skip R"
  size_t tag_begin = p;
  while (p < s.size() && s[p] != '(' && s[p] != '"' && s[p] != '\n') ++p;
  if (p >= s.size() || s[p] != '(') return p;  // malformed; stop here
  std::string_view tag = s.substr(tag_begin, p - tag_begin);
  ++p;  // skip (
  while (p < s.size()) {
    if (s[p] == '\n') ++*line;
    if (s[p] == ')' && s.compare(p + 1, tag.size(), tag) == 0 &&
        p + 1 + tag.size() < s.size() && s[p + 1 + tag.size()] == '"') {
      return p + tag.size() + 2;
    }
    ++p;
  }
  return p;
}

/// Consumes a "..." or '...' literal starting at the opening quote.
size_t ConsumeQuoted(std::string_view s, size_t i) {
  char quote = s[i];
  size_t p = i + 1;
  while (p < s.size() && s[p] != quote && s[p] != '\n') {
    if (s[p] == '\\' && p + 1 < s.size()) ++p;  // skip escaped char
    ++p;
  }
  if (p < s.size() && s[p] == quote) ++p;
  return p;
}

/// Length of the string-literal encoding prefix at s[i] (u8, u, U, L),
/// but only when a quote or raw-string opener follows; 0 otherwise.
size_t EncodingPrefixLength(std::string_view s, size_t i) {
  size_t n = 0;
  if (s.compare(i, 2, "u8") == 0) {
    n = 2;
  } else if (s[i] == 'u' || s[i] == 'U' || s[i] == 'L') {
    n = 1;
  }
  if (n == 0) return 0;
  size_t after = i + n;
  if (after < s.size() && (s[after] == '"' || s[after] == '\'')) return n;
  if (after < s.size() && IsRawStringAt(s, after)) return n;
  return 0;
}

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      if (end == std::string_view::npos) end = n;
      tokens.push_back({TokenKind::kComment, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start_line = line;
      size_t end = source.find("*/", i + 2);
      size_t stop = (end == std::string_view::npos) ? n : end + 2;
      for (size_t p = i; p < stop; ++p) {
        if (source[p] == '\n') ++line;
      }
      tokens.push_back(
          {TokenKind::kComment, source.substr(i, stop - i), start_line});
      i = stop;
      continue;
    }
    // String-ish literals: raw strings, encoding prefixes, plain quotes.
    if (IsRawStringAt(source, i)) {
      int start_line = line;
      size_t end = ConsumeRawString(source, i, &line);
      tokens.push_back(
          {TokenKind::kString, source.substr(i, end - i), start_line});
      i = end;
      continue;
    }
    if (size_t prefix = EncodingPrefixLength(source, i); prefix > 0) {
      size_t body = i + prefix;
      int start_line = line;
      size_t end = IsRawStringAt(source, body)
                       ? ConsumeRawString(source, body, &line)
                       : ConsumeQuoted(source, body);
      tokens.push_back(
          {TokenKind::kString, source.substr(i, end - i), start_line});
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      size_t end = ConsumeQuoted(source, i);
      tokens.push_back({TokenKind::kString, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(source[end])) ++end;
      tokens.push_back(
          {TokenKind::kIdentifier, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(source[i + 1]))) {
      // pp-number: digits plus idents, quotes-as-separators, dots, and
      // exponent signs. Over-broad is fine — checks ignore numbers.
      size_t end = i;
      while (end < n) {
        char d = source[end];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++end;
        } else if ((d == '+' || d == '-') && end > i &&
                   (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                    source[end - 1] == 'p' || source[end - 1] == 'P')) {
          ++end;
        } else {
          break;
        }
      }
      tokens.push_back({TokenKind::kNumber, source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Punctuator: maximal munch over the multi-char table, else one char.
    size_t len = 1;
    for (std::string_view p : kMultiPunct) {
      if (source.compare(i, p.size(), p) == 0) {
        len = p.size();
        break;
      }
    }
    tokens.push_back({TokenKind::kPunct, source.substr(i, len), line});
    i += len;
  }
  return tokens;
}

}  // namespace efes::lint
