// SARIF 2.1.0 serialization for static-analysis findings, shared by
// efes_lint and efes_analyze (`--format=sarif` in both CLIs). SARIF is
// the interchange format CI systems (GitHub code scanning, Azure
// DevOps, VS Code SARIF viewers) ingest to annotate findings inline on
// changed files.
//
// The emitted document is deliberately minimal but valid: one run, one
// driver with a rule per distinct check id, one result per finding.
// Suppressed findings are carried with an in-source `suppressions`
// entry (consumers treat them as reviewed), unsuppressed ones at level
// "error" — mirroring the exit-code contract of both tools.

#ifndef EFES_LINT_SARIF_H_
#define EFES_LINT_SARIF_H_

#include <string>
#include <string_view>
#include <vector>

#include "efes/lint/lint.h"

namespace efes::lint {

/// Renders `findings` as a SARIF 2.1.0 document for `tool_name`
/// ("efes_lint" / "efes_analyze"). Rules are the sorted distinct check
/// ids present in `findings`; output is deterministic for a fixed
/// finding list.
std::string RenderSarif(std::string_view tool_name,
                        const std::vector<Finding>& findings);

}  // namespace efes::lint

#endif  // EFES_LINT_SARIF_H_
