// efes_lint: project-invariant static analysis for the EFES tree.
//
// The guarantees PRs 1-3 established at runtime — bit-identical parallel
// output, contained module failures, atomic file writes — are easy to
// regress silently at the source level: an ignored Status, an
// unordered_map iterated straight into a report, a raw ofstream that
// bypasses WriteFileAtomic. This linter encodes those invariants as
// machine-checked rules over the token stream (see token.h), runs as a
// tier-1 ctest, and fails the build on any unsuppressed finding.
//
// Check catalog (ids as they appear in findings and suppressions):
//
//   discarded-status    A call to a function returning Status/Result<T>
//                       whose result is discarded without `(void)`.
//                       Function names are collected in an index pass
//                       over all files (declarations and definitions).
//   nondeterminism      rand/srand/std::random_device/time()/argless
//                       system_clock::now outside the seeded-random and
//                       telemetry-clock allowlists.
//   unordered-iteration Range-for over a std::unordered_map/set variable
//                       inside report/export/text-rendering files, where
//                       iteration order would leak into output bytes.
//   raw-file-write      std::ofstream/fopen/std::filesystem::rename
//                       outside common/file_io (everything else must go
//                       through WriteFileAtomic).
//   header-hygiene      A header without #pragma once or an
//                       #ifndef/#define guard, or `using namespace` in a
//                       header.
//   banned-function     strcpy/sprintf/atoi, naked new/delete, and the
//                       removed mutable_effort_model() accessor
//                       (leaked singletons carry suppressions).
//   unbounded-wait      A blocking primitive with no cancellation path:
//                       this_thread::sleep_for/sleep_until, or a .wait()
//                       call without a predicate argument, outside the
//                       allowlisted common/ implementation files. Server
//                       code must block via predicate/deadline overloads
//                       (wait_for with predicate, CancelToken) so drain
//                       and watchdog cancellation can always make
//                       progress.
//   metric-name         A complete string-literal name passed to
//                       GetCounter/GetGauge/GetHistogram/TraceSpan that
//                       does not follow the dotted lowercase
//                       `module.phase.metric` scheme (two or more
//                       [a-z0-9_]+ segments).
//   whole-column-profile A use of the deprecated one-shot profiling API
//                       (ComputeStatistics, ComputeStatisticsBatch,
//                       ColumnStatisticsRequest) outside profiling/.
//                       New call sites must go through ProfileColumn/
//                       ProfileColumns/ProfileRequest (profiler.h) so
//                       profiling stays chunked, budget-aware, and
//                       byte-identical across thread counts.
//   bad-suppression     An EFES_LINT_ALLOW comment with an unknown check
//                       id or without a reason.
//
// Suppressions: `// EFES_LINT_ALLOW(<check-id>): <reason>` silences
// findings of that check on the same line and the line below. The reason
// is mandatory; a reasonless or unknown-check suppression is itself a
// finding (bad-suppression), so the escape hatch stays auditable.

#ifndef EFES_LINT_LINT_H_
#define EFES_LINT_LINT_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace efes::lint {

/// One rule violation (or suppressed would-be violation).
struct Finding {
  std::string file;
  int line = 0;
  /// Check id, e.g. "discarded-status".
  std::string check;
  std::string message;
  /// True when an EFES_LINT_ALLOW comment covers this finding. Suppressed
  /// findings are reported (for --show-suppressed style tooling) but do
  /// not fail the run.
  bool suppressed = false;
};

/// Where each class of construct is legitimate. Entries are
/// forward-slash path substrings matched against the linted file's path.
struct LintConfig {
  /// Files allowed to touch raw entropy/time sources.
  std::vector<std::string> nondeterminism_allowlist = {"common/random",
                                                       "common/clock"};
  /// Files allowed to open files for writing / rename directly.
  std::vector<std::string> raw_file_write_allowlist = {"common/file_io"};
  /// Files allowed naked new/delete without a suppression comment.
  std::vector<std::string> banned_function_allowlist = {};
  /// Files allowed raw sleeps / predicate-less waits: the common/
  /// concurrency and I/O primitives everything else is supposed to
  /// block through.
  std::vector<std::string> unbounded_wait_allowlist = {"common/"};
  /// Files allowed to name the deprecated whole-column profiling API
  /// (ComputeStatistics/ComputeStatisticsBatch/ColumnStatisticsRequest):
  /// the profiling module that declares, defines, and wraps it. Every
  /// other call site must use ProfileColumn/ProfileColumns.
  std::vector<std::string> whole_column_profile_allowlist = {"profiling/"};
  /// Output-rendering paths where unordered iteration order would become
  /// observable bytes; the unordered-iteration check only runs here.
  std::vector<std::string> ordered_output_paths = {
      "telemetry/report",       "experiment/json_export",
      "experiment/visualization", "common/text_table",
      "common/json_writer",     "csg/render_dot",
      "core/engine"};
};

/// Names of all checks, for --list-checks and validation.
const std::vector<std::string>& AllCheckIds();

/// True for dotted lowercase metric/span names: two or more [a-z0-9_]+
/// segments joined by single dots (`module.phase.metric`). Shared with
/// efes_analyze, whose registry check collects exactly these literals.
bool IsDottedMetricName(std::string_view name);

/// Two-pass linter. Feed every file to IndexFile first (collects the
/// names of Status/Result-returning functions tree-wide), then run
/// CheckFile per file. Both passes are pure functions of their inputs,
/// so output is deterministic for a fixed file set and order.
class Linter {
 public:
  Linter() : Linter(LintConfig()) {}
  explicit Linter(LintConfig config);

  /// Pass 1: records functions declared/defined as returning Status or
  /// Result<T> in `content`.
  void IndexFile(std::string_view path, std::string_view content);

  /// Pass 2: runs every check on `content`, appending to `findings`.
  void CheckFile(std::string_view path, std::string_view content,
                 std::vector<Finding>* findings) const;

  /// Convenience: index-then-check over in-memory files (used by tests).
  /// Each element is a {path, content} pair.
  std::vector<Finding> Run(
      const std::vector<std::pair<std::string, std::string>>& files) const;

  /// The function-name index built by IndexFile (exposed for tests).
  const std::set<std::string, std::less<>>& status_functions() const {
    return status_functions_;
  }

 private:
  LintConfig config_;
  std::set<std::string, std::less<>> status_functions_;
  /// Names also declared with a non-Status return type somewhere in the
  /// indexed tree; discarded-status skips these (ambiguous by name).
  std::set<std::string, std::less<>> non_status_functions_;
};

/// Renders findings one per line: "file:line: [check] message". Appends a
/// trailing summary line. Suppressed findings are omitted unless
/// `show_suppressed`.
std::string RenderText(const std::vector<Finding>& findings,
                       bool show_suppressed = false);

/// Renders the machine-readable report:
/// {"findings":[...],"total":N,"unsuppressed":N}.
std::string RenderJson(const std::vector<Finding>& findings);

/// Number of findings that are not suppressed (the CLI's exit criterion).
size_t CountUnsuppressed(const std::vector<Finding>& findings);

}  // namespace efes::lint

#endif  // EFES_LINT_LINT_H_
