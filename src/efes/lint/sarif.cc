#include "efes/lint/sarif.h"

#include <set>
#include <string>

#include "efes/common/json_writer.h"

namespace efes::lint {

std::string RenderSarif(std::string_view tool_name,
                        const std::vector<Finding>& findings) {
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.check);

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("$schema").String(
      "https://json.schemastore.org/sarif-2.1.0.json");
  writer.Key("version").String("2.1.0");
  writer.Key("runs").BeginArray();
  writer.BeginObject();

  writer.Key("tool").BeginObject();
  writer.Key("driver").BeginObject();
  writer.Key("name").String(tool_name);
  writer.Key("rules").BeginArray();
  for (const std::string& id : rule_ids) {
    writer.BeginObject();
    writer.Key("id").String(id);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();  // driver
  writer.EndObject();  // tool

  writer.Key("results").BeginArray();
  for (const Finding& f : findings) {
    writer.BeginObject();
    writer.Key("ruleId").String(f.check);
    writer.Key("level").String(f.suppressed ? "note" : "error");
    writer.Key("message").BeginObject();
    writer.Key("text").String(f.message);
    writer.EndObject();
    writer.Key("locations").BeginArray();
    writer.BeginObject();
    writer.Key("physicalLocation").BeginObject();
    writer.Key("artifactLocation").BeginObject();
    writer.Key("uri").String(f.file);
    writer.EndObject();
    writer.Key("region").BeginObject();
    writer.Key("startLine").Number(static_cast<int64_t>(f.line));
    writer.EndObject();
    writer.EndObject();  // physicalLocation
    writer.EndObject();  // location
    writer.EndArray();
    if (f.suppressed) {
      writer.Key("suppressions").BeginArray();
      writer.BeginObject();
      writer.Key("kind").String("inSource");
      writer.EndObject();
      writer.EndArray();
    }
    writer.EndObject();  // result
  }
  writer.EndArray();

  writer.EndObject();  // run
  writer.EndArray();
  writer.EndObject();
  return writer.ToString();
}

}  // namespace efes::lint
