#include "efes/lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <set>
#include <utility>

#include "efes/common/json_writer.h"
#include "efes/lint/token.h"

namespace efes::lint {
namespace {

constexpr std::string_view kDiscardedStatus = "discarded-status";
constexpr std::string_view kNondeterminism = "nondeterminism";
constexpr std::string_view kUnorderedIteration = "unordered-iteration";
constexpr std::string_view kRawFileWrite = "raw-file-write";
constexpr std::string_view kHeaderHygiene = "header-hygiene";
constexpr std::string_view kBannedFunction = "banned-function";
constexpr std::string_view kUnboundedWait = "unbounded-wait";
constexpr std::string_view kMetricName = "metric-name";
constexpr std::string_view kWholeColumnProfile = "whole-column-profile";
constexpr std::string_view kBadSuppression = "bad-suppression";

/// Check ids a suppression may name (bad-suppression itself is not
/// suppressible — the escape hatch must stay auditable).
constexpr std::string_view kSuppressibleChecks[] = {
    kDiscardedStatus, kNondeterminism, kUnorderedIteration,
    kRawFileWrite,    kHeaderHygiene,  kBannedFunction,
    kUnboundedWait,   kMetricName,     kWholeColumnProfile};

bool PathMatchesAny(std::string_view path,
                    const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns) {
    if (path.find(p) != std::string_view::npos) return true;
  }
  return false;
}

bool IsHeaderPath(std::string_view path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
  };
  return ends_with(".h") || ends_with(".hh") || ends_with(".hpp");
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// An EFES_LINT_ALLOW occurrence parsed out of a comment.
struct Suppression {
  std::string check;
  int line = 0;
};

/// Extracts suppressions from comment tokens. Malformed ones (unknown
/// check id, missing reason) become bad-suppression findings directly.
void CollectSuppressions(const std::vector<Token>& tokens,
                         std::string_view path,
                         std::vector<Suppression>* suppressions,
                         std::vector<Finding>* findings) {
  constexpr std::string_view kMarker = "EFES_LINT_ALLOW(";
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string_view::npos) {
      int line = t.line + static_cast<int>(std::count(
                              text.begin(), text.begin() + pos, '\n'));
      size_t id_begin = pos + kMarker.size();
      pos = id_begin;  // continue scanning after the marker either way
      // Ids are kebab-case; a non-lowercase first character means this is
      // prose describing the syntax, not a suppression attempt.
      if (id_begin >= text.size() || text[id_begin] < 'a' ||
          text[id_begin] > 'z') {
        continue;
      }
      size_t id_end = text.find(')', id_begin);
      if (id_end == std::string_view::npos) continue;
      std::string check(text.substr(id_begin, id_end - id_begin));
      bool known = std::find(std::begin(kSuppressibleChecks),
                             std::end(kSuppressibleChecks),
                             check) != std::end(kSuppressibleChecks);
      if (!known) {
        findings->push_back({std::string(path), line,
                             std::string(kBadSuppression),
                             "EFES_LINT_ALLOW names unknown check '" + check +
                                 "'",
                             false});
        continue;
      }
      // The reason is mandatory: after ')' and an optional ':', there must
      // be non-whitespace text before the end of the comment line.
      size_t r = id_end + 1;
      if (r < text.size() && text[r] == ':') ++r;
      size_t reason_end = text.find('\n', r);
      if (reason_end == std::string_view::npos) reason_end = text.size();
      std::string_view reason = text.substr(r, reason_end - r);
      bool has_reason = false;
      for (char c : reason) {
        if (c != ' ' && c != '\t' && c != '*' && c != '/') {
          has_reason = true;
          break;
        }
      }
      if (!has_reason) {
        findings->push_back(
            {std::string(path), line, std::string(kBadSuppression),
             "EFES_LINT_ALLOW(" + check + ") has no reason; write "
             "EFES_LINT_ALLOW(" + check + "): <why this is safe>",
             false});
        continue;
      }
      suppressions->push_back({std::move(check), line});
    }
  }
}

/// Index of the matching ')' for the '(' at `open`, or npos. Operates on
/// the code-token vector (comments already filtered out).
size_t MatchParen(const std::vector<Token>& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    if (IsPunct(code[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

/// After code[i] == "<", returns the index one past the balanced closing
/// angle bracket, treating ">>" as two closers. Returns npos when no
/// close is found within a sane window (then it was a comparison).
size_t SkipAngles(const std::vector<Token>& code, size_t i) {
  int depth = 0;
  size_t limit = std::min(code.size(), i + 256);
  for (size_t k = i; k < limit; ++k) {
    if (code[k].kind != TokenKind::kPunct) continue;
    if (code[k].text == "<") ++depth;
    if (code[k].text == ">") --depth;
    if (code[k].text == ">>") depth -= 2;
    if (depth <= 0) return k + 1;
  }
  return std::string_view::npos;
}

}  // namespace

bool IsDottedMetricName(std::string_view name) {
  bool seen_dot = false;
  bool segment_char = false;
  for (char c : name) {
    if (c == '.') {
      if (!segment_char) return false;  // empty segment
      seen_dot = true;
      segment_char = false;
      continue;
    }
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_char = true;
      continue;
    }
    return false;
  }
  return seen_dot && segment_char;
}

const std::vector<std::string>& AllCheckIds() {
  static const std::vector<std::string>* ids = []() {
    auto* v = new std::vector<std::string>();  // EFES_LINT_ALLOW(banned-function): intentionally leaked function-local singleton
    for (std::string_view id : kSuppressibleChecks) v->emplace_back(id);
    v->emplace_back(kBadSuppression);
    return v;
  }();
  return *ids;
}

Linter::Linter(LintConfig config) : config_(std::move(config)) {}

void Linter::IndexFile(std::string_view /*path*/, std::string_view content) {
  std::vector<Token> tokens = Tokenize(content);
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) code.push_back(t);
  }
  // A function "returns Status/Result" when the token stream reads
  //   Status [Qualifier ::]* Name (          or
  //   Result < ... > [Qualifier ::]* Name (
  // which covers declarations in headers and qualified definitions in
  // .cc files. Constructor-style locals (`Status s(...)`) match too;
  // that is harmless noise unless a same-named function exists.
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    size_t name_begin = std::string_view::npos;
    if (code[i].text == "Status") {
      name_begin = i + 1;
    } else if (code[i].text == "Result" && i + 1 < code.size() &&
               IsPunct(code[i + 1], "<")) {
      name_begin = SkipAngles(code, i + 1);
      if (name_begin == std::string_view::npos) continue;
    } else {
      continue;
    }
    // Qualified-id: ident (:: ident)* then '('.
    size_t k = name_begin;
    std::string_view last_name;
    while (k + 1 < code.size() && code[k].kind == TokenKind::kIdentifier) {
      last_name = code[k].text;
      if (IsPunct(code[k + 1], "::")) {
        k += 2;
        continue;
      }
      if (IsPunct(code[k + 1], "(")) {
        status_functions_.emplace(last_name);
      }
      break;
    }
  }
  // Disambiguation: a name also declared with some OTHER return type
  // ("Type Name (" where Type is not Status) is overloaded across
  // classes — call sites can't be attributed by name alone, so the check
  // skips it and leaves those to the compiler's [[nodiscard]]. The
  // keyword filter keeps `return Foo(...)` / `throw Foo(...)` / `new
  // Foo(...)` from being mistaken for declarations.
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier ||
        code[i + 1].kind != TokenKind::kIdentifier ||
        !IsPunct(code[i + 2], "(")) {
      continue;
    }
    std::string_view first = code[i].text;
    if (first == "Status" || first == "return" || first == "throw" ||
        first == "new" || first == "delete" || first == "else" ||
        first == "case" || first == "goto" || first == "do" ||
        first == "operator" || first == "co_return" ||
        first == "co_yield" || first == "co_await") {
      continue;
    }
    non_status_functions_.emplace(code[i + 1].text);
  }
}

void Linter::CheckFile(std::string_view path, std::string_view content,
                       std::vector<Finding>* findings) const {
  std::vector<Token> tokens = Tokenize(content);
  std::vector<Finding> raw;
  std::vector<Suppression> suppressions;
  CollectSuppressions(tokens, path, &suppressions, &raw);

  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) code.push_back(t);
  }
  auto add = [&](std::string_view check, int line, std::string message) {
    raw.push_back(
        {std::string(path), line, std::string(check), std::move(message),
         false});
  };
  const bool header = IsHeaderPath(path);
  const bool allow_nondet =
      PathMatchesAny(path, config_.nondeterminism_allowlist);
  const bool allow_raw_write =
      PathMatchesAny(path, config_.raw_file_write_allowlist);
  const bool allow_banned =
      PathMatchesAny(path, config_.banned_function_allowlist);
  const bool allow_unbounded_wait =
      PathMatchesAny(path, config_.unbounded_wait_allowlist);
  const bool allow_whole_column =
      PathMatchesAny(path, config_.whole_column_profile_allowlist);
  const bool ordered_output =
      PathMatchesAny(path, config_.ordered_output_paths);

  // ---- header-hygiene -------------------------------------------------
  if (header) {
    bool pragma_once = false;
    std::string_view ifndef_macro;
    bool guard_defined = false;
    for (size_t i = 0; i + 2 < code.size(); ++i) {
      if (!IsPunct(code[i], "#")) continue;
      if (IsIdent(code[i + 1], "pragma") && IsIdent(code[i + 2], "once")) {
        pragma_once = true;
      }
      if (IsIdent(code[i + 1], "ifndef") &&
          code[i + 2].kind == TokenKind::kIdentifier &&
          ifndef_macro.empty()) {
        ifndef_macro = code[i + 2].text;
      }
      if (IsIdent(code[i + 1], "define") &&
          code[i + 2].kind == TokenKind::kIdentifier &&
          code[i + 2].text == ifndef_macro) {
        guard_defined = true;
      }
    }
    if (!pragma_once && !(!ifndef_macro.empty() && guard_defined)) {
      add(kHeaderHygiene, 1,
          "header lacks an include guard (#pragma once or #ifndef/#define)");
    }
    for (size_t i = 0; i + 1 < code.size(); ++i) {
      if (IsIdent(code[i], "using") && IsIdent(code[i + 1], "namespace")) {
        add(kHeaderHygiene, code[i].line,
            "'using namespace' in a header leaks into every includer");
      }
    }
  }

  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(code[i - 1], ".") || IsPunct(code[i - 1], "->"));
    const bool called = i + 1 < code.size() && IsPunct(code[i + 1], "(");

    // ---- nondeterminism ----------------------------------------------
    if (!allow_nondet) {
      if ((t.text == "rand" || t.text == "srand") && called &&
          !member_access) {
        add(kNondeterminism, t.line,
            std::string(t.text) +
                "() is unseeded global entropy; use efes::Random "
                "(common/random)");
      }
      if (t.text == "random_device" && !member_access) {
        add(kNondeterminism, t.line,
            "std::random_device is nondeterministic; seed efes::Random "
            "explicitly");
      }
      if (t.text == "time" && called && !member_access) {
        add(kNondeterminism, t.line,
            "time() reads the wall clock; use common/clock");
      }
      if (t.text == "system_clock" && i + 3 < code.size() &&
          IsPunct(code[i + 1], "::") && IsIdent(code[i + 2], "now") &&
          IsPunct(code[i + 3], "(")) {
        add(kNondeterminism, t.line,
            "system_clock::now() outside common/clock makes output "
            "time-dependent");
      }
    }

    // ---- raw-file-write ----------------------------------------------
    if (!allow_raw_write) {
      if (t.text == "ofstream" && !member_access) {
        add(kRawFileWrite, t.line,
            "std::ofstream bypasses WriteFileAtomic (common/file_io); "
            "readers can observe partial writes");
      }
      if (t.text == "fopen" && called && !member_access) {
        add(kRawFileWrite, t.line,
            "fopen() bypasses WriteFileAtomic (common/file_io)");
      }
      if (t.text == "rename" && called && i >= 2 &&
          IsPunct(code[i - 1], "::") &&
          (IsIdent(code[i - 2], "filesystem") ||
           IsIdent(code[i - 2], "fs"))) {
        add(kRawFileWrite, t.line,
            "filesystem::rename outside common/file_io skips the "
            "retry/backoff and temp-file protocol");
      }
    }

    // ---- banned-function ---------------------------------------------
    if (!allow_banned) {
      if ((t.text == "strcpy" || t.text == "sprintf" || t.text == "atoi") &&
          called && !member_access) {
        add(kBannedFunction, t.line,
            std::string(t.text) + "() is banned (unbounded/UB-prone); use "
            "std::string / snprintf / ParseInt64");
      }
      if (t.text == "new" && !(i > 0 && IsIdent(code[i - 1], "operator"))) {
        add(kBannedFunction, t.line,
            "naked 'new'; use values, containers, or unique_ptr (leaked "
            "singletons need an EFES_LINT_ALLOW with a reason)");
      }
      if (t.text == "delete" &&
          !(i > 0 && (IsPunct(code[i - 1], "=") ||
                      IsIdent(code[i - 1], "operator")))) {
        add(kBannedFunction, t.line,
            "naked 'delete'; owning raw pointers are banned");
      }
      if (t.text == "mutable_effort_model") {
        add(kBannedFunction, t.line,
            "mutable_effort_model() was removed; use "
            "set_effort_model(EffortModel), which validates the model");
      }
    }

    // ---- unbounded-wait ----------------------------------------------
    if (!allow_unbounded_wait) {
      if ((t.text == "sleep_for" || t.text == "sleep_until") && called) {
        add(kUnboundedWait, t.line,
            std::string(t.text) +
                "() blocks with no cancellation path; block through a "
                "predicate/deadline primitive (CancelToken::WaitCancelled, "
                "wait_for with predicate) or keep the sleep in common/");
      }
      if (t.text == "wait" && called && member_access) {
        // Count top-level arguments of the call: `cv.wait(lock)` (and
        // `future.wait()`) parks forever; `cv.wait(lock, predicate)`
        // re-checks a condition and can observe shutdown. A comma at
        // paren depth 1 means a predicate was passed.
        bool has_predicate = false;
        int depth = 0;
        size_t limit = std::min(code.size(), i + 257);
        for (size_t k = i + 1; k < limit; ++k) {
          if (code[k].kind != TokenKind::kPunct) continue;
          if (code[k].text == "(") {
            ++depth;
          } else if (code[k].text == ")") {
            --depth;
            if (depth <= 0) break;
          } else if (code[k].text == "," && depth == 1) {
            has_predicate = true;
            break;
          }
        }
        if (!has_predicate) {
          add(kUnboundedWait, t.line,
              ".wait() without a predicate can block forever (missed "
              "notify, shutdown); use wait(lock, predicate) or a "
              "wait_for/wait_until overload");
        }
      }
    }

    // ---- whole-column-profile ----------------------------------------
    if (!allow_whole_column) {
      if (t.text == "ComputeStatistics" ||
          t.text == "ComputeStatisticsBatch") {
        add(kWholeColumnProfile, t.line,
            std::string(t.text) +
                " is the deprecated whole-column profiler; use "
                "ProfileColumn/ProfileColumns (profiling/profiler.h), "
                "which stream the column in chunks under the ambient "
                "ProfileOptions");
      }
      if (t.text == "ColumnStatisticsRequest") {
        add(kWholeColumnProfile, t.line,
            "ColumnStatisticsRequest is superseded by ProfileRequest "
            "(profiling/profiler.h), which profiles through the chunked, "
            "budgeted sketch path");
      }
    }

    // ---- metric-name -------------------------------------------------
    if (t.text == "GetCounter" || t.text == "GetGauge" ||
        t.text == "GetHistogram" || t.text == "TraceSpan") {
      // The Get* registrars are calls; TraceSpan also appears as a
      // declaration (`TraceSpan span("name", ...)`).
      size_t open = std::string_view::npos;
      if (i + 1 < code.size() && IsPunct(code[i + 1], "(")) {
        open = i + 1;
      } else if (t.text == "TraceSpan" && i + 2 < code.size() &&
                 code[i + 1].kind == TokenKind::kIdentifier &&
                 IsPunct(code[i + 2], "(")) {
        open = i + 2;
      }
      // Only complete literal names are checkable: the literal must be
      // the whole first argument (followed by ',' or ')'), not a prefix
      // of a concatenation or a runtime-built name.
      if (open != std::string_view::npos && open + 2 < code.size() &&
          code[open + 1].kind == TokenKind::kString &&
          (IsPunct(code[open + 2], ",") || IsPunct(code[open + 2], ")"))) {
        std::string_view literal = code[open + 1].text;
        if (literal.size() >= 2 && literal.front() == '"' &&
            literal.back() == '"' &&
            !IsDottedMetricName(literal.substr(1, literal.size() - 2))) {
          add(kMetricName, code[open + 1].line,
              "metric/span name " + std::string(literal) +
                  " violates the dotted lowercase scheme "
                  "module.phase.metric ([a-z0-9_] segments, two or more)");
        }
      }
    }

    // ---- unordered-iteration (decl tracking happens below) -----------

    // ---- discarded-status --------------------------------------------
    if (called && status_functions_.count(t.text) > 0 &&
        non_status_functions_.count(t.text) == 0) {
      // Walk back over the qualifier/member chain to the statement anchor.
      size_t chain = i;
      while (chain >= 2 &&
             (IsPunct(code[chain - 1], "::") ||
              IsPunct(code[chain - 1], ".") ||
              IsPunct(code[chain - 1], "->")) &&
             code[chain - 2].kind == TokenKind::kIdentifier) {
        chain -= 2;
      }
      bool chained_receiver =
          chain >= 1 && (IsPunct(code[chain - 1], "::") ||
                         IsPunct(code[chain - 1], ".") ||
                         IsPunct(code[chain - 1], "->"));
      if (chained_receiver) continue;  // receiver is an expression; skip
      // Declaration/definition site, not a call: return type precedes.
      if (chain >= 1 && (IsIdent(code[chain - 1], "Status") ||
                         IsPunct(code[chain - 1], ">") ||
                         IsPunct(code[chain - 1], "~"))) {
        continue;
      }
      size_t close = MatchParen(code, i + 1);
      if (close == std::string_view::npos || close + 1 >= code.size()) {
        continue;
      }
      if (!IsPunct(code[close + 1], ";")) continue;  // result is consumed
      bool discarded = false;
      if (chain == 0) {
        discarded = true;
      } else {
        const Token& anchor = code[chain - 1];
        if (IsPunct(anchor, ";") || IsPunct(anchor, "{") ||
            IsPunct(anchor, "}") || IsIdent(anchor, "else") ||
            IsIdent(anchor, "do")) {
          discarded = true;
        } else if (IsPunct(anchor, ")")) {
          // `(void)Call();` is an explicit discard; `if (c) Call();` is
          // not. Distinguish by the contents of the closing paren group.
          size_t rp = chain - 1;
          bool void_cast = rp >= 2 && IsIdent(code[rp - 1], "void") &&
                           IsPunct(code[rp - 2], "(");
          discarded = !void_cast;
        }
      }
      if (discarded) {
        add(kDiscardedStatus, t.line,
            "result of '" + std::string(t.text) +
                "' (Status/Result) is ignored; check it, propagate it, or "
                "cast to (void) with an EFES_LINT_ALLOW reason");
      }
    }
  }

  // ---- unordered-iteration -------------------------------------------
  if (ordered_output) {
    // Names declared (or returned) with an unordered container type.
    std::set<std::string, std::less<>> unordered_names;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
      if (code[i].kind != TokenKind::kIdentifier ||
          (code[i].text != "unordered_map" &&
           code[i].text != "unordered_set" &&
           code[i].text != "unordered_multimap" &&
           code[i].text != "unordered_multiset")) {
        continue;
      }
      if (!IsPunct(code[i + 1], "<")) continue;
      size_t after = SkipAngles(code, i + 1);
      if (after == std::string_view::npos) continue;
      while (after < code.size() &&
             (IsPunct(code[after], "&") || IsPunct(code[after], "*") ||
              IsIdent(code[after], "const"))) {
        ++after;
      }
      if (after < code.size() &&
          code[after].kind == TokenKind::kIdentifier) {
        unordered_names.emplace(code[after].text);
      }
    }
    for (size_t i = 0; i + 1 < code.size(); ++i) {
      if (!IsIdent(code[i], "for") || !IsPunct(code[i + 1], "(")) continue;
      size_t close = MatchParen(code, i + 1);
      if (close == std::string_view::npos) continue;
      // Range-for: a ':' at depth 1 inside the for-parens.
      size_t colon = std::string_view::npos;
      int depth = 0;
      for (size_t k = i + 1; k < close; ++k) {
        if (IsPunct(code[k], "(")) ++depth;
        if (IsPunct(code[k], ")")) --depth;
        if (depth == 1 && IsPunct(code[k], ":")) {
          colon = k;
          break;
        }
      }
      if (colon == std::string_view::npos) continue;
      for (size_t k = colon + 1; k < close; ++k) {
        if (code[k].kind == TokenKind::kIdentifier &&
            unordered_names.count(code[k].text) > 0) {
          add(kUnorderedIteration, code[i].line,
              "iterating '" + std::string(code[k].text) +
                  "' (unordered container) in an output-rendering path; "
                  "iteration order leaks into report bytes — sort keys "
                  "first or use std::map");
          break;
        }
      }
    }
  }

  // ---- apply suppressions --------------------------------------------
  for (Finding& f : raw) {
    if (f.check == kBadSuppression) continue;
    for (const Suppression& s : suppressions) {
      if (s.check == f.check && (s.line == f.line || s.line == f.line - 1)) {
        f.suppressed = true;
        break;
      }
    }
  }
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.message < b.message;
  });
  findings->insert(findings->end(), std::make_move_iterator(raw.begin()),
                   std::make_move_iterator(raw.end()));
}

std::vector<Finding> Linter::Run(
    const std::vector<std::pair<std::string, std::string>>& files) const {
  Linter pass(config_);
  for (const auto& [path, content] : files) {
    pass.IndexFile(path, content);
  }
  std::vector<Finding> findings;
  for (const auto& [path, content] : files) {
    pass.CheckFile(path, content, &findings);
  }
  return findings;
}

std::string RenderText(const std::vector<Finding>& findings,
                       bool show_suppressed) {
  std::string out;
  size_t shown = 0;
  for (const Finding& f : findings) {
    if (f.suppressed && !show_suppressed) continue;
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
           f.message;
    if (f.suppressed) out += " (suppressed)";
    out += "\n";
    ++shown;
  }
  out += "efes_lint: " + std::to_string(CountUnsuppressed(findings)) +
         " unsuppressed finding(s), " +
         std::to_string(findings.size() - CountUnsuppressed(findings)) +
         " suppressed";
  if (!show_suppressed && shown != findings.size()) {
    out += " (hidden)";
  }
  out += "\n";
  return out;
}

std::string RenderJson(const std::vector<Finding>& findings) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("findings").BeginArray();
  for (const Finding& f : findings) {
    writer.BeginObject();
    writer.Key("file").String(f.file);
    writer.Key("line").Number(static_cast<int64_t>(f.line));
    writer.Key("check").String(f.check);
    writer.Key("message").String(f.message);
    writer.Key("suppressed").Bool(f.suppressed);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("total").Number(findings.size());
  writer.Key("unsuppressed").Number(CountUnsuppressed(findings));
  writer.EndObject();
  return writer.ToString();
}

size_t CountUnsuppressed(const std::vector<Finding>& findings) {
  size_t count = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++count;
  }
  return count;
}

}  // namespace efes::lint
