#include "efes/scenario/music.h"

#include <map>
#include <set>

#include "efes/common/random.h"
#include "efes/scenario/schema_util.h"

namespace efes {

namespace {

struct TrackEntity {
  std::string title;
  int length_ms = 0;
  int position = 0;
};

struct DiscEntity {
  std::string title;
  std::vector<std::string> artists;  // one or two
  int year = 2000;
  int month = 1;
  int day = 1;
  int country_index = 0;
  int genre_index = 0;
  int label_index = 0;
  std::vector<TrackEntity> tracks;
};

struct MusicPool {
  std::vector<DiscEntity> discs;
  std::vector<std::string> artist_pool;
  std::vector<std::string> countries;
  std::vector<std::string> genres;
  std::vector<std::string> labels;
  std::vector<std::string> formats;
};

std::string Cap(std::string word) {
  word[0] = static_cast<char>(word[0] - 'a' + 'A');
  return word;
}

std::string TitleWords(Random& rng, size_t min_words, size_t max_words) {
  size_t words =
      min_words + rng.UniformUint64(max_words - min_words + 1);
  std::string title;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) title += ' ';
    title += Cap(rng.Word(2, 9));
  }
  return title;
}

MusicPool MakePool(const MusicOptions& options) {
  // Vocabulary pools (artists, labels) are domain facts shared by all
  // database instances; only the disc selection varies with the seed.
  Random vocab_rng(0x0D15'C0C0ULL + options.disc_count);
  Random rng(options.seed);
  MusicPool pool;

  pool.countries = {"Germany", "France", "Italy",  "Japan",
                    "Canada",  "Brazil", "Norway", "Spain",
                    "Poland",  "Kenya",  "Chile",  "India"};
  pool.genres = {"Rock", "Pop",  "Jazz",      "Folk",
                 "Soul", "Punk", "Classical", "Electronic"};
  pool.formats = {"CD", "Vinyl", "Cassette", "Digital"};
  for (size_t l = 0; l < 40; ++l) {
    pool.labels.push_back(TitleWords(vocab_rng, 1, 2) + " Records");
  }

  size_t artist_count = std::max<size_t>(options.disc_count / 3, 8);
  std::set<std::string> seen;
  while (pool.artist_pool.size() < artist_count) {
    std::string name =
        Cap(vocab_rng.Word(3, 7)) + " " + Cap(vocab_rng.Word(4, 9));
    if (seen.insert(name).second) pool.artist_pool.push_back(name);
  }

  for (size_t d = 0; d < options.disc_count; ++d) {
    DiscEntity disc;
    disc.title = TitleWords(rng, 1, 4);
    disc.artists.push_back(
        pool.artist_pool[d % pool.artist_pool.size()]);
    if (rng.Bernoulli(options.multi_artist_rate)) {
      std::string second =
          pool.artist_pool[rng.UniformUint64(pool.artist_pool.size())];
      if (second != disc.artists[0]) disc.artists.push_back(second);
    }
    disc.year = static_cast<int>(rng.UniformInt(1965, 2014));
    disc.month = static_cast<int>(rng.UniformInt(1, 12));
    disc.day = static_cast<int>(rng.UniformInt(1, 28));
    disc.country_index =
        static_cast<int>(rng.UniformUint64(pool.countries.size()));
    disc.genre_index = static_cast<int>(rng.Zipf(pool.genres.size(), 0.9));
    disc.label_index =
        static_cast<int>(rng.UniformUint64(pool.labels.size()));
    size_t track_count =
        options.min_tracks +
        rng.UniformUint64(options.max_tracks - options.min_tracks + 1);
    for (size_t t = 0; t < track_count; ++t) {
      TrackEntity track;
      track.title = TitleWords(rng, 1, 5);
      track.length_ms = static_cast<int>(rng.UniformInt(90'000, 480'000));
      track.position = static_cast<int>(t + 1);
      disc.tracks.push_back(std::move(track));
    }
    pool.discs.push_back(std::move(disc));
  }
  return pool;
}

std::string IsoDate(const DiscEntity& disc) {
  auto two = [](int n) {
    return (n < 10 ? "0" : "") + std::to_string(n);
  };
  return std::to_string(disc.year) + "-" + two(disc.month) + "-" +
         two(disc.day);
}

std::string DurationText(int length_ms) {
  int total_seconds = length_ms / 1000;
  int minutes = total_seconds / 60;
  int seconds = total_seconds % 60;
  return std::to_string(minutes) + ":" + (seconds < 10 ? "0" : "") +
         std::to_string(seconds);
}

std::string CombinedCredit(const DiscEntity& disc) {
  std::string credit = disc.artists[0];
  for (size_t i = 1; i < disc.artists.size(); ++i) {
    credit += " & " + disc.artists[i];
  }
  return credit;
}

}  // namespace

/// MusicBrainz-style auxiliary vocabularies for the extended schema.
const char* const kExtendedLookups[] = {
    "instrument", "area",     "language", "script",     "work",
    "place",      "series",   "gender",   "packaging",  "status",
    "alias_type", "tag",      "url_type", "link_phase", "editor_note",
    "cover_type", "medium_kind", "release_event"};

std::string_view MusicSchemaIdToString(MusicSchemaId id) {
  switch (id) {
    case MusicSchemaId::kFreedb:
      return "f";
    case MusicSchemaId::kMusicbrainz:
      return "m";
    case MusicSchemaId::kDiscogs:
      return "d";
  }
  return "?";
}

Schema MakeMusicSchema(MusicSchemaId id, const MusicOptions& options) {
  (void)options;
  switch (id) {
    case MusicSchemaId::kFreedb: {
      // Flat dump: two relations.
      Schema schema("music_f");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "discs", {{"disc_id", DataType::kInteger},
                    {"artist", DataType::kText},
                    {"dtitle", DataType::kText},
                    {"year", DataType::kInteger},
                    {"genre", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "disc_tracks", {{"disc_id", DataType::kInteger},
                          {"seq", DataType::kInteger},
                          {"title", DataType::kText},
                          {"length_sec", DataType::kInteger}}));
      schema.AddConstraint(Constraint::PrimaryKey("discs", {"disc_id"}));
      schema.AddConstraint(Constraint::NotNull("discs", "artist"));
      schema.AddConstraint(Constraint::NotNull("discs", "dtitle"));
      schema.AddConstraint(
          Constraint::PrimaryKey("disc_tracks", {"disc_id", "seq"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "disc_tracks", {"disc_id"}, "discs", {"disc_id"}));
      schema.AddConstraint(Constraint::NotNull("disc_tracks", "title"));
      return schema;
    }
    case MusicSchemaId::kMusicbrainz: {
      // Heavily normalized: 12 relations.
      Schema schema("music_m");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "artist", {{"id", DataType::kInteger},
                     {"name", DataType::kText},
                     {"sort_name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "artist_credit", {{"id", DataType::kInteger},
                            {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "artist_credit_name", {{"artist_credit", DataType::kInteger},
                                 {"position", DataType::kInteger},
                                 {"artist", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "release_group", {{"id", DataType::kInteger},
                            {"title", DataType::kText},
                            {"artist_credit", DataType::kInteger},
                            {"genre", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "release", {{"id", DataType::kInteger},
                      {"release_group", DataType::kInteger},
                      {"title", DataType::kText},
                      {"date", DataType::kText},
                      {"country", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "country", {{"id", DataType::kInteger},
                      {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "medium", {{"id", DataType::kInteger},
                     {"release", DataType::kInteger},
                     {"position", DataType::kInteger},
                     {"format", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "format", {{"id", DataType::kInteger},
                     {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "track", {{"id", DataType::kInteger},
                    {"medium", DataType::kInteger},
                    {"position", DataType::kInteger},
                    {"title", DataType::kText},
                    {"length", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "label", {{"id", DataType::kInteger},
                    {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "release_label", {{"release", DataType::kInteger},
                            {"label", DataType::kInteger}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "genre", {{"id", DataType::kInteger},
                    {"name", DataType::kText}}));
      schema.AddConstraint(Constraint::PrimaryKey("artist", {"id"}));
      schema.AddConstraint(Constraint::NotNull("artist", "name"));
      schema.AddConstraint(Constraint::PrimaryKey("artist_credit", {"id"}));
      schema.AddConstraint(Constraint::NotNull("artist_credit", "name"));
      schema.AddConstraint(Constraint::PrimaryKey(
          "artist_credit_name", {"artist_credit", "position"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "artist_credit_name", {"artist_credit"}, "artist_credit", {"id"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "artist_credit_name", {"artist"}, "artist", {"id"}));
      schema.AddConstraint(
          Constraint::NotNull("artist_credit_name", "artist"));
      schema.AddConstraint(Constraint::PrimaryKey("release_group", {"id"}));
      schema.AddConstraint(Constraint::NotNull("release_group", "title"));
      schema.AddConstraint(Constraint::ForeignKey(
          "release_group", {"artist_credit"}, "artist_credit", {"id"}));
      schema.AddConstraint(
          Constraint::NotNull("release_group", "artist_credit"));
      schema.AddConstraint(Constraint::ForeignKey("release_group", {"genre"},
                                                  "genre", {"id"}));
      schema.AddConstraint(Constraint::PrimaryKey("release", {"id"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "release", {"release_group"}, "release_group", {"id"}));
      schema.AddConstraint(Constraint::NotNull("release", "release_group"));
      schema.AddConstraint(Constraint::NotNull("release", "title"));
      schema.AddConstraint(
          Constraint::ForeignKey("release", {"country"}, "country", {"id"}));
      schema.AddConstraint(Constraint::PrimaryKey("country", {"id"}));
      schema.AddConstraint(Constraint::NotNull("country", "name"));
      schema.AddConstraint(Constraint::Unique("country", {"name"}));
      schema.AddConstraint(Constraint::PrimaryKey("medium", {"id"}));
      schema.AddConstraint(
          Constraint::ForeignKey("medium", {"release"}, "release", {"id"}));
      schema.AddConstraint(Constraint::NotNull("medium", "release"));
      schema.AddConstraint(
          Constraint::ForeignKey("medium", {"format"}, "format", {"id"}));
      schema.AddConstraint(Constraint::PrimaryKey("format", {"id"}));
      schema.AddConstraint(Constraint::NotNull("format", "name"));
      schema.AddConstraint(Constraint::Unique("format", {"name"}));
      schema.AddConstraint(Constraint::PrimaryKey("track", {"id"}));
      schema.AddConstraint(
          Constraint::ForeignKey("track", {"medium"}, "medium", {"id"}));
      schema.AddConstraint(Constraint::NotNull("track", "medium"));
      schema.AddConstraint(Constraint::NotNull("track", "position"));
      schema.AddConstraint(Constraint::NotNull("track", "title"));
      schema.AddConstraint(Constraint::PrimaryKey("label", {"id"}));
      schema.AddConstraint(Constraint::NotNull("label", "name"));
      schema.AddConstraint(Constraint::Unique("label", {"name"}));
      schema.AddConstraint(Constraint::PrimaryKey(
          "release_label", {"release", "label"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "release_label", {"release"}, "release", {"id"}));
      schema.AddConstraint(
          Constraint::ForeignKey("release_label", {"label"}, "label", {"id"}));
      schema.AddConstraint(Constraint::PrimaryKey("genre", {"id"}));
      schema.AddConstraint(Constraint::NotNull("genre", "name"));
      schema.AddConstraint(Constraint::Unique("genre", {"name"}));
      if (options.extended_lookups) {
        for (const char* lookup : kExtendedLookups) {
          scenario_internal::MustAddRelation(schema, RelationDef(
              lookup, {{"id", DataType::kInteger},
                       {"name", DataType::kText},
                       {"comment", DataType::kText}}));
          schema.AddConstraint(Constraint::PrimaryKey(lookup, {"id"}));
          schema.AddConstraint(Constraint::NotNull(lookup, "name"));
        }
      }
      return schema;
    }
    case MusicSchemaId::kDiscogs: {
      Schema schema("music_d");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "releases", {{"release_id", DataType::kInteger},
                       {"title", DataType::kText},
                       {"artist", DataType::kText},
                       {"released", DataType::kInteger},
                       {"country", DataType::kText},
                       {"genre", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "release_tracks", {{"release_id", DataType::kInteger},
                             {"position", DataType::kInteger},
                             {"title", DataType::kText},
                             {"duration", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "labels", {{"label_id", DataType::kInteger},
                     {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "release_labels", {{"release_id", DataType::kInteger},
                             {"label_id", DataType::kInteger}}));
      schema.AddConstraint(Constraint::PrimaryKey("releases", {"release_id"}));
      schema.AddConstraint(Constraint::NotNull("releases", "title"));
      schema.AddConstraint(Constraint::NotNull("releases", "artist"));
      schema.AddConstraint(Constraint::PrimaryKey(
          "release_tracks", {"release_id", "position"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "release_tracks", {"release_id"}, "releases", {"release_id"}));
      schema.AddConstraint(Constraint::NotNull("release_tracks", "title"));
      schema.AddConstraint(Constraint::PrimaryKey("labels", {"label_id"}));
      schema.AddConstraint(Constraint::NotNull("labels", "name"));
      schema.AddConstraint(Constraint::Unique("labels", {"name"}));
      schema.AddConstraint(Constraint::PrimaryKey(
          "release_labels", {"release_id", "label_id"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "release_labels", {"release_id"}, "releases", {"release_id"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "release_labels", {"label_id"}, "labels", {"label_id"}));
      return schema;
    }
  }
  return Schema("music_unknown");
}

Result<Database> MakeMusicDatabase(MusicSchemaId id,
                                   const MusicOptions& options) {
  MusicPool pool = MakePool(options);
  EFES_ASSIGN_OR_RETURN(Database db,
                        Database::Create(MakeMusicSchema(id, options)));
  if (id == MusicSchemaId::kMusicbrainz && options.extended_lookups) {
    Random lookup_rng(options.seed * 17 + 3);
    for (const char* lookup : kExtendedLookups) {
      EFES_ASSIGN_OR_RETURN(Table * table, db.mutable_table(lookup));
      for (int64_t i = 0; i < 12; ++i) {
        EFES_RETURN_IF_ERROR(table->AppendRow(
            {Value::Integer(i + 1),
             Value::Text(Cap(lookup_rng.Word(4, 9))),
             lookup_rng.Bernoulli(0.3)
                 ? Value::Text(lookup_rng.Word(5, 12))
                 : Value::Null()}));
      }
    }
  }

  switch (id) {
    case MusicSchemaId::kFreedb: {
      EFES_ASSIGN_OR_RETURN(Table * discs, db.mutable_table("discs"));
      EFES_ASSIGN_OR_RETURN(Table * tracks, db.mutable_table("disc_tracks"));
      for (size_t d = 0; d < pool.discs.size(); ++d) {
        const DiscEntity& disc = pool.discs[d];
        EFES_RETURN_IF_ERROR(discs->AppendRow(
            {Value::Integer(static_cast<int64_t>(d + 1)),
             Value::Text(CombinedCredit(disc)), Value::Text(disc.title),
             Value::Integer(disc.year),
             Value::Text(pool.genres[disc.genre_index])}));
        for (const TrackEntity& track : disc.tracks) {
          EFES_RETURN_IF_ERROR(tracks->AppendRow(
              {Value::Integer(static_cast<int64_t>(d + 1)),
               Value::Integer(track.position), Value::Text(track.title),
               Value::Integer(track.length_ms / 1000)}));
        }
      }
      break;
    }
    case MusicSchemaId::kMusicbrainz: {
      EFES_ASSIGN_OR_RETURN(Table * artist, db.mutable_table("artist"));
      std::map<std::string, int64_t> artist_ids;
      for (size_t a = 0; a < pool.artist_pool.size(); ++a) {
        const std::string& name = pool.artist_pool[a];
        artist_ids[name] = static_cast<int64_t>(a + 1);
        // sort_name: "Last, First".
        size_t space = name.find(' ');
        std::string sort_name =
            name.substr(space + 1) + ", " + name.substr(0, space);
        EFES_RETURN_IF_ERROR(artist->AppendRow(
            {Value::Integer(static_cast<int64_t>(a + 1)), Value::Text(name),
             Value::Text(sort_name)}));
      }
      EFES_ASSIGN_OR_RETURN(Table * country, db.mutable_table("country"));
      for (size_t c = 0; c < pool.countries.size(); ++c) {
        EFES_RETURN_IF_ERROR(country->AppendRow(
            {Value::Integer(static_cast<int64_t>(c + 1)),
             Value::Text(pool.countries[c])}));
      }
      EFES_ASSIGN_OR_RETURN(Table * format, db.mutable_table("format"));
      for (size_t f = 0; f < pool.formats.size(); ++f) {
        EFES_RETURN_IF_ERROR(format->AppendRow(
            {Value::Integer(static_cast<int64_t>(f + 1)),
             Value::Text(pool.formats[f])}));
      }
      EFES_ASSIGN_OR_RETURN(Table * genre, db.mutable_table("genre"));
      for (size_t g = 0; g < pool.genres.size(); ++g) {
        EFES_RETURN_IF_ERROR(genre->AppendRow(
            {Value::Integer(static_cast<int64_t>(g + 1)),
             Value::Text(pool.genres[g])}));
      }
      EFES_ASSIGN_OR_RETURN(Table * label, db.mutable_table("label"));
      for (size_t l = 0; l < pool.labels.size(); ++l) {
        EFES_RETURN_IF_ERROR(label->AppendRow(
            {Value::Integer(static_cast<int64_t>(l + 1)),
             Value::Text(pool.labels[l])}));
      }

      EFES_ASSIGN_OR_RETURN(Table * artist_credit,
                            db.mutable_table("artist_credit"));
      EFES_ASSIGN_OR_RETURN(Table * artist_credit_name,
                            db.mutable_table("artist_credit_name"));
      EFES_ASSIGN_OR_RETURN(Table * release_group,
                            db.mutable_table("release_group"));
      EFES_ASSIGN_OR_RETURN(Table * release, db.mutable_table("release"));
      EFES_ASSIGN_OR_RETURN(Table * medium, db.mutable_table("medium"));
      EFES_ASSIGN_OR_RETURN(Table * track, db.mutable_table("track"));
      EFES_ASSIGN_OR_RETURN(Table * release_label,
                            db.mutable_table("release_label"));

      Random rng(options.seed * 31 + 5);
      std::map<std::string, int64_t> credit_ids;
      int64_t next_credit = 1;
      int64_t next_track = 1;
      for (size_t d = 0; d < pool.discs.size(); ++d) {
        const DiscEntity& disc = pool.discs[d];
        std::string credit_name = CombinedCredit(disc);
        auto [credit_it, inserted] =
            credit_ids.emplace(credit_name, next_credit);
        if (inserted) {
          EFES_RETURN_IF_ERROR(artist_credit->AppendRow(
              {Value::Integer(next_credit), Value::Text(credit_name)}));
          for (size_t position = 0; position < disc.artists.size();
               ++position) {
            EFES_RETURN_IF_ERROR(artist_credit_name->AppendRow(
                {Value::Integer(next_credit),
                 Value::Integer(static_cast<int64_t>(position + 1)),
                 Value::Integer(artist_ids[disc.artists[position]])}));
          }
          ++next_credit;
        }
        int64_t credit_id = credit_it->second;
        int64_t disc_id = static_cast<int64_t>(d + 1);
        EFES_RETURN_IF_ERROR(release_group->AppendRow(
            {Value::Integer(disc_id), Value::Text(disc.title),
             Value::Integer(credit_id),
             Value::Integer(disc.genre_index + 1)}));
        EFES_RETURN_IF_ERROR(release->AppendRow(
            {Value::Integer(disc_id), Value::Integer(disc_id),
             Value::Text(disc.title), Value::Text(IsoDate(disc)),
             Value::Integer(disc.country_index + 1)}));
        EFES_RETURN_IF_ERROR(medium->AppendRow(
            {Value::Integer(disc_id), Value::Integer(disc_id),
             Value::Integer(1),
             Value::Integer(
                 1 + static_cast<int64_t>(rng.UniformUint64(4)))}));
        for (const TrackEntity& t : disc.tracks) {
          EFES_RETURN_IF_ERROR(track->AppendRow(
              {Value::Integer(next_track++), Value::Integer(disc_id),
               Value::Integer(t.position), Value::Text(t.title),
               Value::Integer(t.length_ms)}));
        }
        EFES_RETURN_IF_ERROR(release_label->AppendRow(
            {Value::Integer(disc_id),
             Value::Integer(disc.label_index + 1)}));
      }
      break;
    }
    case MusicSchemaId::kDiscogs: {
      EFES_ASSIGN_OR_RETURN(Table * releases, db.mutable_table("releases"));
      EFES_ASSIGN_OR_RETURN(Table * release_tracks,
                            db.mutable_table("release_tracks"));
      EFES_ASSIGN_OR_RETURN(Table * labels, db.mutable_table("labels"));
      EFES_ASSIGN_OR_RETURN(Table * release_labels,
                            db.mutable_table("release_labels"));
      for (size_t l = 0; l < pool.labels.size(); ++l) {
        EFES_RETURN_IF_ERROR(labels->AppendRow(
            {Value::Integer(static_cast<int64_t>(l + 1)),
             Value::Text(pool.labels[l])}));
      }
      for (size_t d = 0; d < pool.discs.size(); ++d) {
        const DiscEntity& disc = pool.discs[d];
        int64_t release_id = static_cast<int64_t>(d + 1);
        EFES_RETURN_IF_ERROR(releases->AppendRow(
            {Value::Integer(release_id), Value::Text(disc.title),
             Value::Text(CombinedCredit(disc)), Value::Integer(disc.year),
             Value::Text(pool.countries[disc.country_index]),
             Value::Text(pool.genres[disc.genre_index])}));
        for (const TrackEntity& t : disc.tracks) {
          EFES_RETURN_IF_ERROR(release_tracks->AppendRow(
              {Value::Integer(release_id), Value::Integer(t.position),
               Value::Text(t.title), Value::Text(DurationText(t.length_ms))}));
        }
        EFES_RETURN_IF_ERROR(release_labels->AppendRow(
            {Value::Integer(release_id),
             Value::Integer(disc.label_index + 1)}));
      }
      break;
    }
  }
  return db;
}

Result<IntegrationScenario> MakeMusicScenario(MusicSchemaId source,
                                              MusicSchemaId target,
                                              const MusicOptions& options) {
  EFES_ASSIGN_OR_RETURN(Database source_db,
                        MakeMusicDatabase(source, options));
  MusicOptions target_options = options;
  target_options.seed = options.seed * 653 + 29;
  EFES_ASSIGN_OR_RETURN(Database target_db,
                        MakeMusicDatabase(target, target_options));

  CorrespondenceSet c;
  auto pair_id = std::make_pair(source, target);
  if (pair_id ==
      std::make_pair(MusicSchemaId::kFreedb, MusicSchemaId::kMusicbrainz)) {
    c.AddRelation("discs", "release");
    c.AddRelation("discs", "release_group");
    c.AddRelation("discs", "medium");
    c.AddRelation("discs", "artist");
    c.AddRelation("discs", "artist_credit");
    c.AddRelation("discs", "genre");
    c.AddRelation("disc_tracks", "track");
    c.AddAttribute("discs", "dtitle", "release", "title");
    c.AddAttribute("discs", "dtitle", "release_group", "title");
    c.AddAttribute("discs", "year", "release", "date");
    c.AddAttribute("discs", "artist", "artist", "name");
    c.AddAttribute("discs", "artist", "artist_credit", "name");
    c.AddAttribute("discs", "genre", "genre", "name");
    c.AddAttribute("disc_tracks", "title", "track", "title");
    c.AddAttribute("disc_tracks", "length_sec", "track", "length");
    c.AddAttribute("disc_tracks", "seq", "track", "position");
    c.AddAttribute("disc_tracks", "disc_id", "track", "medium");
  } else if (pair_id == std::make_pair(MusicSchemaId::kMusicbrainz,
                                       MusicSchemaId::kDiscogs)) {
    c.AddRelation("release", "releases");
    c.AddRelation("track", "release_tracks");
    c.AddRelation("label", "labels");
    c.AddRelation("release_label", "release_labels");
    c.AddAttribute("release", "title", "releases", "title");
    c.AddAttribute("artist_credit", "name", "releases", "artist");
    c.AddAttribute("release", "date", "releases", "released");
    c.AddAttribute("country", "name", "releases", "country");
    c.AddAttribute("genre", "name", "releases", "genre");
    c.AddAttribute("track", "title", "release_tracks", "title");
    c.AddAttribute("track", "length", "release_tracks", "duration");
    c.AddAttribute("track", "position", "release_tracks", "position");
    c.AddAttribute("track", "medium", "release_tracks", "release_id");
    c.AddAttribute("label", "name", "labels", "name");
    c.AddAttribute("release_label", "release", "release_labels",
                   "release_id");
    c.AddAttribute("release_label", "label", "release_labels", "label_id");
  } else if (pair_id == std::make_pair(MusicSchemaId::kMusicbrainz,
                                       MusicSchemaId::kFreedb)) {
    c.AddRelation("release", "discs");
    c.AddRelation("track", "disc_tracks");
    c.AddAttribute("release", "title", "discs", "dtitle");
    c.AddAttribute("artist_credit", "name", "discs", "artist");
    c.AddAttribute("release", "date", "discs", "year");
    c.AddAttribute("genre", "name", "discs", "genre");
    c.AddAttribute("track", "title", "disc_tracks", "title");
    c.AddAttribute("track", "length", "disc_tracks", "length_sec");
    c.AddAttribute("track", "position", "disc_tracks", "seq");
    c.AddAttribute("track", "medium", "disc_tracks", "disc_id");
  } else if (pair_id == std::make_pair(MusicSchemaId::kDiscogs,
                                       MusicSchemaId::kDiscogs)) {
    c.AddRelation("releases", "releases");
    c.AddRelation("release_tracks", "release_tracks");
    c.AddRelation("labels", "labels");
    c.AddRelation("release_labels", "release_labels");
    c.AddAttribute("releases", "release_id", "releases", "release_id");
    c.AddAttribute("releases", "title", "releases", "title");
    c.AddAttribute("releases", "artist", "releases", "artist");
    c.AddAttribute("releases", "released", "releases", "released");
    c.AddAttribute("releases", "country", "releases", "country");
    c.AddAttribute("releases", "genre", "releases", "genre");
    c.AddAttribute("release_tracks", "release_id", "release_tracks",
                   "release_id");
    c.AddAttribute("release_tracks", "position", "release_tracks",
                   "position");
    c.AddAttribute("release_tracks", "title", "release_tracks", "title");
    c.AddAttribute("release_tracks", "duration", "release_tracks",
                   "duration");
    c.AddAttribute("labels", "label_id", "labels", "label_id");
    c.AddAttribute("labels", "name", "labels", "name");
    c.AddAttribute("release_labels", "release_id", "release_labels",
                   "release_id");
    c.AddAttribute("release_labels", "label_id", "release_labels",
                   "label_id");
  } else {
    return Status::InvalidArgument(
        "no curated correspondences for music pair " +
        std::string(MusicSchemaIdToString(source)) + "-" +
        std::string(MusicSchemaIdToString(target)));
  }

  std::string name = std::string(MusicSchemaIdToString(source)) + "1-" +
                     std::string(MusicSchemaIdToString(target)) + "2";
  if (source == MusicSchemaId::kDiscogs && target == MusicSchemaId::kDiscogs) {
    name = "d1-d2";
  }
  IntegrationScenario scenario(name, std::move(target_db));
  scenario.AddSource(std::move(source_db), std::move(c));
  EFES_RETURN_IF_ERROR(scenario.Validate());
  return scenario;
}

Result<std::vector<IntegrationScenario>> MakeAllMusicScenarios(
    const MusicOptions& options) {
  std::vector<IntegrationScenario> scenarios;
  const std::pair<MusicSchemaId, MusicSchemaId> kPairs[] = {
      {MusicSchemaId::kFreedb, MusicSchemaId::kMusicbrainz},
      {MusicSchemaId::kMusicbrainz, MusicSchemaId::kDiscogs},
      {MusicSchemaId::kMusicbrainz, MusicSchemaId::kFreedb},
      {MusicSchemaId::kDiscogs, MusicSchemaId::kDiscogs},
  };
  for (const auto& [source, target] : kPairs) {
    EFES_ASSIGN_OR_RETURN(IntegrationScenario scenario,
                          MakeMusicScenario(source, target, options));
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace efes
