// The running example of the paper (Figure 2): a music-records
// integration scenario with a discographic source (albums, songs,
// artist_lists, artist_credits) and a target (records, tracks).
//
// The generated instance reproduces the paper's headline numbers:
//   * 503 source albums are associated with more than one artist
//     (violating κ(records→artist) = 1, Table 3);
//   * 102 source artists have no albums
//     (violating κ(artist→records) = 1..*, Table 3);
//   * song lengths are integer milliseconds while target track durations
//     are "m:ss" strings (the value heterogeneity of Tables 6/8).

#ifndef EFES_SCENARIO_PAPER_EXAMPLE_H_
#define EFES_SCENARIO_PAPER_EXAMPLE_H_

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"

namespace efes {

struct PaperExampleOptions {
  uint64_t seed = 42;
  /// Total number of source albums.
  size_t album_count = 2000;
  /// Albums credited with two or more artists (the "503").
  size_t multi_artist_albums = 503;
  /// Artists appearing only in credits of lists no album references
  /// (the "102").
  size_t orphan_artists = 102;
  /// Songs across all albums.
  size_t song_count = 3000;
  /// Pre-existing target records / tracks (for value statistics).
  size_t target_records = 120;
  size_t target_tracks = 400;
};

/// Target schema of Figure 2a: records(id PK, title NN, artist NN,
/// genre), tracks(record FK NN, title NN, duration).
Schema MakePaperTargetSchema();

/// Source schema of Figure 2a: albums(id PK, name NN, artist_list FK NN),
/// songs(album FK, name NN, artist_list FK, length),
/// artist_lists(id PK), artist_credits(artist_list PK FK, position PK,
/// artist NN).
Schema MakePaperSourceSchema();

/// Builds the full scenario (schemas, instances, correspondences).
Result<IntegrationScenario> MakePaperExample(
    const PaperExampleOptions& options = {});

}  // namespace efes

#endif  // EFES_SCENARIO_PAPER_EXAMPLE_H_
