#include "efes/scenario/paper_example.h"

#include <set>
#include <string>
#include <vector>

#include "efes/common/random.h"
#include "efes/scenario/schema_util.h"

namespace efes {

namespace {

/// A title-cased artist or song name like "Zuko Rilam".
std::string Name(Random& rng, size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    std::string word = rng.Word(3, 8);
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
    out += word;
  }
  return out;
}

/// Formats milliseconds as the target's "m:ss" duration string.
std::string FormatDuration(int64_t milliseconds) {
  int64_t total_seconds = milliseconds / 1000;
  int64_t minutes = total_seconds / 60;
  int64_t seconds = total_seconds % 60;
  std::string out = std::to_string(minutes) + ":";
  if (seconds < 10) out += '0';
  out += std::to_string(seconds);
  return out;
}

}  // namespace

Schema MakePaperTargetSchema() {
  Schema schema("music_target");
  scenario_internal::MustAddRelation(schema, RelationDef(
      "records", {{"id", DataType::kInteger},
                  {"title", DataType::kText},
                  {"artist", DataType::kText},
                  {"genre", DataType::kText}}));
  scenario_internal::MustAddRelation(schema, RelationDef(
      "tracks", {{"record", DataType::kInteger},
                 {"title", DataType::kText},
                 {"duration", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("records", {"id"}));
  schema.AddConstraint(Constraint::NotNull("records", "title"));
  schema.AddConstraint(Constraint::NotNull("records", "artist"));
  schema.AddConstraint(
      Constraint::ForeignKey("tracks", {"record"}, "records", {"id"}));
  schema.AddConstraint(Constraint::NotNull("tracks", "record"));
  schema.AddConstraint(Constraint::NotNull("tracks", "title"));
  return schema;
}

Schema MakePaperSourceSchema() {
  Schema schema("music_source");
  scenario_internal::MustAddRelation(schema, RelationDef(
      "albums", {{"id", DataType::kInteger},
                 {"name", DataType::kText},
                 {"artist_list", DataType::kInteger}}));
  scenario_internal::MustAddRelation(schema, RelationDef(
      "songs", {{"album", DataType::kInteger},
                {"name", DataType::kText},
                {"artist_list", DataType::kInteger},
                {"length", DataType::kInteger}}));
  scenario_internal::MustAddRelation(schema, 
      RelationDef("artist_lists", {{"id", DataType::kInteger}}));
  scenario_internal::MustAddRelation(schema, RelationDef(
      "artist_credits", {{"artist_list", DataType::kInteger},
                         {"position", DataType::kInteger},
                         {"artist", DataType::kText}}));
  schema.AddConstraint(Constraint::PrimaryKey("albums", {"id"}));
  schema.AddConstraint(Constraint::NotNull("albums", "name"));
  schema.AddConstraint(Constraint::NotNull("albums", "artist_list"));
  schema.AddConstraint(Constraint::ForeignKey(
      "albums", {"artist_list"}, "artist_lists", {"id"}));
  schema.AddConstraint(
      Constraint::ForeignKey("songs", {"album"}, "albums", {"id"}));
  schema.AddConstraint(Constraint::NotNull("songs", "name"));
  schema.AddConstraint(Constraint::ForeignKey(
      "songs", {"artist_list"}, "artist_lists", {"id"}));
  schema.AddConstraint(Constraint::PrimaryKey("artist_lists", {"id"}));
  schema.AddConstraint(Constraint::PrimaryKey(
      "artist_credits", {"artist_list", "position"}));
  schema.AddConstraint(Constraint::ForeignKey(
      "artist_credits", {"artist_list"}, "artist_lists", {"id"}));
  schema.AddConstraint(Constraint::NotNull("artist_credits", "artist"));
  return schema;
}

Result<IntegrationScenario> MakePaperExample(
    const PaperExampleOptions& options) {
  Random rng(options.seed);

  // --- Target with pre-existing, well-formed data -------------------------
  EFES_ASSIGN_OR_RETURN(Database target,
                        Database::Create(MakePaperTargetSchema()));
  {
    EFES_ASSIGN_OR_RETURN(Table * records, target.mutable_table("records"));
    static const char* const kGenres[] = {"Rock", "Pop", "Jazz", "Folk",
                                          "Electronic"};
    for (size_t i = 0; i < options.target_records; ++i) {
      EFES_RETURN_IF_ERROR(records->AppendRow(
          {Value::Integer(static_cast<int64_t>(i + 1)),
           Value::Text(Name(rng, 2 + rng.UniformUint64(2))),
           Value::Text(Name(rng, 2)),
           rng.Bernoulli(0.8)
               ? Value::Text(kGenres[rng.UniformUint64(5)])
               : Value::Null()}));
    }
    EFES_ASSIGN_OR_RETURN(Table * tracks, target.mutable_table("tracks"));
    for (size_t i = 0; i < options.target_tracks; ++i) {
      int64_t record_id =
          1 + static_cast<int64_t>(rng.UniformUint64(options.target_records));
      int64_t length_ms = rng.UniformInt(90'000, 480'000);
      EFES_RETURN_IF_ERROR(tracks->AppendRow(
          {Value::Integer(record_id),
           Value::Text(Name(rng, 1 + rng.UniformUint64(4))),
           Value::Text(FormatDuration(length_ms))}));
    }
  }

  // --- Source --------------------------------------------------------------
  EFES_ASSIGN_OR_RETURN(Database source,
                        Database::Create(MakePaperSourceSchema()));

  // Artist name pools: "normal" artists appear on albums; "orphan" artists
  // only in credits of artist lists that no album references.
  size_t normal_artist_count = 600;
  std::vector<std::string> normal_artists;
  std::set<std::string> used_names;
  while (normal_artists.size() < normal_artist_count) {
    std::string name = Name(rng, 2);
    if (used_names.insert(name).second) normal_artists.push_back(name);
  }
  std::vector<std::string> orphan_artists;
  while (orphan_artists.size() < options.orphan_artists) {
    std::string name = Name(rng, 2);
    if (used_names.insert(name).second) orphan_artists.push_back(name);
  }

  EFES_ASSIGN_OR_RETURN(Table * artist_lists,
                        source.mutable_table("artist_lists"));
  EFES_ASSIGN_OR_RETURN(Table * artist_credits,
                        source.mutable_table("artist_credits"));
  EFES_ASSIGN_OR_RETURN(Table * albums, source.mutable_table("albums"));
  EFES_ASSIGN_OR_RETURN(Table * songs, source.mutable_table("songs"));

  int64_t next_list_id = 1;

  // One artist list per album. The first `multi_artist_albums` albums are
  // credited with 2-3 distinct artists; all others with exactly one. Every
  // normal artist is used at least once (round-robin base assignment).
  for (size_t a = 0; a < options.album_count; ++a) {
    int64_t list_id = next_list_id++;
    EFES_RETURN_IF_ERROR(artist_lists->AppendRow({Value::Integer(list_id)}));

    size_t credit_count =
        a < options.multi_artist_albums ? 2 + rng.UniformUint64(2) : 1;
    std::set<size_t> chosen;
    chosen.insert(a % normal_artists.size());
    while (chosen.size() < credit_count) {
      chosen.insert(static_cast<size_t>(
          rng.UniformUint64(normal_artists.size())));
    }
    int64_t position = 1;
    for (size_t artist_index : chosen) {
      EFES_RETURN_IF_ERROR(artist_credits->AppendRow(
          {Value::Integer(list_id), Value::Integer(position++),
           Value::Text(normal_artists[artist_index])}));
    }

    EFES_RETURN_IF_ERROR(albums->AppendRow(
        {Value::Integer(static_cast<int64_t>(a + 1)),
         Value::Text(Name(rng, 2 + rng.UniformUint64(2))),
         Value::Integer(list_id)}));
  }

  // Orphan artist lists: credits exist, but no album references the list,
  // so these artists never reach a record.
  for (const std::string& orphan : orphan_artists) {
    int64_t list_id = next_list_id++;
    EFES_RETURN_IF_ERROR(artist_lists->AppendRow({Value::Integer(list_id)}));
    EFES_RETURN_IF_ERROR(artist_credits->AppendRow(
        {Value::Integer(list_id), Value::Integer(1), Value::Text(orphan)}));
  }

  // Songs: every song belongs to an album (the schema allows NULL, the
  // data does not use it — the detector must report zero violations for
  // the statically possible NOT NULL conflict on tracks.record).
  for (size_t s = 0; s < options.song_count; ++s) {
    int64_t album_id =
        1 + static_cast<int64_t>(rng.UniformUint64(options.album_count));
    int64_t length_ms = rng.UniformInt(90'000, 480'000);
    EFES_RETURN_IF_ERROR(songs->AppendRow(
        {Value::Integer(album_id),
         Value::Text(Name(rng, 1 + rng.UniformUint64(4))),
         rng.Bernoulli(0.3)
             ? Value::Integer(1 + static_cast<int64_t>(rng.UniformUint64(
                                      options.album_count)))
             : Value::Null(),
         Value::Integer(length_ms)}));
  }

  // --- Correspondences (Figure 2a, solid arrows) ---------------------------
  CorrespondenceSet correspondences;
  correspondences.AddRelation("albums", "records");
  correspondences.AddAttribute("albums", "name", "records", "title");
  correspondences.AddAttribute("artist_credits", "artist", "records",
                               "artist");
  correspondences.AddRelation("songs", "tracks");
  correspondences.AddAttribute("songs", "name", "tracks", "title");
  correspondences.AddAttribute("songs", "length", "tracks", "duration");
  correspondences.AddAttribute("songs", "album", "tracks", "record");

  IntegrationScenario scenario("paper-example", std::move(target));
  scenario.AddSource(std::move(source), std::move(correspondences));
  EFES_RETURN_IF_ERROR(scenario.Validate());
  return scenario;
}

}  // namespace efes
