// The discographic case study (Section 6.1).
//
// Three synthetic music schemas shaped like the originals: a flat
// FreeDB-style dump (f), a heavily normalized MusicBrainz-style database
// (m, 12 relations), and a medium Discogs-style one (d). The domain is
// engineered to be *mapping-heavy* and comparatively clean at the value
// level — "in this domain, there are fewer problems at the data level and
// the effort is dominated by the mapping, which strongly depends on the
// schema" (Section 6.2, Figure 7).
//
// Scenarios (matching Figure 7): f1-m2, m1-d2, m1-f2, and the identity
// scenario d1-d2.

#ifndef EFES_SCENARIO_MUSIC_H_
#define EFES_SCENARIO_MUSIC_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"

namespace efes {

struct MusicOptions {
  uint64_t seed = 11;
  /// Discs / releases per database instance.
  size_t disc_count = 400;
  /// Tracks per disc (uniform in [min, max]).
  size_t min_tracks = 6;
  size_t max_tracks = 14;
  /// Releases credited to two artists (drives the small structural
  /// cleaning share of the music scenarios).
  double multi_artist_rate = 0.12;

  /// Adds a battery of MusicBrainz-style lookup relations (instrument,
  /// area, language, ...) to the normalized schema, pushing it towards
  /// the original's dozens of relations. They carry data but no
  /// correspondences, so the *true* integration effort barely changes —
  /// only the attribute count the baseline estimator sees does (the
  /// ablation of bench/ablation_schema_width).
  bool extended_lookups = false;
};

enum class MusicSchemaId { kFreedb, kMusicbrainz, kDiscogs };

std::string_view MusicSchemaIdToString(MusicSchemaId id);

Schema MakeMusicSchema(MusicSchemaId id, const MusicOptions& options = {});

Result<Database> MakeMusicDatabase(MusicSchemaId id,
                                   const MusicOptions& options);

/// Valid pairs: (kFreedb,kMusicbrainz), (kMusicbrainz,kDiscogs),
/// (kMusicbrainz,kFreedb), (kDiscogs,kDiscogs).
Result<IntegrationScenario> MakeMusicScenario(MusicSchemaId source,
                                              MusicSchemaId target,
                                              const MusicOptions& options);

/// All four scenarios of Figure 7, in the paper's order:
/// f1-m2, m1-d2, m1-f2, d1-d2.
Result<std::vector<IntegrationScenario>> MakeAllMusicScenarios(
    const MusicOptions& options = {});

}  // namespace efes

#endif  // EFES_SCENARIO_MUSIC_H_
