#include "efes/scenario/fuzzer.h"

#include <algorithm>
#include <set>
#include <string>

#include "efes/common/random.h"
#include "efes/scenario/schema_util.h"

namespace efes {

Status FuzzOptions::Validate() const {
  // Duplicate injection spreads each cluster over >= 2 sources, so a
  // single-source fuzz would be degenerate for the dedup property.
  if (min_sources < 2 || min_sources > max_sources) {
    return Status::InvalidArgument(
        "fuzz sources range must satisfy 2 <= min <= max");
  }
  if (min_entities == 0 || min_entities > max_entities) {
    return Status::InvalidArgument(
        "fuzz entities range must satisfy 1 <= min <= max");
  }
  if (min_extra_attributes > max_extra_attributes) {
    return Status::InvalidArgument(
        "fuzz extra-attributes range must satisfy min <= max");
  }
  for (double rate : {duplicate_entity_rate, key_dirt_rate,
                      missing_value_rate, sloppy_number_rate,
                      target_data_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument(
          "fuzz rates must be probabilities within [0, 1]");
    }
  }
  return Status::OK();
}

namespace {

using scenario_internal::MustAddRelation;

/// One non-key root attribute of the generated domain.
struct ExtraAttr {
  std::string name;
  DataType type = DataType::kText;
  /// Shared value pool (all sources draw from it, Zipf-skewed), kept
  /// small so the attribute never out-scores the entity name as a
  /// blocking key.
  std::vector<std::string> text_pool;
  int64_t int_range = 20;
};

/// One entity of the shared domain pool.
struct Entity {
  std::string name;
  std::vector<size_t> extra_choice;  // per extra attr: pool index / number
  std::vector<size_t> in_sources;    // source indices holding a record
};

std::string CapWord(Random& rng, size_t min_len, size_t max_len) {
  std::string word = rng.Word(min_len, max_len);
  word[0] = static_cast<char>(word[0] - 'a' + 'A');
  return word;
}

/// A normalization-recoverable corruption of an entity name: case flips,
/// doubled inner spaces, and outer padding — never content changes, so
/// NormalizeEntityKey maps the dirty name back onto the clean key.
std::string DirtyName(Random& rng, const std::string& name) {
  std::string dirty = name;
  switch (rng.UniformUint64(4)) {
    case 0:  // SHOUTING
      for (char& c : dirty) {
        if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
      }
      break;
    case 1:  // all lowercase
      for (char& c : dirty) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
      break;
    case 2: {  // double one inner space
      size_t space = dirty.find(' ');
      if (space != std::string::npos) dirty.insert(space, " ");
      break;
    }
    case 3:  // outer padding
      dirty = " " + dirty + "  ";
      break;
  }
  return dirty;
}

Value ExtraValue(const ExtraAttr& attr, size_t choice, bool sloppy) {
  if (attr.type == DataType::kText) {
    return Value::Text(attr.text_pool[choice % attr.text_pool.size()]);
  }
  int64_t number = static_cast<int64_t>(choice) % attr.int_range;
  if (sloppy) {
    // Decorated text that no longer casts to the numeric target type.
    return Value::Text("~ " + std::to_string(number));
  }
  if (attr.type == DataType::kReal) {
    return Value::Real(static_cast<double>(number) + 0.5);
  }
  return Value::Integer(number);
}

}  // namespace

Result<FuzzedScenario> FuzzScenario(uint64_t seed,
                                    const FuzzOptions& options) {
  EFES_RETURN_IF_ERROR(options.Validate());
  Random rng(seed ^ 0xEFE5F0220DD5EEDULL);

  // --- Shape of the domain.
  const size_t source_count = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(options.min_sources),
      static_cast<int64_t>(options.max_sources)));
  const size_t entity_count = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(options.min_entities),
      static_cast<int64_t>(options.max_entities)));
  const size_t extra_count = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(options.min_extra_attributes),
      static_cast<int64_t>(options.max_extra_attributes)));
  const size_t detail_count = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(options.max_detail_relations)));

  std::vector<ExtraAttr> extras;
  for (size_t i = 0; i < extra_count; ++i) {
    ExtraAttr attr;
    attr.name = "x" + std::to_string(i) + "_" + rng.Word(3, 7);
    switch (rng.UniformUint64(3)) {
      case 0:
        attr.type = DataType::kText;
        break;
      case 1:
        attr.type = DataType::kInteger;
        break;
      default:
        attr.type = DataType::kReal;
        break;
    }
    if (attr.type == DataType::kText) {
      size_t pool_size = 4 + rng.UniformUint64(8);
      std::set<std::string> pool;
      while (pool.size() < pool_size) pool.insert(rng.Word(4, 9));
      attr.text_pool.assign(pool.begin(), pool.end());
    } else {
      attr.int_range = rng.UniformInt(8, 24);
    }
    extras.push_back(std::move(attr));
  }
  // Detail-relation payload pool, shared like a real reference vocabulary.
  std::vector<std::string> detail_pool;
  for (size_t i = 0; i < 6; ++i) detail_pool.push_back(rng.Word(4, 8));

  // --- Target schema: root entity relation + FK detail chain.
  Schema target_schema("fuzz_target");
  {
    std::vector<AttributeDef> attributes = {{"id", DataType::kInteger},
                                            {"name", DataType::kText}};
    for (const ExtraAttr& attr : extras) {
      attributes.push_back({attr.name, attr.type});
    }
    MustAddRelation(target_schema, RelationDef("entity", attributes));
    target_schema.AddConstraint(Constraint::PrimaryKey("entity", {"id"}));
    target_schema.AddConstraint(Constraint::NotNull("entity", "name"));
    for (size_t d = 0; d < detail_count; ++d) {
      std::string relation = "detail" + std::to_string(d);
      MustAddRelation(target_schema,
                      RelationDef(relation, {{"id", DataType::kInteger},
                                             {"entity_id", DataType::kInteger},
                                             {"info", DataType::kText}}));
      target_schema.AddConstraint(Constraint::PrimaryKey(relation, {"id"}));
      target_schema.AddConstraint(Constraint::ForeignKey(
          relation, {"entity_id"}, "entity", {"id"}));
    }
  }
  EFES_ASSIGN_OR_RETURN(Database target,
                        Database::Create(std::move(target_schema)));

  // --- The shared entity pool with unique (normalized) names.
  std::vector<Entity> entities;
  std::set<std::string> seen_keys;
  while (entities.size() < entity_count) {
    Entity entity;
    entity.name = CapWord(rng, 3, 7) + " " + CapWord(rng, 4, 9);
    if (!seen_keys.insert(NormalizeEntityKey(entity.name)).second) continue;
    for (const ExtraAttr& attr : extras) {
      size_t choice = attr.type == DataType::kText
                          ? rng.Zipf(attr.text_pool.size(), 1.2)
                          : static_cast<size_t>(rng.UniformUint64(
                                static_cast<uint64_t>(attr.int_range)));
      entity.extra_choice.push_back(choice);
    }
    entities.push_back(std::move(entity));
  }

  // --- Assign entities to sources; >= 2 sources = an injected cluster.
  FuzzedScenario fuzzed(IntegrationScenario(
      "fuzz_" + std::to_string(seed), std::move(target)));
  std::vector<size_t> source_order(source_count);
  for (size_t i = 0; i < source_count; ++i) source_order[i] = i;
  for (Entity& entity : entities) {
    if (source_count >= 2 && rng.Bernoulli(options.duplicate_entity_rate)) {
      size_t copies = static_cast<size_t>(
          rng.UniformInt(2, static_cast<int64_t>(source_count)));
      rng.Shuffle(source_order);
      entity.in_sources.assign(source_order.begin(),
                               source_order.begin() +
                                   static_cast<ptrdiff_t>(copies));
      std::sort(entity.in_sources.begin(), entity.in_sources.end());
      InjectedCluster cluster;
      cluster.target_relation = "entity";
      cluster.key = NormalizeEntityKey(entity.name);
      cluster.occurrences = copies;
      fuzzed.injected_clusters.push_back(std::move(cluster));
    } else {
      entity.in_sources.push_back(
          static_cast<size_t>(rng.UniformUint64(source_count)));
    }
  }

  // --- Optional target example data: a clean excerpt of the domain.
  if (rng.Bernoulli(options.target_data_rate)) {
    EFES_ASSIGN_OR_RETURN(Table * entity_table,
                          fuzzed.scenario.target.mutable_table("entity"));
    size_t sample = std::max<size_t>(entity_count / 4, 4);
    for (size_t i = 0; i < sample && i < entities.size(); ++i) {
      std::vector<Value> row = {Value::Integer(static_cast<int64_t>(i + 1)),
                                Value::Text(entities[i].name)};
      for (size_t ai = 0; ai < extras.size(); ++ai) {
        row.push_back(
            ExtraValue(extras[ai], entities[i].extra_choice[ai], false));
      }
      EFES_RETURN_IF_ERROR(entity_table->AppendRow(std::move(row)));
    }
  }

  // --- Sources: renamed schemas, injected dirt, full correspondences.
  for (size_t si = 0; si < source_count; ++si) {
    const std::string prefix = "s" + std::to_string(si) + "_";
    // A source may render a numeric attribute as decorated text — the
    // classic critical representation difference.
    std::vector<bool> sloppy(extras.size(), false);
    for (size_t ai = 0; ai < extras.size(); ++ai) {
      if (extras[ai].type != DataType::kText &&
          rng.Bernoulli(options.sloppy_number_rate)) {
        sloppy[ai] = true;
      }
    }

    Schema schema("fuzz_src" + std::to_string(si));
    {
      std::vector<AttributeDef> attributes = {
          {prefix + "id", DataType::kInteger},
          {prefix + "name", DataType::kText}};
      for (size_t ai = 0; ai < extras.size(); ++ai) {
        attributes.push_back({prefix + extras[ai].name,
                              sloppy[ai] ? DataType::kText
                                         : extras[ai].type});
      }
      MustAddRelation(schema, RelationDef(prefix + "entity", attributes));
      schema.AddConstraint(
          Constraint::PrimaryKey(prefix + "entity", {prefix + "id"}));
      schema.AddConstraint(
          Constraint::NotNull(prefix + "entity", prefix + "name"));
      for (size_t d = 0; d < detail_count; ++d) {
        std::string relation = prefix + "detail" + std::to_string(d);
        MustAddRelation(
            schema,
            RelationDef(relation, {{prefix + "id", DataType::kInteger},
                                   {prefix + "entity_id", DataType::kInteger},
                                   {prefix + "info", DataType::kText}}));
        schema.AddConstraint(Constraint::PrimaryKey(relation, {prefix + "id"}));
        schema.AddConstraint(
            Constraint::ForeignKey(relation, {prefix + "entity_id"},
                                   prefix + "entity", {prefix + "id"}));
      }
    }
    EFES_ASSIGN_OR_RETURN(Database database,
                          Database::Create(std::move(schema)));

    EFES_ASSIGN_OR_RETURN(Table * entity_table,
                          database.mutable_table(prefix + "entity"));
    std::vector<int64_t> entity_row_id(entities.size(), 0);
    int64_t next_id = 1;
    for (size_t ei = 0; ei < entities.size(); ++ei) {
      const Entity& entity = entities[ei];
      if (std::find(entity.in_sources.begin(), entity.in_sources.end(),
                    si) == entity.in_sources.end()) {
        continue;
      }
      std::string name = entity.name;
      if (entity.in_sources.size() >= 2 &&
          rng.Bernoulli(options.key_dirt_rate)) {
        name = DirtyName(rng, name);
      }
      std::vector<Value> row = {Value::Integer(next_id),
                                Value::Text(std::move(name))};
      for (size_t ai = 0; ai < extras.size(); ++ai) {
        if (rng.Bernoulli(options.missing_value_rate)) {
          ++fuzzed.injected_nulls;
          row.push_back(Value::Null());
          continue;
        }
        if (sloppy[ai]) ++fuzzed.injected_sloppy_values;
        row.push_back(
            ExtraValue(extras[ai], entity.extra_choice[ai], sloppy[ai]));
      }
      EFES_RETURN_IF_ERROR(entity_table->AppendRow(std::move(row)));
      entity_row_id[ei] = next_id++;
    }
    for (size_t d = 0; d < detail_count; ++d) {
      EFES_ASSIGN_OR_RETURN(
          Table * detail_table,
          database.mutable_table(prefix + "detail" + std::to_string(d)));
      int64_t detail_id = 1;
      for (size_t ei = 0; ei < entities.size(); ++ei) {
        if (entity_row_id[ei] == 0) continue;
        size_t rows = rng.UniformUint64(3);  // 0-2 detail rows per entity
        for (size_t r = 0; r < rows; ++r) {
          EFES_RETURN_IF_ERROR(detail_table->AppendRow(
              {Value::Integer(detail_id++),
               Value::Integer(entity_row_id[ei]),
               Value::Text(rng.Choice(detail_pool))}));
        }
      }
    }
    if (!database.SatisfiesConstraints()) {
      return Status::Internal(
          "fuzzer produced a source violating its own constraints (seed " +
          std::to_string(seed) + ", source " + std::to_string(si) + ")");
    }

    CorrespondenceSet correspondences;
    correspondences.AddAttribute(prefix + "entity", prefix + "id", "entity",
                                 "id");
    correspondences.AddAttribute(prefix + "entity", prefix + "name",
                                 "entity", "name");
    for (const ExtraAttr& attr : extras) {
      correspondences.AddAttribute(prefix + "entity", prefix + attr.name,
                                   "entity", attr.name);
    }
    for (size_t d = 0; d < detail_count; ++d) {
      std::string source_relation = prefix + "detail" + std::to_string(d);
      std::string target_relation = "detail" + std::to_string(d);
      correspondences.AddAttribute(source_relation, prefix + "id",
                                   target_relation, "id");
      correspondences.AddAttribute(source_relation, prefix + "entity_id",
                                   target_relation, "entity_id");
      correspondences.AddAttribute(source_relation, prefix + "info",
                                   target_relation, "info");
    }
    fuzzed.scenario.AddSource(std::move(database),
                              std::move(correspondences));
  }

  EFES_RETURN_IF_ERROR(fuzzed.scenario.Validate());
  return fuzzed;
}

double InjectedClusterRecall(const FuzzedScenario& fuzzed,
                             const DedupComplexityReport& report) {
  if (fuzzed.injected_clusters.empty()) return 1.0;
  size_t detected = 0;
  for (const InjectedCluster& injected : fuzzed.injected_clusters) {
    bool found = false;
    for (const DuplicateClusterFinding& finding : report.findings()) {
      if (finding.target_relation != injected.target_relation) continue;
      for (const DuplicateCluster& cluster : finding.clusters) {
        if (cluster.key == injected.key) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) ++detected;
  }
  return static_cast<double>(detected) /
         static_cast<double>(fuzzed.injected_clusters.size());
}

}  // namespace efes
