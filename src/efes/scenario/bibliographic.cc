#include "efes/scenario/bibliographic.h"

#include <algorithm>
#include <map>
#include <set>

#include "efes/common/random.h"
#include "efes/scenario/schema_util.h"

namespace efes {

namespace {

/// One bibliographic entity of the shared domain pool. Every schema
/// materializes the same entities under its own conventions.
struct PubEntity {
  std::string title;
  std::vector<std::string> authors;
  int year = 1990;
  int venue_index = -1;  // -1 = missing venue
  int page_start = 1;
  int page_end = 10;
  int kind = 0;  // 0 journal, 1 conference, 2 techreport
  bool sloppy_year = false;
};

struct VenueEntity {
  std::string name;
  std::string acronym;
};

struct BiblioPool {
  std::vector<PubEntity> publications;
  std::vector<VenueEntity> venues;
  std::vector<std::string> author_pool;
};

std::string PersonName(Random& rng) {
  auto cap = [](std::string word) {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
    return word;
  };
  return cap(rng.Word(3, 7)) + " " + cap(rng.Word(4, 9));
}

std::string TitleWords(Random& rng) {
  size_t words = 4 + rng.UniformUint64(6);
  std::string title;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) title += ' ';
    std::string word = rng.Word(2, 9);
    if (i == 0) word[0] = static_cast<char>(word[0] - 'a' + 'A');
    title += word;
  }
  return title;
}

BiblioPool MakePool(const BiblioOptions& options) {
  // The vocabulary (venues, author names) is a fact of the domain and is
  // shared by every database instance — two real bibliographic databases
  // mention the same conferences and people. Only the selection of
  // publications varies with the instance seed.
  Random vocab_rng(0xB1B7'10D0ULL + options.venue_count);
  Random rng(options.seed);
  BiblioPool pool;

  for (size_t v = 0; v < options.venue_count; ++v) {
    VenueEntity venue;
    venue.name = "Conference on " + TitleWords(vocab_rng).substr(0, 24);
    venue.acronym = "";
    for (char c : venue.name) {
      if (c >= 'A' && c <= 'Z') venue.acronym += c;
    }
    venue.acronym += std::to_string(v);
    pool.venues.push_back(std::move(venue));
  }

  size_t author_count = std::max<size_t>(options.publication_count / 3, 10);
  std::set<std::string> seen_authors;
  while (pool.author_pool.size() < author_count) {
    std::string name = PersonName(vocab_rng);
    if (seen_authors.insert(name).second) pool.author_pool.push_back(name);
  }

  for (size_t p = 0; p < options.publication_count; ++p) {
    PubEntity pub;
    pub.title = TitleWords(rng);
    size_t author_count_here = 1 + rng.Zipf(4, 1.2);
    std::set<size_t> chosen;
    while (chosen.size() < author_count_here) {
      chosen.insert(
          static_cast<size_t>(rng.UniformUint64(pool.author_pool.size())));
    }
    for (size_t index : chosen) {
      pub.authors.push_back(pool.author_pool[index]);
    }
    pub.year = static_cast<int>(rng.UniformInt(1970, 2014));
    pub.venue_index = rng.Bernoulli(options.missing_venue_rate)
                          ? -1
                          : static_cast<int>(
                                rng.UniformUint64(options.venue_count));
    pub.page_start = static_cast<int>(rng.UniformInt(1, 400));
    pub.page_end = pub.page_start + static_cast<int>(rng.UniformInt(4, 30));
    pub.kind = static_cast<int>(rng.Zipf(3, 0.8));
    pub.sloppy_year = rng.Bernoulli(options.sloppy_year_rate);
    pool.publications.push_back(std::move(pub));
  }
  return pool;
}

const char* const kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::string JoinAuthors(const std::vector<std::string>& authors,
                        const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < authors.size(); ++i) {
    if (i > 0) out += separator;
    out += authors[i];
  }
  return out;
}

}  // namespace

std::string_view BiblioSchemaIdToString(BiblioSchemaId id) {
  switch (id) {
    case BiblioSchemaId::kS1:
      return "s1";
    case BiblioSchemaId::kS2:
      return "s2";
    case BiblioSchemaId::kS3:
      return "s3";
    case BiblioSchemaId::kS4:
      return "s4";
  }
  return "s?";
}

Schema MakeBiblioSchema(BiblioSchemaId id) {
  switch (id) {
    case BiblioSchemaId::kS1: {
      // Flat and value-sloppy: everything in one relation, years and page
      // ranges as free-form strings, author lists inline.
      Schema schema("biblio_s1");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "pubs", {{"pid", DataType::kInteger},
                   {"title", DataType::kText},
                   {"authors", DataType::kText},
                   {"year", DataType::kText},
                   {"venue", DataType::kText},
                   {"pages", DataType::kText},
                   {"kind", DataType::kText}}));
      schema.AddConstraint(Constraint::PrimaryKey("pubs", {"pid"}));
      schema.AddConstraint(Constraint::NotNull("pubs", "title"));
      schema.AddConstraint(Constraint::NotNull("pubs", "authors"));
      schema.AddConstraint(Constraint::NotNull("pubs", "year"));
      schema.AddConstraint(Constraint::NotNull("pubs", "kind"));
      return schema;
    }
    case BiblioSchemaId::kS2: {
      // Fully normalized with typed columns.
      Schema schema("biblio_s2");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "publications", {{"id", DataType::kInteger},
                           {"title", DataType::kText},
                           {"year", DataType::kInteger},
                           {"venue", DataType::kInteger},
                           {"pages_start", DataType::kInteger},
                           {"pages_end", DataType::kInteger},
                           {"kind", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "venues", {{"id", DataType::kInteger},
                     {"name", DataType::kText},
                     {"acronym", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "persons", {{"id", DataType::kInteger},
                      {"name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "authorships", {{"pub", DataType::kInteger},
                          {"position", DataType::kInteger},
                          {"person", DataType::kInteger}}));
      schema.AddConstraint(Constraint::PrimaryKey("publications", {"id"}));
      schema.AddConstraint(Constraint::NotNull("publications", "title"));
      schema.AddConstraint(Constraint::NotNull("publications", "year"));
      schema.AddConstraint(Constraint::ForeignKey("publications", {"venue"},
                                                  "venues", {"id"}));
      schema.AddConstraint(Constraint::PrimaryKey("venues", {"id"}));
      schema.AddConstraint(Constraint::NotNull("venues", "name"));
      schema.AddConstraint(Constraint::Unique("venues", {"name"}));
      schema.AddConstraint(Constraint::PrimaryKey("persons", {"id"}));
      schema.AddConstraint(Constraint::NotNull("persons", "name"));
      schema.AddConstraint(
          Constraint::PrimaryKey("authorships", {"pub", "position"}));
      schema.AddConstraint(Constraint::ForeignKey("authorships", {"pub"},
                                                  "publications", {"id"}));
      schema.AddConstraint(Constraint::ForeignKey("authorships", {"person"},
                                                  "persons", {"id"}));
      schema.AddConstraint(Constraint::NotNull("authorships", "person"));
      return schema;
    }
    case BiblioSchemaId::kS3: {
      // BibTeX-flavoured: text keys, "Mar 1998" dates, " and "-separated
      // author lists, but typed page numbers.
      Schema schema("biblio_s3");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "entries", {{"bibkey", DataType::kText},
                      {"title", DataType::kText},
                      {"author_list", DataType::kText},
                      {"published", DataType::kText},
                      {"booktitle", DataType::kText},
                      {"start_page", DataType::kInteger},
                      {"end_page", DataType::kInteger}}));
      schema.AddConstraint(Constraint::PrimaryKey("entries", {"bibkey"}));
      schema.AddConstraint(Constraint::NotNull("entries", "title"));
      schema.AddConstraint(Constraint::NotNull("entries", "author_list"));
      schema.AddConstraint(Constraint::NotNull("entries", "published"));
      return schema;
    }
    case BiblioSchemaId::kS4: {
      // Normalized like s2, under different names and with a category.
      Schema schema("biblio_s4");
      scenario_internal::MustAddRelation(schema, RelationDef(
          "papers", {{"paper_id", DataType::kInteger},
                     {"title", DataType::kText},
                     {"pub_year", DataType::kInteger},
                     {"venue_id", DataType::kInteger},
                     {"first_page", DataType::kInteger},
                     {"last_page", DataType::kInteger},
                     {"category", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "venue", {{"venue_id", DataType::kInteger},
                    {"title", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "writers", {{"writer_id", DataType::kInteger},
                      {"full_name", DataType::kText}}));
      scenario_internal::MustAddRelation(schema, RelationDef(
          "paper_writers", {{"paper_id", DataType::kInteger},
                            {"pos", DataType::kInteger},
                            {"writer_id", DataType::kInteger}}));
      schema.AddConstraint(Constraint::PrimaryKey("papers", {"paper_id"}));
      schema.AddConstraint(Constraint::NotNull("papers", "title"));
      schema.AddConstraint(Constraint::NotNull("papers", "pub_year"));
      schema.AddConstraint(Constraint::ForeignKey("papers", {"venue_id"},
                                                  "venue", {"venue_id"}));
      schema.AddConstraint(Constraint::PrimaryKey("venue", {"venue_id"}));
      schema.AddConstraint(Constraint::NotNull("venue", "title"));
      schema.AddConstraint(Constraint::Unique("venue", {"title"}));
      schema.AddConstraint(Constraint::PrimaryKey("writers", {"writer_id"}));
      schema.AddConstraint(Constraint::NotNull("writers", "full_name"));
      schema.AddConstraint(
          Constraint::PrimaryKey("paper_writers", {"paper_id", "pos"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "paper_writers", {"paper_id"}, "papers", {"paper_id"}));
      schema.AddConstraint(Constraint::ForeignKey(
          "paper_writers", {"writer_id"}, "writers", {"writer_id"}));
      schema.AddConstraint(Constraint::NotNull("paper_writers", "writer_id"));
      return schema;
    }
  }
  return Schema("biblio_unknown");
}

Result<Database> MakeBiblioDatabase(BiblioSchemaId id,
                                    const BiblioOptions& options) {
  BiblioPool pool = MakePool(options);
  EFES_ASSIGN_OR_RETURN(Database db, Database::Create(MakeBiblioSchema(id)));

  switch (id) {
    case BiblioSchemaId::kS1: {
      EFES_ASSIGN_OR_RETURN(Table * pubs, db.mutable_table("pubs"));
      static const char* const kKinds[] = {"J", "C", "TR"};
      // Hand-entered data: author separators vary from record to record,
      // which makes the author-list conversion *irregular* (per-value
      // work) rather than a single script.
      static const char* const kSeparators[] = {"; ", " and ", " & "};
      for (size_t i = 0; i < pool.publications.size(); ++i) {
        const PubEntity& pub = pool.publications[i];
        std::string year =
            pub.sloppy_year ? "'" + std::to_string(pub.year % 100)
                            : std::to_string(pub.year);
        EFES_RETURN_IF_ERROR(pubs->AppendRow(
            {Value::Integer(static_cast<int64_t>(i + 1)),
             Value::Text(pub.title),
             Value::Text(JoinAuthors(pub.authors, kSeparators[i % 3])),
             Value::Text(year),
             pub.venue_index < 0
                 ? Value::Null()
                 : Value::Text(pool.venues[pub.venue_index].name),
             Value::Text(std::to_string(pub.page_start) + "--" +
                         std::to_string(pub.page_end)),
             Value::Text(kKinds[pub.kind])}));
      }
      break;
    }
    case BiblioSchemaId::kS2: {
      static const char* const kKinds[] = {"journal", "conference",
                                           "techreport"};
      EFES_ASSIGN_OR_RETURN(Table * venues, db.mutable_table("venues"));
      for (size_t v = 0; v < pool.venues.size(); ++v) {
        EFES_RETURN_IF_ERROR(venues->AppendRow(
            {Value::Integer(static_cast<int64_t>(v + 1)),
             Value::Text(pool.venues[v].name),
             Value::Text(pool.venues[v].acronym)}));
      }
      EFES_ASSIGN_OR_RETURN(Table * persons, db.mutable_table("persons"));
      std::map<std::string, int64_t> person_ids;
      for (size_t a = 0; a < pool.author_pool.size(); ++a) {
        person_ids[pool.author_pool[a]] = static_cast<int64_t>(a + 1);
        EFES_RETURN_IF_ERROR(persons->AppendRow(
            {Value::Integer(static_cast<int64_t>(a + 1)),
             Value::Text(pool.author_pool[a])}));
      }
      EFES_ASSIGN_OR_RETURN(Table * publications,
                            db.mutable_table("publications"));
      EFES_ASSIGN_OR_RETURN(Table * authorships,
                            db.mutable_table("authorships"));
      for (size_t i = 0; i < pool.publications.size(); ++i) {
        const PubEntity& pub = pool.publications[i];
        EFES_RETURN_IF_ERROR(publications->AppendRow(
            {Value::Integer(static_cast<int64_t>(i + 1)),
             Value::Text(pub.title), Value::Integer(pub.year),
             pub.venue_index < 0
                 ? Value::Null()
                 : Value::Integer(static_cast<int64_t>(pub.venue_index + 1)),
             Value::Integer(pub.page_start), Value::Integer(pub.page_end),
             Value::Text(kKinds[pub.kind])}));
        for (size_t position = 0; position < pub.authors.size();
             ++position) {
          EFES_RETURN_IF_ERROR(authorships->AppendRow(
              {Value::Integer(static_cast<int64_t>(i + 1)),
               Value::Integer(static_cast<int64_t>(position + 1)),
               Value::Integer(person_ids[pub.authors[position]])}));
        }
      }
      break;
    }
    case BiblioSchemaId::kS3: {
      EFES_ASSIGN_OR_RETURN(Table * entries, db.mutable_table("entries"));
      for (size_t i = 0; i < pool.publications.size(); ++i) {
        const PubEntity& pub = pool.publications[i];
        // "Mueller98a"-style citation keys, made unique by index.
        std::string last_name = pub.authors[0].substr(
            pub.authors[0].find(' ') + 1);
        std::string bibkey = last_name + std::to_string(pub.year % 100) +
                             "x" + std::to_string(i);
        std::string published = std::string(kMonths[i % 12]) + " " +
                                std::to_string(pub.year);
        EFES_RETURN_IF_ERROR(entries->AppendRow(
            {Value::Text(bibkey), Value::Text(pub.title),
             Value::Text(JoinAuthors(pub.authors, " and ")),
             Value::Text(published),
             pub.venue_index < 0
                 ? Value::Null()
                 : Value::Text(pool.venues[pub.venue_index].name),
             Value::Integer(pub.page_start),
             // End pages were frequently left out by the s3 curators —
             // real missing data (as opposed to misrepresented data).
             (i * 2654435761u) % 100 <
                     static_cast<unsigned>(options.missing_end_page_rate *
                                           100.0)
                 ? Value::Null()
                 : Value::Integer(pub.page_end)}));
      }
      break;
    }
    case BiblioSchemaId::kS4: {
      static const char* const kCategories[] = {"journal", "conference",
                                                "report"};
      EFES_ASSIGN_OR_RETURN(Table * venue, db.mutable_table("venue"));
      for (size_t v = 0; v < pool.venues.size(); ++v) {
        EFES_RETURN_IF_ERROR(venue->AppendRow(
            {Value::Integer(static_cast<int64_t>(v + 1)),
             Value::Text(pool.venues[v].name)}));
      }
      EFES_ASSIGN_OR_RETURN(Table * writers, db.mutable_table("writers"));
      std::map<std::string, int64_t> writer_ids;
      for (size_t a = 0; a < pool.author_pool.size(); ++a) {
        writer_ids[pool.author_pool[a]] = static_cast<int64_t>(a + 1);
        EFES_RETURN_IF_ERROR(writers->AppendRow(
            {Value::Integer(static_cast<int64_t>(a + 1)),
             Value::Text(pool.author_pool[a])}));
      }
      EFES_ASSIGN_OR_RETURN(Table * papers, db.mutable_table("papers"));
      EFES_ASSIGN_OR_RETURN(Table * paper_writers,
                            db.mutable_table("paper_writers"));
      for (size_t i = 0; i < pool.publications.size(); ++i) {
        const PubEntity& pub = pool.publications[i];
        EFES_RETURN_IF_ERROR(papers->AppendRow(
            {Value::Integer(static_cast<int64_t>(i + 1)),
             Value::Text(pub.title), Value::Integer(pub.year),
             pub.venue_index < 0
                 ? Value::Null()
                 : Value::Integer(static_cast<int64_t>(pub.venue_index + 1)),
             Value::Integer(pub.page_start), Value::Integer(pub.page_end),
             Value::Text(kCategories[pub.kind])}));
        for (size_t position = 0; position < pub.authors.size();
             ++position) {
          EFES_RETURN_IF_ERROR(paper_writers->AppendRow(
              {Value::Integer(static_cast<int64_t>(i + 1)),
               Value::Integer(static_cast<int64_t>(position + 1)),
               Value::Integer(writer_ids[pub.authors[position]])}));
        }
      }
      break;
    }
  }
  return db;
}

Result<IntegrationScenario> MakeBiblioScenario(BiblioSchemaId source,
                                               BiblioSchemaId target,
                                               const BiblioOptions& options) {
  EFES_ASSIGN_OR_RETURN(Database source_db,
                        MakeBiblioDatabase(source, options));
  // The target is populated with (differently seeded) pre-existing data so
  // the value-fit detector has target characteristics to compare against.
  BiblioOptions target_options = options;
  target_options.seed = options.seed * 977 + 13;
  EFES_ASSIGN_OR_RETURN(Database target_db,
                        MakeBiblioDatabase(target, target_options));

  CorrespondenceSet c;
  auto pair_id = std::make_pair(source, target);
  if (pair_id == std::make_pair(BiblioSchemaId::kS1, BiblioSchemaId::kS2)) {
    c.AddRelation("pubs", "publications");
    c.AddRelation("pubs", "venues");
    c.AddRelation("pubs", "persons");
    c.AddRelation("pubs", "authorships");
    c.AddAttribute("pubs", "title", "publications", "title");
    c.AddAttribute("pubs", "year", "publications", "year");
    c.AddAttribute("pubs", "pages", "publications", "pages_start");
    c.AddAttribute("pubs", "kind", "publications", "kind");
    c.AddAttribute("pubs", "venue", "venues", "name");
    c.AddAttribute("pubs", "authors", "persons", "name");
  } else if (pair_id ==
             std::make_pair(BiblioSchemaId::kS1, BiblioSchemaId::kS3)) {
    c.AddRelation("pubs", "entries");
    c.AddAttribute("pubs", "title", "entries", "title");
    c.AddAttribute("pubs", "authors", "entries", "author_list");
    c.AddAttribute("pubs", "year", "entries", "published");
    c.AddAttribute("pubs", "venue", "entries", "booktitle");
    c.AddAttribute("pubs", "pages", "entries", "start_page");
  } else if (pair_id ==
             std::make_pair(BiblioSchemaId::kS3, BiblioSchemaId::kS4)) {
    c.AddRelation("entries", "papers");
    c.AddRelation("entries", "venue");
    c.AddRelation("entries", "writers");
    c.AddRelation("entries", "paper_writers");
    c.AddAttribute("entries", "title", "papers", "title");
    c.AddAttribute("entries", "published", "papers", "pub_year");
    c.AddAttribute("entries", "start_page", "papers", "first_page");
    c.AddAttribute("entries", "end_page", "papers", "last_page");
    c.AddAttribute("entries", "booktitle", "venue", "title");
    c.AddAttribute("entries", "author_list", "writers", "full_name");
  } else if (pair_id ==
             std::make_pair(BiblioSchemaId::kS4, BiblioSchemaId::kS4)) {
    c.AddRelation("papers", "papers");
    c.AddRelation("venue", "venue");
    c.AddRelation("writers", "writers");
    c.AddRelation("paper_writers", "paper_writers");
    c.AddAttribute("papers", "title", "papers", "title");
    c.AddAttribute("papers", "pub_year", "papers", "pub_year");
    c.AddAttribute("papers", "venue_id", "papers", "venue_id");
    c.AddAttribute("papers", "first_page", "papers", "first_page");
    c.AddAttribute("papers", "last_page", "papers", "last_page");
    c.AddAttribute("papers", "category", "papers", "category");
    c.AddAttribute("venue", "venue_id", "venue", "venue_id");
    c.AddAttribute("venue", "title", "venue", "title");
    c.AddAttribute("writers", "writer_id", "writers", "writer_id");
    c.AddAttribute("writers", "full_name", "writers", "full_name");
    c.AddAttribute("paper_writers", "paper_id", "paper_writers", "paper_id");
    c.AddAttribute("paper_writers", "pos", "paper_writers", "pos");
    c.AddAttribute("paper_writers", "writer_id", "paper_writers",
                   "writer_id");
  } else {
    return Status::InvalidArgument(
        "no curated correspondences for bibliographic pair " +
        std::string(BiblioSchemaIdToString(source)) + "-" +
        std::string(BiblioSchemaIdToString(target)));
  }

  std::string name = std::string(BiblioSchemaIdToString(source)) + "-" +
                     std::string(BiblioSchemaIdToString(target));
  IntegrationScenario scenario(name, std::move(target_db));
  scenario.AddSource(std::move(source_db), std::move(c));
  EFES_RETURN_IF_ERROR(scenario.Validate());
  return scenario;
}

Result<std::vector<IntegrationScenario>> MakeAllBiblioScenarios(
    const BiblioOptions& options) {
  std::vector<IntegrationScenario> scenarios;
  const std::pair<BiblioSchemaId, BiblioSchemaId> kPairs[] = {
      {BiblioSchemaId::kS1, BiblioSchemaId::kS2},
      {BiblioSchemaId::kS1, BiblioSchemaId::kS3},
      {BiblioSchemaId::kS3, BiblioSchemaId::kS4},
      {BiblioSchemaId::kS4, BiblioSchemaId::kS4},
  };
  for (const auto& [source, target] : kPairs) {
    EFES_ASSIGN_OR_RETURN(IntegrationScenario scenario,
                          MakeBiblioScenario(source, target, options));
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace efes
