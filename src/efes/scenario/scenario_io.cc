#include "efes/scenario/scenario_io.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "efes/common/fault.h"
#include "efes/common/file_io.h"
#include "efes/common/string_util.h"
#include "efes/relational/schema_text.h"
#include "efes/common/metrics.h"

namespace efes {

namespace fs = std::filesystem;

namespace {

bool IsRecover(const LoadOptions& options) {
  return options.mode == LoadOptions::Mode::kRecover;
}

CsvReadOptions CsvOptionsFor(const LoadOptions& options) {
  CsvReadOptions csv;
  csv.mode = IsRecover(options) ? CsvReadOptions::Mode::kRecover
                                : CsvReadOptions::Mode::kStrict;
  csv.max_field_bytes = options.max_field_bytes;
  csv.max_rows = options.max_rows;
  return csv;
}

void AddIssue(std::vector<DataIssue>* issues, std::string component,
              std::string location, std::string message) {
  if (issues == nullptr) return;
  issues->push_back(DataIssue{std::move(component), std::move(location),
                              std::move(message)});
}

Status SaveDatabase(const Database& database, const fs::path& directory) {
  std::error_code ec;
  fs::create_directories(directory / "data", ec);
  if (ec) {
    return Status::InvalidArgument("cannot create " + directory.string() +
                                   ": " + ec.message());
  }
  EFES_RETURN_IF_ERROR(
      WriteFileAtomic((directory / "schema.sql").string(),
                      WriteSchemaText(database.schema())));
  for (const Table& table : database.tables()) {
    if (table.row_count() == 0) continue;
    EFES_ASSIGN_OR_RETURN(CsvDocument doc,
                          database.ExportCsv(table.name()));
    EFES_RETURN_IF_ERROR(WriteCsvFile(
        doc, (directory / "data" / (table.name() + ".csv")).string()));
  }
  return Status::OK();
}

/// Loads one database directory. In recover mode, per-table defects
/// (unreadable or malformed CSV, rows the relational layer rejects) are
/// recorded in `issues` and the table is left with what loaded cleanly;
/// only the schema itself remains mandatory and propagates errors.
Result<Database> LoadDatabase(const fs::path& directory,
                              const std::string& name,
                              const LoadOptions& options,
                              std::vector<DataIssue>* issues) {
  EFES_ASSIGN_OR_RETURN(std::string ddl,
                        ReadFileToString((directory / "schema.sql").string()));
  EFES_ASSIGN_OR_RETURN(Schema schema, ParseSchemaText(ddl, name));
  EFES_ASSIGN_OR_RETURN(Database database,
                        Database::Create(std::move(schema)));
  const bool recover = IsRecover(options);
  CsvReadOptions csv_options = CsvOptionsFor(options);
  fs::path data_dir = directory / "data";
  if (fs::exists(data_dir)) {
    for (const RelationDef& relation : database.schema().relations()) {
      fs::path csv_path = data_dir / (relation.name() + ".csv");
      if (!fs::exists(csv_path)) continue;
      Result<CsvDocument> doc =
          ReadCsvFile(csv_path.string(), csv_options, issues);
      if (!doc.ok()) {
        if (!recover) return doc.status();
        AddIssue(issues, "data", csv_path.string(),
                 "table skipped: " + doc.status().ToString());
        continue;
      }
      Status loaded = database.LoadCsv(relation.name(), *doc);
      if (!loaded.ok()) {
        if (!recover) return loaded;
        AddIssue(issues, "data", csv_path.string(),
                 "table partially loaded: " + loaded.ToString());
      }
    }
  }
  return database;
}

/// True when `corr` references only relations/attributes that exist in
/// the schemas; recover mode drops the rest instead of failing Validate.
Status ValidateOne(const Correspondence& corr, const Schema& source,
                   const Schema& target) {
  CorrespondenceSet singleton;
  singleton.Add(corr);
  return singleton.Validate(source, target);
}

}  // namespace

Result<Correspondence> ParseCorrespondenceLine(std::string_view line) {
  size_t arrow = line.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("correspondence line lacks '->': " +
                              std::string(line));
  }
  std::string_view left = Trim(line.substr(0, arrow));
  std::string_view right = Trim(line.substr(arrow + 2));
  if (left.empty() || right.empty()) {
    return Status::ParseError("empty correspondence side: " +
                              std::string(line));
  }
  // Splits "relation" or "relation.attribute", trimming whitespace around
  // the dot so "albums . name" parses as albums.name. An empty relation
  // name, or a dot with nothing after it, is a malformed element — not a
  // silent relation-level correspondence.
  auto split_element =
      [&line](std::string_view element)
      -> Result<std::pair<std::string, std::string>> {
    size_t dot = element.find('.');
    if (dot == std::string_view::npos) {
      return std::pair<std::string, std::string>{std::string(element), ""};
    }
    std::string_view relation = Trim(element.substr(0, dot));
    std::string_view attribute = Trim(element.substr(dot + 1));
    if (relation.empty()) {
      return Status::ParseError("empty relation name in correspondence: " +
                                std::string(line));
    }
    if (attribute.empty()) {
      return Status::ParseError(
          "empty attribute name after '.' in correspondence: " +
          std::string(line));
    }
    return std::pair<std::string, std::string>{std::string(relation),
                                               std::string(attribute)};
  };
  EFES_ASSIGN_OR_RETURN(auto source_element, split_element(left));
  EFES_ASSIGN_OR_RETURN(auto target_element, split_element(right));
  if (source_element.second.empty() != target_element.second.empty()) {
    return Status::ParseError(
        "correspondence mixes relation and attribute granularity: " +
        std::string(line));
  }
  Correspondence corr;
  corr.source_relation = std::move(source_element.first);
  corr.source_attribute = std::move(source_element.second);
  corr.target_relation = std::move(target_element.first);
  corr.target_attribute = std::move(target_element.second);
  return corr;
}

Result<CorrespondenceSet> ParseCorrespondences(std::string_view text) {
  return ParseCorrespondences(text, LoadOptions{}, nullptr);
}

Result<CorrespondenceSet> ParseCorrespondences(
    std::string_view text, const LoadOptions& options,
    std::vector<DataIssue>* issues) {
  CorrespondenceSet set;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    Result<Correspondence> corr = ParseCorrespondenceLine(line);
    if (!corr.ok()) {
      if (!IsRecover(options)) return corr.status();
      std::ostringstream location;
      location << "line " << line_number;
      AddIssue(issues, "correspondences", location.str(),
               "line skipped: " + corr.status().ToString());
      continue;
    }
    set.Add(std::move(*corr));
  }
  return set;
}

std::string WriteCorrespondences(const CorrespondenceSet& correspondences) {
  std::string out;
  for (const Correspondence& corr : correspondences.all()) {
    out += corr.ToString();
    out += '\n';
  }
  return out;
}

Status SaveScenario(const IntegrationScenario& scenario,
                    const std::string& directory) {
  fs::path root(directory);
  EFES_RETURN_IF_ERROR(SaveDatabase(scenario.target, root / "target"));
  for (const SourceBinding& source : scenario.sources) {
    fs::path source_dir = root / "sources" / source.database.name();
    EFES_RETURN_IF_ERROR(SaveDatabase(source.database, source_dir));
    EFES_RETURN_IF_ERROR(
        WriteFileAtomic((source_dir / "correspondences.txt").string(),
                        WriteCorrespondences(source.correspondences)));
  }
  return Status::OK();
}

Result<IntegrationScenario> LoadScenario(const std::string& directory) {
  return LoadScenario(directory, LoadOptions{}, nullptr);
}

Result<IntegrationScenario> LoadScenario(const std::string& directory,
                                         const LoadOptions& options,
                                         ScenarioLoadReport* report) {
  EFES_RETURN_IF_ERROR(CheckFaultPoint("scenario.load"));
  const bool recover = IsRecover(options);
  std::vector<DataIssue> issues;
  fs::path root(directory);
  if (!fs::exists(root / "target" / "schema.sql")) {
    return Status::NotFound("no target/schema.sql under " + directory);
  }
  // The target is mandatory in every mode: without its schema there is
  // nothing to estimate against.
  EFES_ASSIGN_OR_RETURN(
      Database target,
      LoadDatabase(root / "target", "target", options, &issues));
  EFES_RETURN_IF_ERROR(target.schema().Validate());
  IntegrationScenario scenario(root.filename().string(),
                               std::move(target));

  fs::path sources_dir = root / "sources";
  std::vector<fs::path> source_dirs;
  if (fs::exists(sources_dir)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(sources_dir)) {
      if (entry.is_directory()) source_dirs.push_back(entry.path());
    }
  }
  std::sort(source_dirs.begin(), source_dirs.end());
  for (const fs::path& source_dir : source_dirs) {
    const std::string source_name = source_dir.filename().string();
    Result<Database> database =
        LoadDatabase(source_dir, source_name, options, &issues);
    Status source_status =
        database.ok() ? database->schema().Validate() : database.status();
    if (!source_status.ok()) {
      if (!recover) return source_status;
      AddIssue(&issues, "scenario", source_name,
               "source skipped: " + source_status.ToString());
      continue;
    }
    CorrespondenceSet correspondences;
    fs::path corr_path = source_dir / "correspondences.txt";
    if (fs::exists(corr_path)) {
      Result<std::string> text = ReadFileToString(corr_path.string());
      if (!text.ok()) {
        if (!recover) return text.status();
        AddIssue(&issues, "correspondences", corr_path.string(),
                 "file skipped: " + text.status().ToString());
      } else {
        Result<CorrespondenceSet> parsed =
            ParseCorrespondences(*text, options, &issues);
        if (!parsed.ok()) return parsed.status();
        if (recover) {
          // Drop correspondences that reference relations or attributes
          // absent from the loaded schemas; strict mode lets the final
          // Validate reject the whole scenario as before.
          for (const Correspondence& corr : parsed->all()) {
            Status valid = ValidateOne(corr, database->schema(),
                                       scenario.target.schema());
            if (!valid.ok()) {
              AddIssue(&issues, "correspondences", source_name,
                       "correspondence dropped: " + valid.ToString());
              continue;
            }
            correspondences.Add(corr);
          }
        } else {
          correspondences = std::move(*parsed);
        }
      }
    }
    scenario.AddSource(std::move(*database), std::move(correspondences));
  }
  EFES_RETURN_IF_ERROR(scenario.Validate());
  if (!issues.empty()) {
    MetricsRegistry::Global()
        .GetCounter("scenario.load.issues")
        .Increment(issues.size());
  }
  if (report != nullptr) {
    report->degraded = !issues.empty();
    report->issues = std::move(issues);
  }
  return scenario;
}

}  // namespace efes
