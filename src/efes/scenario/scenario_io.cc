#include "efes/scenario/scenario_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "efes/common/string_util.h"
#include "efes/relational/schema_text.h"

namespace efes {

namespace fs = std::filesystem;

namespace {

Status WriteTextFile(const fs::path& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " +
                                   path.string());
  }
  file << content;
  if (!file.good()) {
    return Status::Internal("short write to " + path.string());
  }
  return Status::OK();
}

Result<std::string> ReadTextFile(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open: " + path.string());
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Status SaveDatabase(const Database& database, const fs::path& directory) {
  std::error_code ec;
  fs::create_directories(directory / "data", ec);
  if (ec) {
    return Status::InvalidArgument("cannot create " + directory.string() +
                                   ": " + ec.message());
  }
  EFES_RETURN_IF_ERROR(WriteTextFile(directory / "schema.sql",
                                     WriteSchemaText(database.schema())));
  for (const Table& table : database.tables()) {
    if (table.row_count() == 0) continue;
    EFES_ASSIGN_OR_RETURN(CsvDocument doc,
                          database.ExportCsv(table.name()));
    EFES_RETURN_IF_ERROR(WriteCsvFile(
        doc, (directory / "data" / (table.name() + ".csv")).string()));
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const fs::path& directory,
                              const std::string& name) {
  EFES_ASSIGN_OR_RETURN(std::string ddl,
                        ReadTextFile(directory / "schema.sql"));
  EFES_ASSIGN_OR_RETURN(Schema schema, ParseSchemaText(ddl, name));
  EFES_ASSIGN_OR_RETURN(Database database,
                        Database::Create(std::move(schema)));
  fs::path data_dir = directory / "data";
  if (fs::exists(data_dir)) {
    for (const RelationDef& relation : database.schema().relations()) {
      fs::path csv_path = data_dir / (relation.name() + ".csv");
      if (!fs::exists(csv_path)) continue;
      EFES_ASSIGN_OR_RETURN(CsvDocument doc,
                            ReadCsvFile(csv_path.string()));
      EFES_RETURN_IF_ERROR(database.LoadCsv(relation.name(), doc));
    }
  }
  return database;
}

}  // namespace

Result<Correspondence> ParseCorrespondenceLine(std::string_view line) {
  size_t arrow = line.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("correspondence line lacks '->': " +
                              std::string(line));
  }
  std::string_view left = Trim(line.substr(0, arrow));
  std::string_view right = Trim(line.substr(arrow + 2));
  if (left.empty() || right.empty()) {
    return Status::ParseError("empty correspondence side: " +
                              std::string(line));
  }
  auto split_element = [](std::string_view element)
      -> std::pair<std::string, std::string> {
    size_t dot = element.find('.');
    if (dot == std::string_view::npos) {
      return {std::string(element), ""};
    }
    return {std::string(element.substr(0, dot)),
            std::string(element.substr(dot + 1))};
  };
  auto [source_relation, source_attribute] = split_element(left);
  auto [target_relation, target_attribute] = split_element(right);
  if (source_attribute.empty() != target_attribute.empty()) {
    return Status::ParseError(
        "correspondence mixes relation and attribute granularity: " +
        std::string(line));
  }
  Correspondence corr;
  corr.source_relation = std::move(source_relation);
  corr.source_attribute = std::move(source_attribute);
  corr.target_relation = std::move(target_relation);
  corr.target_attribute = std::move(target_attribute);
  return corr;
}

Result<CorrespondenceSet> ParseCorrespondences(std::string_view text) {
  CorrespondenceSet set;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    EFES_ASSIGN_OR_RETURN(Correspondence corr,
                          ParseCorrespondenceLine(line));
    set.Add(std::move(corr));
  }
  return set;
}

std::string WriteCorrespondences(const CorrespondenceSet& correspondences) {
  std::string out;
  for (const Correspondence& corr : correspondences.all()) {
    out += corr.ToString();
    out += '\n';
  }
  return out;
}

Status SaveScenario(const IntegrationScenario& scenario,
                    const std::string& directory) {
  fs::path root(directory);
  EFES_RETURN_IF_ERROR(SaveDatabase(scenario.target, root / "target"));
  for (const SourceBinding& source : scenario.sources) {
    fs::path source_dir = root / "sources" / source.database.name();
    EFES_RETURN_IF_ERROR(SaveDatabase(source.database, source_dir));
    EFES_RETURN_IF_ERROR(
        WriteTextFile(source_dir / "correspondences.txt",
                      WriteCorrespondences(source.correspondences)));
  }
  return Status::OK();
}

Result<IntegrationScenario> LoadScenario(const std::string& directory) {
  fs::path root(directory);
  if (!fs::exists(root / "target" / "schema.sql")) {
    return Status::NotFound("no target/schema.sql under " + directory);
  }
  EFES_ASSIGN_OR_RETURN(Database target,
                        LoadDatabase(root / "target", "target"));
  IntegrationScenario scenario(root.filename().string(),
                               std::move(target));

  fs::path sources_dir = root / "sources";
  std::vector<fs::path> source_dirs;
  if (fs::exists(sources_dir)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(sources_dir)) {
      if (entry.is_directory()) source_dirs.push_back(entry.path());
    }
  }
  std::sort(source_dirs.begin(), source_dirs.end());
  for (const fs::path& source_dir : source_dirs) {
    EFES_ASSIGN_OR_RETURN(
        Database database,
        LoadDatabase(source_dir, source_dir.filename().string()));
    CorrespondenceSet correspondences;
    fs::path corr_path = source_dir / "correspondences.txt";
    if (fs::exists(corr_path)) {
      EFES_ASSIGN_OR_RETURN(std::string text,
                            ReadTextFile(corr_path));
      EFES_ASSIGN_OR_RETURN(correspondences, ParseCorrespondences(text));
    }
    scenario.AddSource(std::move(database), std::move(correspondences));
  }
  EFES_RETURN_IF_ERROR(scenario.Validate());
  return scenario;
}

}  // namespace efes
