// Internal helper for the generated-scenario builders (paper_example,
// music, bibliographic). Their schemas are literals, so AddRelation can
// only fail on a bug in the generator itself; MustAddRelation reports
// that loudly instead of silently dropping the Status.

#ifndef EFES_SCENARIO_SCHEMA_UTIL_H_
#define EFES_SCENARIO_SCHEMA_UTIL_H_

#include <string>
#include <utility>

#include "efes/relational/schema.h"
#include "efes/telemetry/log.h"

namespace efes {
namespace scenario_internal {

inline void MustAddRelation(Schema& schema, RelationDef relation) {
  std::string name = relation.name();
  Status status = schema.AddRelation(std::move(relation));
  if (!status.ok()) {
    EFES_LOG(LogLevel::kError, "scenario generator produced an invalid "
                               "schema: AddRelation(" +
                                   name + "): " + status.ToString());
  }
}

}  // namespace scenario_internal
}  // namespace efes

#endif  // EFES_SCENARIO_SCHEMA_UTIL_H_
