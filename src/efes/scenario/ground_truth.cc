#include "efes/scenario/ground_truth.h"

#include <cmath>

#include "efes/common/random.h"
#include "efes/dedup/dedup_module.h"
#include "efes/mapping/mapping_module.h"
#include "efes/structure/structure_module.h"
#include "efes/values/value_module.h"

namespace efes {

namespace {

uint64_t HashString(const std::string& text) {
  // FNV-1a.
  uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Multiplicative lognormal human-variance factor.
double Noise(Random& rng, double sigma) {
  return std::exp(rng.Gaussian(0.0, sigma));
}

}  // namespace

Result<MeasuredEffort> SimulateMeasuredEffort(
    const IntegrationScenario& scenario, ExpectedQuality quality,
    uint64_t seed, const GroundTruthModel& model) {
  uint64_t mixed_seed = seed ^ HashString(scenario.name) ^
                        (quality == ExpectedQuality::kHighQuality
                             ? 0x9e3779b97f4a7c15ULL
                             : 0x2545f4914f6cdd1dULL);
  Random rng(mixed_seed);
  MeasuredEffort measured;
  bool high = quality == ExpectedQuality::kHighQuality;

  // --- Mapping: the practitioner writes one INSERT..SELECT per connection
  // and first explores the source schemas.
  {
    MappingModule detector;
    EFES_ASSIGN_OR_RETURN(auto report, detector.AssessComplexity(scenario));
    const auto& mapping_report =
        static_cast<const MappingComplexityReport&>(*report);
    double minutes = model.scenario_setup;
    for (const SourceBinding& source : scenario.sources) {
      minutes += model.per_source_relation *
                 static_cast<double>(
                     source.database.schema().relations().size());
    }
    for (const MappingConnection& connection :
         mapping_report.connections()) {
      double connection_minutes =
          model.per_connection_base +
          model.per_join_table *
              std::pow(static_cast<double>(connection.source_tables.size()),
                       model.join_exponent) +
          model.per_copied_attribute *
              static_cast<double>(connection.attribute_count) +
          (connection.needs_key_generation ? model.per_generated_key : 0.0) +
          model.per_foreign_key *
              static_cast<double>(connection.foreign_key_count);
      minutes += connection_minutes * Noise(rng, model.noise_sigma);
    }
    measured.mapping_minutes = minutes;
  }

  // --- Structure cleaning: the true violations in the data.
  {
    StructureModule detector;
    EFES_ASSIGN_OR_RETURN(auto report, detector.AssessComplexity(scenario));
    const auto& structure_report =
        static_cast<const StructureComplexityReport&>(*report);
    double minutes = 0.0;
    for (const SourceStructureAssessment& source :
         structure_report.sources()) {
      for (const StructureConflict& conflict : source.conflicts) {
        double count = static_cast<double>(conflict.violation_count);
        double item = 0.0;
        if (!high) {
          item = model.structure_script_low;
        } else {
          switch (conflict.kind) {
            case StructuralConflictKind::kNotNullViolated:
              item = model.missing_value_each * count;
              break;
            case StructuralConflictKind::kMultipleAttributeValues:
              item = model.merge_script + model.merge_each * count;
              break;
            case StructuralConflictKind::kValueWithoutTuple:
              item = model.detached_script + model.detached_each * count +
                     // new tuples need their mandatory values investigated
                     model.missing_value_each * count;
              break;
            case StructuralConflictKind::kUniqueViolated:
              item = model.unique_script +
                     model.merge_each * count;  // verify merged rows
              break;
            case StructuralConflictKind::kForeignKeyViolated:
              item = model.dangling_each * count;
              break;
          }
        }
        minutes += item * Noise(rng, model.noise_sigma);
      }
    }
    measured.structure_minutes = minutes;
  }

  // --- Value cleaning: conversions actually required.
  {
    ValueModule detector;
    EFES_ASSIGN_OR_RETURN(auto report, detector.AssessComplexity(scenario));
    const auto& value_report =
        static_cast<const ValueComplexityReport&>(*report);
    double minutes = 0.0;
    for (const ValueHeterogeneity& heterogeneity :
         value_report.heterogeneities()) {
      double distinct =
          static_cast<double>(heterogeneity.source_distinct_values);
      double values = static_cast<double>(heterogeneity.source_values);
      // A systematic conversion is one rule-based script (plus a rule per
      // source format and light validation); irregular values force a
      // per-distinct-value mapping with a sublinear learning effect.
      double convert_cost =
          heterogeneity.systematic
              ? model.convert_script +
                    1.5 * static_cast<double>(
                              heterogeneity.source_pattern_count) +
                    0.002 * values
              : model.convert_script +
                    model.convert_each_distinct *
                        std::pow(distinct, model.convert_distinct_exponent);
      double item = 0.0;
      switch (heterogeneity.type) {
        case ValueHeterogeneityType::kTooFewSourceElements:
          if (high) {
            item = model.add_value_each *
                   static_cast<double>(heterogeneity.affected_values);
          }
          break;
        case ValueHeterogeneityType::kDifferentRepresentationsCritical:
          item = high ? convert_cost : model.drop_script_low;
          break;
        case ValueHeterogeneityType::kDifferentRepresentations:
          if (high) item = convert_cost;
          break;
        case ValueHeterogeneityType::kTooFineGrainedSourceValues:
          if (high) item = model.generalize_each_distinct * distinct;
          break;
        case ValueHeterogeneityType::kTooCoarseGrainedSourceValues:
          if (high) item = model.refine_each_value * values;
          break;
      }
      if (item > 0.0) {
        minutes += item * Noise(rng, model.noise_sigma);
      }
    }
    measured.value_minutes = minutes;
  }

  // --- Deduplication: the practitioner reviews the candidate pairs the
  // blocking actually surfaces and merges the confirmed clusters.
  {
    DedupModule detector;
    EFES_ASSIGN_OR_RETURN(auto report, detector.AssessComplexity(scenario));
    const auto& dedup_report =
        static_cast<const DedupComplexityReport&>(*report);
    double minutes = 0.0;
    for (const DuplicateClusterFinding& finding : dedup_report.findings()) {
      double item = 0.0;
      if (!high) {
        item = model.dedup_drop_script_low;
      } else {
        item = model.dedup_review_setup +
               model.cluster_merge_each *
                   static_cast<double>(finding.cluster_count) +
               model.pair_check_each *
                   std::pow(static_cast<double>(finding.verification_pairs),
                            model.pair_exponent);
      }
      minutes += item * Noise(rng, model.noise_sigma);
    }
    measured.dedup_minutes = minutes;
  }

  return measured;
}

}  // namespace efes
