// The "production side" of Figure 1: a simulated integration practitioner
// whose measured effort provides the ground truth for the experiments.
//
// The original study measured wall-clock minutes of a human integrating
// the scenarios with SQL and pgAdmin. We substitute a perfect-information
// practitioner model: it enumerates the *true* work items of the scenario
// (the mapping queries to write, the actual constraint violations in the
// data, the value conversions needed) and prices them with a cost model
// that deliberately differs from EFES's Table 9 configuration — sublinear
// batch effects, schema-exploration and setup overheads that EFES does
// not model, and per-component lognormal noise for human variance. EFES
// and the counting baseline never see these prices; they are calibrated
// against them by cross validation only, exactly like the paper.

#ifndef EFES_SCENARIO_GROUND_TRUTH_H_
#define EFES_SCENARIO_GROUND_TRUTH_H_

#include <string>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"
#include "efes/core/task.h"

namespace efes {

/// The true per-work-item prices (minutes) of the simulated practitioner.
struct GroundTruthModel {
  // --- Mapping -------------------------------------------------------------
  double scenario_setup = 5.0;       // connecting, sanity queries
  double per_source_relation = 2.0;   // schema exploration
  double per_connection_base = 2.5;   // writing + testing each INSERT..SELECT
  double per_join_table = 3.0;        // writing/debugging each join...
  double join_exponent = 1.55;         // ...which compounds: a 5-way join is
                                      // far harder to debug than 5 one-way
                                      // copies (cost = per_join_table *
                                      // tables^join_exponent)
  double per_copied_attribute = 1.0;
  double per_generated_key = 3.2;
  double per_foreign_key = 3.5;

  // --- Structure cleaning, high quality -------------------------------------
  double missing_value_each = 2.0;     // investigate + provide one value
  double merge_script = 12.0;          // one aggregation script
  double merge_each = 0.008;           // per-row validation on top
  double detached_script = 6.0;        // INSERT..SELECT for detached values
  double detached_each = 0.01;
  double dangling_each = 1.1;          // resolve one dangling reference
  double unique_script = 7.5;          // dedup script per violated key

  // --- Structure cleaning, low effort ---------------------------------------
  double structure_script_low = 4.5;   // one DELETE/UPDATE per conflict

  // --- Value cleaning --------------------------------------------------------
  double convert_script = 24.0;        // transformation script + validation
  double convert_each_distinct = 0.28; // value-mapping table maintenance
  double convert_distinct_exponent = 0.95;  // batch learning effect
  double drop_script_low = 8.0;
  double generalize_each_distinct = 0.45;
  double refine_each_value = 0.5;
  double add_value_each = 2.0;

  // --- Deduplication ---------------------------------------------------------
  double dedup_review_setup = 6.0;     // similarity query + review sheet
  double cluster_merge_each = 1.7;     // build one golden record
  double pair_check_each = 0.4;        // eyeball one candidate pair...
  double pair_exponent = 0.93;         // ...with a batch learning effect
  double dedup_drop_script_low = 7.0;  // keep-one-drop-rest script

  // --- Human variance --------------------------------------------------------
  /// Sigma of the multiplicative lognormal noise per component.
  double noise_sigma = 0.15;
};

/// Measured effort with the Figure 6/7 breakdown.
struct MeasuredEffort {
  double mapping_minutes = 0.0;
  double structure_minutes = 0.0;
  double value_minutes = 0.0;
  double dedup_minutes = 0.0;

  double total() const {
    return mapping_minutes + structure_minutes + value_minutes +
           dedup_minutes;
  }
};

/// Simulates the integration of `scenario` at the given result quality and
/// returns the measured effort. Deterministic for a fixed (scenario name,
/// quality, seed) triple.
Result<MeasuredEffort> SimulateMeasuredEffort(
    const IntegrationScenario& scenario, ExpectedQuality quality,
    uint64_t seed, const GroundTruthModel& model = {});

}  // namespace efes

#endif  // EFES_SCENARIO_GROUND_TRUTH_H_
