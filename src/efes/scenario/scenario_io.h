// Loading and saving integration scenarios as a directory tree — the
// file-based substitute for the original prototype's PostgreSQL input.
//
// Layout:
//
//   <dir>/
//     target/
//       schema.sql            -- DDL (see relational/schema_text.h)
//       data/<table>.csv      -- optional instance, one CSV per table
//     sources/<name>/
//       schema.sql
//       data/<table>.csv
//       correspondences.txt   -- one correspondence per line:
//                                "albums -> records" (relation level)
//                                "albums.name -> records.title" (attribute)
//
// Everything is plain text; a scenario exported with SaveScenario loads
// back identically (schemas, constraints, data, correspondences). Saving
// is atomic per file (temp + rename, common/file_io.h).
//
// Loading runs in one of two modes (LoadOptions::Mode):
//   * kStrict (default): the historical behavior — the first malformed
//     row, unreadable file, or bogus correspondence aborts the load.
//   * kRecover: defects are skipped or repaired and recorded as
//     DataIssue diagnostics in the caller's ScenarioLoadReport; the load
//     succeeds with whatever could be salvaged (the target schema itself
//     remains mandatory). This is how a service estimates effort *over*
//     dirty inputs instead of refusing them.

#ifndef EFES_SCENARIO_SCENARIO_IO_H_
#define EFES_SCENARIO_SCENARIO_IO_H_

#include <string>
#include <vector>

#include "efes/common/csv.h"
#include "efes/common/data_issue.h"
#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"

namespace efes {

/// How to load a scenario directory.
struct LoadOptions {
  enum class Mode { kStrict, kRecover };

  Mode mode = Mode::kStrict;
  /// Resource guards forwarded to the CSV reader.
  size_t max_field_bytes = CsvReadOptions{}.max_field_bytes;
  size_t max_rows = CsvReadOptions{}.max_rows;
};

/// What a lenient load survived. `degraded` is true when any input was
/// skipped or repaired; the issues list the individual defects.
struct ScenarioLoadReport {
  std::vector<DataIssue> issues;
  bool degraded = false;
};

/// Parses one correspondence line ("a.b -> c.d" or "a -> c"). Tolerates
/// whitespace around the arrow, the dot, and the names; rejects empty
/// relation or attribute names.
Result<Correspondence> ParseCorrespondenceLine(std::string_view line);

/// Parses a whole correspondences document (one per line; '#' comments).
Result<CorrespondenceSet> ParseCorrespondences(std::string_view text);

/// Lenient variant: malformed lines are skipped and recorded in
/// `issues` (recover mode) instead of failing the parse.
Result<CorrespondenceSet> ParseCorrespondences(
    std::string_view text, const LoadOptions& options,
    std::vector<DataIssue>* issues);

/// Renders a correspondence set in the line format.
std::string WriteCorrespondences(const CorrespondenceSet& correspondences);

/// Writes the scenario into `directory` (created if missing, existing
/// files overwritten atomically).
Status SaveScenario(const IntegrationScenario& scenario,
                    const std::string& directory);

/// Loads a scenario from `directory`. The scenario name is the directory
/// base name; sources load in lexicographic order. Fault point:
/// `scenario.load`.
Result<IntegrationScenario> LoadScenario(const std::string& directory);

/// Loads with explicit options; `report` (may be null) receives the
/// DataIssue diagnostics and the degraded flag in recover mode.
Result<IntegrationScenario> LoadScenario(const std::string& directory,
                                         const LoadOptions& options,
                                         ScenarioLoadReport* report);

}  // namespace efes

#endif  // EFES_SCENARIO_SCENARIO_IO_H_
