// Loading and saving integration scenarios as a directory tree — the
// file-based substitute for the original prototype's PostgreSQL input.
//
// Layout:
//
//   <dir>/
//     target/
//       schema.sql            -- DDL (see relational/schema_text.h)
//       data/<table>.csv      -- optional instance, one CSV per table
//     sources/<name>/
//       schema.sql
//       data/<table>.csv
//       correspondences.txt   -- one correspondence per line:
//                                "albums -> records" (relation level)
//                                "albums.name -> records.title" (attribute)
//
// Everything is plain text; a scenario exported with SaveScenario loads
// back identically (schemas, constraints, data, correspondences).

#ifndef EFES_SCENARIO_SCENARIO_IO_H_
#define EFES_SCENARIO_SCENARIO_IO_H_

#include <string>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"

namespace efes {

/// Parses one correspondence line ("a.b -> c.d" or "a -> c").
Result<Correspondence> ParseCorrespondenceLine(std::string_view line);

/// Parses a whole correspondences document (one per line; '#' comments).
Result<CorrespondenceSet> ParseCorrespondences(std::string_view text);

/// Renders a correspondence set in the line format.
std::string WriteCorrespondences(const CorrespondenceSet& correspondences);

/// Writes the scenario into `directory` (created if missing, existing
/// files overwritten).
Status SaveScenario(const IntegrationScenario& scenario,
                    const std::string& directory);

/// Loads a scenario from `directory`. The scenario name is the directory
/// base name; sources load in lexicographic order.
Result<IntegrationScenario> LoadScenario(const std::string& directory);

}  // namespace efes

#endif  // EFES_SCENARIO_SCENARIO_IO_H_
