// Seeded scenario fuzzer: generates randomized-but-deterministic
// integration scenarios with *known ground truth* for property testing,
// calibration, and benchmarking.
//
// Every scenario has one target schema (a root entity relation plus an FK
// chain of detail relations) and 2-3 sources with renamed schemas and
// full correspondences. The generator injects, and records, the defects
// the estimation modules are supposed to find:
//   * duplicate entity clusters — the same entity placed into several
//     sources, its name dirtied with normalization-recoverable noise
//     (case flips, doubled inner spaces, padding);
//   * missing values — nulls sprinkled into nullable non-key attributes;
//   * sloppy numeric representations — a source rendering a numeric
//     target attribute as decorated text.
// The injected-cluster list is the oracle of the dedup property tests:
// recall = detected injected keys / injected keys.
//
// Determinism contract: FuzzScenario(seed, options) is a pure function —
// byte-identical scenarios for the same (seed, options) on every
// platform, thread count, and run. All randomness flows through one
// seeded Random; no time, no global state.

#ifndef EFES_SCENARIO_FUZZER_H_
#define EFES_SCENARIO_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"
#include "efes/dedup/dedup_module.h"

namespace efes {

struct FuzzOptions {
  /// Sources per scenario, drawn uniformly from [min, max].
  size_t min_sources = 2;
  size_t max_sources = 3;

  /// Root entities in the shared domain pool, drawn from [min, max].
  size_t min_entities = 24;
  size_t max_entities = 80;

  /// Extra (non-key) root attributes, drawn from [min, max].
  size_t min_extra_attributes = 2;
  size_t max_extra_attributes = 7;

  /// Detail relations hanging off the root via an FK, drawn from [0, max].
  size_t max_detail_relations = 2;

  /// Probability that an entity is placed into >= 2 sources — becoming an
  /// injected duplicate cluster.
  double duplicate_entity_rate = 0.2;

  /// Probability that one occurrence of a duplicated entity gets its name
  /// dirtied (normalization-recoverable: case, inner spaces, padding).
  double key_dirt_rate = 0.35;

  /// Probability of a null in a nullable non-key attribute cell.
  double missing_value_rate = 0.06;

  /// Probability that a source renders a numeric extra attribute as
  /// decorated text ("~ 42") — a critical representation heterogeneity.
  double sloppy_number_rate = 0.5;

  /// Probability that the target comes with example data (some scenarios
  /// integrate into a populated warehouse, some into an empty one).
  double target_data_rate = 0.35;

  /// Rejects non-sensical combinations (min > max, rates outside [0, 1])
  /// with kInvalidArgument.
  Status Validate() const;
};

/// One injected duplicate cluster — the ground truth the detector is
/// measured against.
struct InjectedCluster {
  std::string target_relation;
  /// Normalized blocking-key value (NormalizeEntityKey of the clean name).
  std::string key;
  /// Total records of this entity across all sources (>= 2).
  size_t occurrences = 0;
};

struct FuzzedScenario {
  IntegrationScenario scenario;
  std::vector<InjectedCluster> injected_clusters;
  size_t injected_nulls = 0;
  size_t injected_sloppy_values = 0;

  explicit FuzzedScenario(IntegrationScenario s)
      : scenario(std::move(s)) {}
};

/// Generates the scenario for `seed`. Every produced source database
/// satisfies its own constraints; the scenario passes Validate().
Result<FuzzedScenario> FuzzScenario(uint64_t seed,
                                    const FuzzOptions& options = {});

/// Fraction of injected clusters whose normalized key appears in one of
/// the report's findings for the right target relation. 1.0 when nothing
/// was injected (vacuous recall).
double InjectedClusterRecall(const FuzzedScenario& fuzzed,
                             const DedupComplexityReport& report);

}  // namespace efes

#endif  // EFES_SCENARIO_FUZZER_H_
