// The bibliographic case study (Section 6.1, "Amalgam"-style).
//
// Four synthetic bibliographic schemas with the same shape as the Amalgam
// benchmark: between a handful and a few dozen relations with 3-16
// attributes, describing the same publication entities under very
// different conventions. The domain is engineered to be *value-heavy*:
// years as "'98" strings vs. integers, author lists inline vs.
// normalized, page ranges as "12--34" strings vs. integer pairs — the
// property that makes EFES shine in Figure 6 ("the baseline has no
// concept of heterogeneity between values in the datasets, but it is one
// of the main complexity drivers in these integration scenarios").
//
// Scenarios (matching Figure 6): s1-s2, s1-s3, s3-s4, and the identity
// scenario s4-s4.

#ifndef EFES_SCENARIO_BIBLIOGRAPHIC_H_
#define EFES_SCENARIO_BIBLIOGRAPHIC_H_

#include <string>
#include <vector>

#include "efes/common/result.h"
#include "efes/core/integration_scenario.h"

namespace efes {

struct BiblioOptions {
  uint64_t seed = 7;
  /// Publications per database instance.
  size_t publication_count = 800;
  /// Distinct venues in the domain.
  size_t venue_count = 30;
  /// Fraction of publications with a missing venue (drives NOT NULL
  /// structure conflicts).
  double missing_venue_rate = 0.08;
  /// Fraction of sloppy "'98"-style year strings in schema s1 (drives
  /// critical value representations).
  double sloppy_year_rate = 0.2;
  /// Fraction of missing end pages in schema s3 (drives "too few source
  /// elements" heterogeneities, repaired by Add values).
  double missing_end_page_rate = 0.4;
};

/// Identifiers of the four schemas.
enum class BiblioSchemaId { kS1, kS2, kS3, kS4 };

std::string_view BiblioSchemaIdToString(BiblioSchemaId id);

/// Builds the schema definition (no data).
Schema MakeBiblioSchema(BiblioSchemaId id);

/// Builds a populated database for one schema.
Result<Database> MakeBiblioDatabase(BiblioSchemaId id,
                                    const BiblioOptions& options);

/// Builds one of the four case-study scenarios. Valid (source, target)
/// pairs: (kS1,kS2), (kS1,kS3), (kS3,kS4), (kS4,kS4); other pairs fail
/// with kInvalidArgument (no curated correspondences exist for them).
Result<IntegrationScenario> MakeBiblioScenario(BiblioSchemaId source,
                                               BiblioSchemaId target,
                                               const BiblioOptions& options);

/// All four scenarios of Figure 6, in the paper's order.
Result<std::vector<IntegrationScenario>> MakeAllBiblioScenarios(
    const BiblioOptions& options = {});

}  // namespace efes

#endif  // EFES_SCENARIO_BIBLIOGRAPHIC_H_
